//! Umbrella package for the workspace's integration tests (`tests/`) and
//! examples (`examples/`). The library surface is just a re-export of the
//! [`indord`] facade; depend on `indord` directly in real applications.

pub use indord::*;
