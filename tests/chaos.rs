//! Chaos harness for the overload-protection and supervision layer
//! (ISSUE 9): drive the real TCP serving stack through write storms,
//! slow-loris clients, oversized lines, mid-request disconnects,
//! injected WAL deaths, mutator panics, and mid-storm shutdowns — and
//! assert the contracts hold:
//!
//! - every write gets a *typed* answer (`OK`, `ERR overloaded`,
//!   `ERR readonly`, `ERR shutdown`) within a bounded time; the worker
//!   pool never wedges;
//! - acked writes survive restart (acked ⇒ durable), and recovery is
//!   differentially equal to a sequential oracle that applied exactly
//!   the acked writes;
//! - a dead WAL degrades the database to read-only — reads keep
//!   serving the last published snapshot and `HEALTH` says `degraded`;
//! - an escaped mutator panic is supervised: restart from the
//!   published snapshot within a bounded budget, then degrade;
//! - a deadline-bounded expensive request aborts with `ERR deadline`
//!   and the worker returns to the pool.
//!
//! Paced for the single-core CI container: storms are small, stalls
//! and timeouts generous.

use indord::core::parse::parse_database;
use indord::core::sym::Vocabulary;
use indord_server::durable::StorageConfig;
use indord_server::protocol::{ErrorKind, HealthState, Response};
use indord_server::runtime::{serve_with, Conn, Registry, ServeOptions};
use indord_storage::wal::{scan, Fault, FaultIo, FaultKind, HEADER_LEN};
use indord_storage::{FsyncPolicy, Wal};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "indord-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A test client: one TCP connection speaking the line protocol, with
/// a read timeout so a wedged server fails the test instead of hanging
/// it.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    /// Sends one line; `Ok(None)` on transport EOF (server closed us).
    fn try_send(&mut self, line: &str) -> std::io::Result<Option<Response>> {
        self.stream.write_all(format!("{line}\n").as_bytes())?;
        Response::read_from(&mut self.reader)
    }

    fn send(&mut self, line: &str) -> Response {
        self.try_send(line)
            .expect("transport alive")
            .expect("server replied")
    }

    fn ok(&mut self, line: &str) {
        match self.send(line) {
            Response::Ok(_) => {}
            other => panic!("`{line}` failed: {other:?}"),
        }
    }

    fn stats(&mut self) -> indord_server::protocol::StatsReply {
        match self.send("STATS") {
            Response::Stats(s) => *s,
            other => panic!("STATS failed: {other:?}"),
        }
    }
}

/// Waits (bounded) until the mutator has taken the queued stall job,
/// so writes enqueued afterwards pile up behind it.
fn await_stall_taken(db: &indord_server::runtime::Db) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.stats().commit_queue_depth() > 0 {
        assert!(Instant::now() < deadline, "mutator never took the stall");
        thread::sleep(Duration::from_millis(1));
    }
}

// ---------------------------------------------------------------------
// Storm + slow-loris: the pool never wedges, every write is answered,
// and the end state differentially equals a sequential oracle.
// ---------------------------------------------------------------------

const STORM_CLIENTS: usize = 6;
const STORM_WRITES: usize = 20;

#[test]
fn write_storm_with_slow_loris_never_wedges_the_pool() {
    let registry = Arc::new(Registry::new().with_max_queue(8));
    // Seed: two labelled observer chains plus one ordered chain of
    // fresh constants per storm client. Every storm write is then a
    // label fact on a *known* constant — the in-place-patch hot path —
    // so the storm measures admission and group commit, not scaffold
    // rebuilds. Deliberately no `!=` atom: a single `!=` routes every
    // query through the §7 extension, which is combinatorial over six
    // parallel chains — this test storms the serving layer, it does
    // not probe worst-case query complexity.
    let mut seed = String::from("pred P0(ord); pred P1(ord); pred P2(ord); ");
    for c in 0..2 {
        for i in 0..8 {
            seed.push_str(&format!("P{}(t{c}_{i}); ", (c + i) % 3));
        }
        for i in 0..7 {
            let rel = if i % 3 == 0 { "<=" } else { "<" };
            seed.push_str(&format!("t{c}_{i} {rel} t{c}_{};", i + 1));
        }
    }
    for c in 0..STORM_CLIENTS {
        for i in 0..STORM_WRITES - 1 {
            seed.push_str(&format!("w{c}_{i} < w{c}_{};", i + 1));
        }
    }
    {
        let mut c = Conn::new(Arc::clone(&registry));
        assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
        assert!(matches!(
            c.handle_line(&format!("FACT {seed}")),
            Response::Ok(_)
        ));
    }
    // Workers are connection-granular: enough of them that the six
    // storm clients, the loris, and the mid-storm reader all hold a
    // slot at once.
    let mut opts = ServeOptions::new(STORM_CLIENTS + 2);
    opts.read_timeout = Some(Duration::from_millis(400));
    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", opts).unwrap();
    let addr = handle.addr();

    // The slow loris: half a request line, then silence. The read
    // timeout must disconnect it instead of parking a worker forever.
    let loris = TcpStream::connect(addr).unwrap();
    (&loris).write_all(b"FACT P0(").unwrap();

    // The storm: every client writes fresh ground facts, retrying
    // typed overload rejections with backoff; anything else is a
    // harness failure.
    let workers: Vec<_> = (0..STORM_CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.ok("USE lab");
                let mut acked = Vec::new();
                for i in 0..STORM_WRITES {
                    let atom = format!("P{}(w{c}_{i})", c % 3);
                    let mut attempts = 0;
                    loop {
                        match client.send(&format!("FACT {atom};")) {
                            Response::Ok(_) => {
                                acked.push(atom);
                                break;
                            }
                            Response::Error(e) if e.kind == ErrorKind::Overloaded => {
                                attempts += 1;
                                assert!(attempts < 50, "overload never cleared: {e:?}");
                                thread::sleep(Duration::from_millis(2 << attempts.min(4)));
                            }
                            other => panic!("storm write `{atom}`: unexpected {other:?}"),
                        }
                    }
                }
                acked
            })
        })
        .collect();

    // Meanwhile the mutator is repeatedly stalled so the commit queue
    // genuinely fills, and a reader keeps getting answers throughout.
    let db = registry.get("lab").unwrap();
    let mut reader = Client::connect(addr);
    reader.ok("USE lab");
    for _ in 0..4 {
        let rx = db.stall_mutator(Duration::from_millis(30)).unwrap();
        assert!(matches!(
            reader.send("ENTAIL exists a b. P0(a) & a < b & P1(b)"),
            Response::Verdict(_)
        ));
        rx.recv().unwrap().unwrap();
    }

    let acked: Vec<String> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("storm client panicked"))
        .collect();
    assert_eq!(acked.len(), STORM_CLIENTS * STORM_WRITES);

    // The loris was cut loose, not served: its next read is EOF.
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buf = [0u8; 64];
    assert_eq!(
        std::io::Read::read(&mut (&loris), &mut buf).unwrap_or(0),
        0,
        "slow loris was answered instead of disconnected"
    );

    // Differential oracle: a fresh in-memory registry that applied the
    // seed plus exactly the acked writes.
    let oreg = Arc::new(Registry::new());
    let mut oc = Conn::new(Arc::clone(&oreg));
    assert!(matches!(oc.handle_line("OPEN lab"), Response::Ok(_)));
    assert!(matches!(
        oc.handle_line(&format!("FACT {seed}")),
        Response::Ok(_)
    ));
    for atom in &acked {
        assert!(matches!(
            oc.handle_line(&format!("FACT {atom};")),
            Response::Ok(_)
        ));
    }
    let mut post = Client::connect(addr);
    post.ok("USE lab");
    let server_stats = post.stats();
    let oracle_stats = match oc.handle_line("STATS") {
        Response::Stats(s) => *s,
        other => panic!("oracle STATS: {other:?}"),
    };
    assert_eq!(
        server_stats.atoms, oracle_stats.atoms,
        "stormed state diverges from the acked-writes oracle"
    );
    // Sequential single-disjunct queries only: the storm added dozens
    // of unordered labelled points, which makes a disjunctive search
    // combinatorial (the deadline test exploits exactly that) — the
    // differential panel must stay on the polynomial route.
    for q in [
        "exists a b. P0(a) & a < b & P1(b)",
        "exists a b. P2(a) & a <= b & P0(b)",
        "exists a b c. P0(a) & a < b & P1(b) & b < c & P2(c)",
    ] {
        assert_eq!(
            post.send(&format!("ENTAIL {q}")),
            oc.handle_line(&format!("ENTAIL {q}")),
            "panel `{q}` diverges from the acked-writes oracle"
        );
    }
    // Sampled ground-atom audit: acked facts are visible.
    for atom in acked.iter().step_by(7) {
        assert!(
            matches!(
                post.send(&format!("ENTAIL {atom}")),
                Response::Verdict(true)
            ),
            "acked write `{atom}` is not entailed post-storm"
        );
    }
    assert!(
        matches!(
            post.send("HEALTH"),
            Response::Health {
                state: HealthState::Ok,
                ..
            }
        ),
        "healthy storm left the database unhealthy"
    );
    drop(handle);
}

// ---------------------------------------------------------------------
// Typed shedding: a tiny queue under a stalled mutator answers
// `ERR overloaded` immediately, and the rejected write succeeds on
// retry once the queue drains.
// ---------------------------------------------------------------------

#[test]
fn tiny_queue_sheds_with_typed_overload_and_retry_succeeds() {
    let registry = Arc::new(Registry::new().with_max_queue(2));
    {
        let mut c = Conn::new(Arc::clone(&registry));
        assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
        assert!(matches!(
            c.handle_line("FACT pred P0(ord); P0(c0);"),
            Response::Ok(_)
        ));
    }
    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", ServeOptions::new(8)).unwrap();
    let addr = handle.addr();

    let db = registry.get("lab").unwrap();
    let stall = db.stall_mutator(Duration::from_millis(500)).unwrap();
    await_stall_taken(&db);

    let barrier = Arc::new(std::sync::Barrier::new(STORM_CLIENTS));
    let workers: Vec<_> = (0..STORM_CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.ok("USE lab");
                barrier.wait();
                let started = Instant::now();
                let first = client.send(&format!("FACT P0(z{i});"));
                match &first {
                    Response::Ok(_) => (false, started.elapsed()),
                    Response::Error(e) if e.kind == ErrorKind::Overloaded => {
                        // A typed rejection is immediate — it must not
                        // wait out the stall.
                        let elapsed = started.elapsed();
                        assert!(
                            e.message.contains("retry with backoff"),
                            "overload error lost its retry hint: {e:?}"
                        );
                        // Retry until the queue drains: the write must
                        // eventually land.
                        let deadline = Instant::now() + Duration::from_secs(30);
                        loop {
                            match client.send(&format!("FACT P0(z{i});")) {
                                Response::Ok(_) => break,
                                Response::Error(e2) if e2.kind == ErrorKind::Overloaded => {
                                    assert!(Instant::now() < deadline, "retry never landed");
                                    thread::sleep(Duration::from_millis(50));
                                }
                                other => panic!("retry: unexpected {other:?}"),
                            }
                        }
                        (true, elapsed)
                    }
                    other => panic!("storm write: unexpected {other:?}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<(bool, Duration)> = workers
        .into_iter()
        .map(|w| w.join().expect("client panicked"))
        .collect();
    stall.recv().unwrap().unwrap();

    let shed = outcomes.iter().filter(|(shed, _)| *shed).count();
    assert!(
        shed >= 1,
        "six writers against a stalled two-slot queue shed nothing"
    );
    assert!(
        outcomes.len() - shed >= 1,
        "every writer was shed; the queue admitted nothing"
    );
    for (shed, elapsed) in &outcomes {
        if *shed {
            assert!(
                *elapsed < Duration::from_millis(400),
                "typed rejection took {elapsed:?}; it waited out the stall"
            );
        }
    }
    let mut post = Client::connect(addr);
    post.ok("USE lab");
    let stats = post.stats();
    assert!(stats.writes_shed >= shed as u64, "writes_shed under-counts");
    // Every write eventually landed: all six ground atoms visible.
    for i in 0..STORM_CLIENTS {
        assert!(
            matches!(
                post.send(&format!("ENTAIL P0(z{i})")),
                Response::Verdict(true)
            ),
            "retried write z{i} never landed"
        );
    }
    drop(handle);
}

// ---------------------------------------------------------------------
// Deadlines: an expensive COUNTERMODEL under `DEADLINE 10` aborts with
// the typed error, promptly, and the worker goes back to serving.
// ---------------------------------------------------------------------

/// The deadline workload: unordered labelled points (no order facts at
/// all), so the Thm 5.3 countermodel search faces a genuinely wide
/// frontier of linearizations.
fn unordered_seed(preds: usize, points: usize) -> String {
    let mut s = String::new();
    for p in 0..preds {
        s.push_str(&format!("pred Q{p}(ord); "));
    }
    for i in 0..points {
        s.push_str(&format!("Q{}(u{i}); ", i % preds));
    }
    s
}

/// A disjunction whose two-sided head (`Q0 <= Q1` or `Q1 < Q0`) is
/// *entailed* whenever both predicates are inhabited, so a
/// countermodel search must exhaust the whole minimal-model frontier
/// before answering `CERTAIN`; the extra chains widen that frontier.
/// Unbounded, this takes ~14 s on the CI container (see the ignored
/// probe below) — five orders of magnitude past a 10 ms deadline.
fn hard_query(preds: usize) -> String {
    let mut parts = vec![
        "(exists a b. Q0(a) & a <= b & Q1(b))".to_string(),
        "(exists a b. Q1(a) & a < b & Q0(b))".to_string(),
    ];
    for p in 2..preds.saturating_sub(2) {
        parts.push(format!(
            "(exists a b c. Q{p}(a) & a < b & Q{}(b) & b < c & Q{}(c))",
            p + 1,
            p + 2
        ));
    }
    parts.join(" | ")
}

#[test]
fn deadline_aborts_expensive_countermodel_and_frees_the_worker() {
    let registry = Arc::new(Registry::new());
    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", ServeOptions::new(2)).unwrap();
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    c.ok("OPEN lab");
    c.ok(&format!("FACT {}", unordered_seed(6, 12)));
    let started = Instant::now();
    match c.send(&format!("DEADLINE 10 COUNTERMODEL {}", hard_query(6))) {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Deadline, "{e:?}");
            assert!(
                e.message.contains("deadline"),
                "deadline error lost its message: {e:?}"
            );
        }
        other => panic!("expected ERR deadline, got {other:?}"),
    }
    // Polled every 64 popped states, the overshoot is a handful of
    // successor expansions — far under a second even on one core.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline abort took {:?}",
        started.elapsed()
    );
    // The worker is back in the pool: a fresh connection is served
    // promptly, and the abort was counted.
    let t = Instant::now();
    let mut fresh = Client::connect(addr);
    fresh.ok("USE lab");
    let stats = fresh.stats();
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "follow-up request took {:?}; the pool is wedged",
        t.elapsed()
    );
    assert!(stats.deadline_aborts >= 1, "deadline abort not counted");
    // The aborted connection itself also keeps working.
    assert!(matches!(c.send("ENTAIL Q0(u0)"), Response::Verdict(true)));
    drop(handle);
}

/// Development probe for the deadline workload's unbounded cost. Run
/// with `--ignored --nocapture` when retuning.
#[test]
#[ignore]
fn probe_hard_query_cost() {
    for (preds, points) in [(6, 12), (9, 15)] {
        let registry = Arc::new(Registry::new());
        let mut c = Conn::new(Arc::clone(&registry));
        c.handle_line("OPEN lab");
        assert!(matches!(
            c.handle_line(&format!("FACT {}", unordered_seed(preds, points))),
            Response::Ok(_)
        ));
        let q = hard_query(preds);
        let t = Instant::now();
        let r = c.handle_line(&format!("COUNTERMODEL {q}"));
        eprintln!(
            "preds={preds} points={points}: {:?} -> {:?}",
            t.elapsed(),
            match r {
                Response::Verdict(v) => format!("verdict {v}"),
                Response::Countermodel(_) => "countermodel".to_string(),
                other => format!("{other:?}"),
            }
        );
    }
}

// ---------------------------------------------------------------------
// Malformed clients: oversized lines and mid-request disconnects.
// ---------------------------------------------------------------------

#[test]
fn oversized_line_answers_toolarge_and_closes() {
    let registry = Arc::new(Registry::new());
    let mut opts = ServeOptions::new(2);
    opts.max_line = 128;
    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", opts).unwrap();
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    c.ok("OPEN lab");
    let huge = format!("FACT {};", "x".repeat(4096));
    match c.try_send(&huge).expect("transport alive") {
        Some(Response::Error(e)) => {
            assert_eq!(e.kind, ErrorKind::TooLarge, "{e:?}");
            assert!(e.message.contains("128"), "cap missing from error: {e:?}");
        }
        other => panic!("expected ERR toolarge, got {other:?}"),
    }
    // The connection is closed after the rejection…
    assert!(
        matches!(c.try_send("STATS"), Ok(None) | Err(_)),
        "server kept serving an oversized-line client"
    );
    // …and the pool still serves everyone else.
    let mut fresh = Client::connect(addr);
    fresh.ok("USE lab");
    drop(handle);
}

#[test]
fn mid_request_disconnects_do_not_wedge_the_pool() {
    let registry = Arc::new(Registry::new());
    let mut opts = ServeOptions::new(2);
    opts.read_timeout = Some(Duration::from_millis(400));
    // The wave below outpaces the workers' slot release; this test is
    // about wedging, not the admission cap, so keep the cap out of the
    // way (the cap has its own test).
    opts.max_conns = 64;
    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", opts).unwrap();
    let addr = handle.addr();

    // A wave of clients that vanish mid-request: partial line, full
    // line with the reply never read, or nothing at all.
    for i in 0..9 {
        let s = TcpStream::connect(addr).unwrap();
        match i % 3 {
            0 => (&s).write_all(b"FACT pred P9(or").unwrap(),
            1 => (&s).write_all(b"OPEN scratch\n").unwrap(),
            _ => {}
        }
        drop(s); // mid-request disconnect
    }
    // Both workers survive the wave and serve a real client promptly.
    let t = Instant::now();
    let mut c = Client::connect(addr);
    c.ok("OPEN lab");
    c.ok("FACT pred P0(ord); P0(c0);");
    assert!(matches!(c.send("ENTAIL P0(c0)"), Response::Verdict(true)));
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "pool took {:?} to recover from disconnect wave",
        t.elapsed()
    );
    drop(handle);
}

// ---------------------------------------------------------------------
// Connection cap: beyond it, an immediate typed `ERR busy` — no
// silent queueing — and the slot frees once a client leaves.
// ---------------------------------------------------------------------

#[test]
fn connection_cap_answers_busy_and_recovers() {
    let registry = Arc::new(Registry::new());
    let mut opts = ServeOptions::new(1);
    opts.max_conns = 1;
    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", opts).unwrap();
    let addr = handle.addr();

    let mut first = Client::connect(addr);
    first.ok("OPEN lab");

    // Over the cap: the accept loop answers ERR busy and closes.
    let mut busy = Client::connect(addr);
    match Response::read_from(&mut busy.reader).expect("read busy reply") {
        Some(Response::Error(e)) => {
            assert_eq!(e.kind, ErrorKind::Busy, "{e:?}");
            assert!(e.message.contains("connection limit"), "{e:?}");
        }
        other => panic!("expected ERR busy, got {other:?}"),
    }
    assert_eq!(registry.conns_rejected(), 1);

    // Release the slot; the next client is admitted and sees the
    // rejection in STATS.
    assert!(matches!(first.send("CLOSE"), Response::Bye));
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let mut c = Client::connect(addr);
        match c.try_send("USE lab").expect("transport alive") {
            Some(Response::Ok(_)) => break c.stats(),
            // Still over the cap (the worker hasn't released the old
            // slot yet) — the reply is ERR busy, then EOF.
            Some(Response::Error(e)) if e.kind == ErrorKind::Busy => {
                assert!(Instant::now() < deadline, "slot never freed");
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected {other:?}"),
        }
    };
    assert!(stats.conns_rejected >= 1, "rejection missing from STATS");
    drop(handle);
}

// ---------------------------------------------------------------------
// WAL death mid-storm: typed read-only degradation, reads keep
// serving, and a restart from the surviving bytes recovers every
// acked write.
// ---------------------------------------------------------------------

#[test]
fn wal_death_mid_storm_degrades_to_read_only_and_restart_recovers_acked() {
    const SEED: &str = "pred P0(ord); pred P1(ord); pred P2(ord); P0(c0); P1(c1); c0 < c1;";
    const CLIENTS: usize = 4;
    const WRITES: usize = 8;

    let root = tempdir("wal-death");
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let registry = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut voc = Vocabulary::new();
    let seed_db = parse_database(&mut voc, SEED).unwrap();
    // Every storm write is `FACT P0(sC_I);` with single-digit C and I:
    // a fixed 14-byte payload, so the fault lands exactly on a frame
    // boundary — 4 whole frames persist, the 5th append dies.
    let frame = (HEADER_LEN + "FACT P0(s0_0);".len()) as u64;
    let (io, persisted) = FaultIo::new(Fault {
        at_byte: 4 * frame,
        kind: FaultKind::Error,
    });
    let wal = Wal::new(Box::new(io), FsyncPolicy::Group, 1);
    let db = registry
        .install_durable_with_wal("lab", voc, seed_db, wal)
        .unwrap();

    let handle = serve_with(Arc::clone(&registry), "127.0.0.1:0", ServeOptions::new(4)).unwrap();
    let addr = handle.addr();

    // The storm: every write is answered OK (acked ⇒ its frame
    // persisted before the fault) or typed read-only.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.ok("USE lab");
                let mut acked = Vec::new();
                let mut rejected = Vec::new();
                for i in 0..WRITES {
                    let atom = format!("P0(s{c}_{i})");
                    match client.send(&format!("FACT {atom};")) {
                        Response::Ok(_) => acked.push(atom),
                        Response::Error(e) => {
                            assert_eq!(e.kind, ErrorKind::ReadOnly, "`{atom}`: {e:?}");
                            rejected.push(atom);
                        }
                        other => panic!("`{atom}`: unexpected {other:?}"),
                    }
                }
                (acked, rejected)
            })
        })
        .collect();
    let mut acked = Vec::new();
    let mut rejected = Vec::new();
    for w in workers {
        let (a, r) = w.join().expect("storm client panicked");
        acked.extend(a);
        rejected.extend(r);
    }
    assert_eq!(acked.len() + rejected.len(), CLIENTS * WRITES);
    assert_eq!(acked.len(), 4, "exactly the four persisted frames ack");

    // Degraded, not down: HEALTH says so, reads keep serving the last
    // published snapshot, writes and FLUSH get the typed rejection.
    let mut post = Client::connect(addr);
    post.ok("USE lab");
    match post.send("HEALTH") {
        Response::Health { state, detail } => {
            assert_eq!(state, HealthState::Degraded);
            assert!(
                detail.contains("write-ahead log append failed"),
                "degraded detail lost its cause: {detail}"
            );
        }
        other => panic!("HEALTH: unexpected {other:?}"),
    }
    assert!(matches!(
        post.send("ENTAIL P0(c0)"),
        Response::Verdict(true)
    ));
    for atom in &acked {
        assert!(
            matches!(
                post.send(&format!("ENTAIL {atom}")),
                Response::Verdict(true)
            ),
            "acked `{atom}` invisible while degraded"
        );
    }
    for line in ["FACT P0(c9);", "FLUSH"] {
        match post.send(line) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::ReadOnly, "`{line}`: {e:?}"),
            other => panic!("`{line}`: unexpected {other:?}"),
        }
    }
    let stats = post.stats();
    assert!(stats.degraded_entries >= 1, "degraded entry not counted");

    // Restart from the surviving bytes: the directory still has the
    // seed snapshot; swap in what the dead WAL actually persisted.
    drop(handle);
    registry.shutdown_dbs();
    drop(db);
    drop(registry);
    let bytes = persisted.lock().unwrap().clone();
    let s = scan(&bytes);
    assert!(s.torn.is_none(), "whole frames only below the fault");
    assert_eq!(s.records.len(), acked.len());
    std::fs::write(root.join("lab").join("wal.log"), &bytes).unwrap();
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let recovered = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut rc = Conn::new(Arc::clone(&recovered));
    assert!(matches!(rc.handle_line("USE lab"), Response::Ok(_)));

    // Differential oracle: seed plus exactly the acked writes.
    let oreg = Arc::new(Registry::new());
    let mut oc = Conn::new(Arc::clone(&oreg));
    assert!(matches!(oc.handle_line("OPEN lab"), Response::Ok(_)));
    assert!(matches!(
        oc.handle_line(&format!("FACT {SEED}")),
        Response::Ok(_)
    ));
    for atom in &acked {
        assert!(matches!(
            oc.handle_line(&format!("FACT {atom};")),
            Response::Ok(_)
        ));
    }
    let rsnap = recovered.get("lab").unwrap().read_snapshot().unwrap();
    let osnap = oreg.get("lab").unwrap().read_snapshot().unwrap();
    assert_eq!(
        rsnap.session().len(),
        osnap.session().len(),
        "recovered atom count diverges from the acked oracle"
    );
    for atom in acked.iter().chain(rejected.iter()) {
        assert_eq!(
            rc.handle_line(&format!("ENTAIL {atom}")),
            oc.handle_line(&format!("ENTAIL {atom}")),
            "recovered `{atom}` diverges from the acked oracle"
        );
    }
    drop(recovered);
    std::fs::remove_dir_all(&root).unwrap();
}

// ---------------------------------------------------------------------
// Supervision: an escaped mutator panic restarts from the published
// snapshot (ids continuous, acked state intact) until the budget is
// spent, then the database degrades instead of flapping.
// ---------------------------------------------------------------------

#[test]
fn escaped_mutator_panic_restarts_within_budget_then_degrades() {
    let registry = Arc::new(Registry::new());
    let mut c = Conn::new(Arc::clone(&registry));
    assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
    assert!(matches!(
        c.handle_line("FACT pred P0(ord); P0(a0);"),
        Response::Ok(_)
    ));
    let db = registry.get("lab").unwrap();

    // Three panics: each one is supervised — the write path comes back
    // and acked state survives.
    for round in 0..3u64 {
        let rx = db.inject_mutator_panic(true).unwrap();
        assert!(
            rx.recv().is_err(),
            "the panicked group must drop its reply channels"
        );
        match c.handle_line(&format!("FACT P0(b{round});")) {
            Response::Ok(_) => {}
            other => panic!("post-restart write {round}: unexpected {other:?}"),
        }
        assert_eq!(db.stats().mutator_restarts(), round + 1);
        let (state, _) = db.health();
        assert_eq!(state, HealthState::Ok, "round {round}");
    }
    // Everything acked across the restarts is still visible.
    for atom in ["P0(a0)", "P0(b0)", "P0(b1)", "P0(b2)"] {
        assert!(
            matches!(
                c.handle_line(&format!("ENTAIL {atom}")),
                Response::Verdict(true)
            ),
            "`{atom}` lost across supervised restarts"
        );
    }

    // The fourth panic exhausts the budget: degraded, read-only, and
    // stable — no more restarts, no more panics.
    let rx = db.inject_mutator_panic(true).unwrap();
    assert!(rx.recv().is_err());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (state, detail) = db.health();
        if state == HealthState::Degraded {
            assert!(
                detail.contains("restart budget exhausted"),
                "degraded detail lost its cause: {detail}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "budget exhaustion never degraded"
        );
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(db.stats().mutator_restarts(), 4);
    assert_eq!(db.stats().degraded_entries(), 1);
    match c.handle_line("FACT P0(b9);") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::ReadOnly, "{e:?}"),
        other => panic!("degraded write: unexpected {other:?}"),
    }
    // Reads still serve, and a second injection is refused (the
    // degraded loop rejects it before it can fire), so the database
    // cannot be re-panicked.
    assert!(matches!(
        c.handle_line("ENTAIL P0(b2)"),
        Response::Verdict(true)
    ));
    let rx = db.inject_mutator_panic(true).unwrap();
    match rx.recv().unwrap() {
        Err(e) => assert_eq!(e.kind, ErrorKind::ReadOnly, "{e:?}"),
        other => panic!("degraded injection: unexpected {other:?}"),
    }
    assert_eq!(db.stats().mutator_restarts(), 4, "degraded db flapped");
}

// ---------------------------------------------------------------------
// Shutdown during a storm: queued-but-unlogged writes get a typed
// `ERR shutdown` (no hang, no silent commit); everything acked before
// the shutdown is on disk after restart.
// ---------------------------------------------------------------------

#[test]
fn shutdown_mid_storm_rejects_unlogged_writes_and_preserves_acked() {
    const CLIENTS: usize = 6;

    let root = tempdir("shutdown-storm");
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let registry = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut handle = serve_with(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServeOptions::new(CLIENTS),
    )
    .unwrap();
    let addr = handle.addr();

    // An acked write before the storm: it must survive the shutdown.
    let mut admin = Client::connect(addr);
    admin.ok("OPEN lab");
    admin.ok("FACT pred P0(ord); P0(base);");

    // Stall the mutator so the storm's writes are still queued —
    // unlogged — when the shutdown lands.
    let db = registry.get("lab").unwrap();
    let stall = db.stall_mutator(Duration::from_millis(600)).unwrap();
    await_stall_taken(&db);

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.ok("USE lab");
                client.send(&format!("FACT P0(g{i});"))
            })
        })
        .collect();
    // Let the writes reach the queue, then shut down mid-stall. The
    // shutdown must not hang behind the queued writes, and each of
    // them must be answered with the typed rejection.
    thread::sleep(Duration::from_millis(150));
    let t = Instant::now();
    handle.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(30),
        "shutdown hung behind queued writes: {:?}",
        t.elapsed()
    );
    let _ = stall.recv();
    for w in workers {
        match w.join().expect("storm client panicked") {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Shutdown, "{e:?}");
                assert!(
                    e.message.contains("logged"),
                    "shutdown rejection lost its contract: {e:?}"
                );
            }
            other => panic!("mid-shutdown write: unexpected {other:?}"),
        }
    }
    drop(admin);
    drop(db);
    drop(handle);
    drop(registry);

    // Restart: the pre-storm ack is there, none of the rejected writes
    // leaked in.
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let recovered = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut rc = Conn::new(Arc::clone(&recovered));
    assert!(matches!(rc.handle_line("USE lab"), Response::Ok(_)));
    assert!(matches!(
        rc.handle_line("ENTAIL P0(base)"),
        Response::Verdict(true)
    ));
    let snap = recovered.get("lab").unwrap().read_snapshot().unwrap();
    assert_eq!(
        snap.session().len(),
        1,
        "a rejected write leaked into the recovered state"
    );
    drop(recovered);
    std::fs::remove_dir_all(&root).unwrap();
}
