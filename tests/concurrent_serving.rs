//! Multi-threaded serving harness: many threads hammering one `Sync`
//! [`Session`] with prepared queries, interleaved with single-writer
//! mutation phases that the incremental scaffold maintenance must
//! survive.
//!
//! Also measures the shared pair table's contention behavior: when two
//! searches race for the scaffold's pair-table lock, the loser falls
//! back to a private table instead of serializing
//! (`DisjunctiveScaffold::contention_fallbacks` counts how often) — the
//! harness asserts the fallback is invisible to verdicts and reports the
//! observed rate.

use indord::core::database::Database;
use indord::core::parse::{parse_database, parse_query};
use indord::core::query::DnfQuery;
use indord::core::session::Session;
use indord::core::sym::Vocabulary;
use indord::entail::engine::Verdict;
use indord::entail::{Engine, PreparedQuery};
use std::thread;

mod common;

const THREADS: usize = 8;
const ROUNDS: usize = 40;

/// Two observer chains with mixed `<`/`<=` steps and a `!=` pair — wide
/// enough that the disjunctive and `!=` routes genuinely search (the
/// same shape the server e2e seeds over the wire).
fn serving_database(voc: &mut Vocabulary) -> Database {
    parse_database(voc, &common::serving_db_text(2, 12)).expect("well-formed database")
}

fn serving_queries(voc: &mut Vocabulary) -> Vec<DnfQuery> {
    [
        "exists a b. P0(a) & a < b & P1(b)",
        "(exists s. P0(s) & P1(s)) | exists s t. P0(s) & s < t & P2(t)",
        "exists s t. P0(s) & P2(t) & s != t",
    ]
    .iter()
    .map(|t| parse_query(voc, t).expect("well-formed query"))
    .collect()
}

/// Runs every prepared query once per round on `threads` threads,
/// asserting each verdict matches `expected`.
fn hammer(
    eng: &Engine<'_>,
    session: &Session,
    prepared: &[PreparedQuery],
    expected: &[Verdict],
    threads: usize,
) {
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    for (pq, want) in prepared.iter().zip(expected) {
                        let got = eng.entails_prepared(session, pq).expect("evaluation");
                        assert_eq!(&got, want, "concurrent verdict drifted");
                    }
                }
            });
        }
    });
}

#[test]
fn parallel_readers_agree_and_contention_is_reported() {
    let mut voc = Vocabulary::new();
    let db = serving_database(&mut voc);
    let queries = serving_queries(&mut voc);
    let eng = Engine::new(&voc);
    let session = Session::new(db.clone());
    let prepared: Vec<PreparedQuery> = queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
    let expected: Vec<Verdict> = prepared
        .iter()
        .map(|pq| eng.entails_prepared(&session, pq).unwrap())
        .collect();
    // Every thread must see the single-threaded verdicts.
    hammer(&eng, &session, &prepared, &expected, THREADS);
    let scaffold = session.disjunctive_scaffold(&voc).unwrap();
    let fallbacks = scaffold.contention_fallbacks();
    let searches = (THREADS * ROUNDS * prepared.len()) as u64;
    println!(
        "concurrent_serving: {fallbacks} private-table fallbacks over {searches} \
         evaluations across {THREADS} threads ({:.1}%)",
        100.0 * fallbacks as f64 / searches as f64
    );
    assert!(fallbacks <= searches, "at most one fallback per evaluation");
    assert!(
        scaffold.cached_pair_count() > 0,
        "the shared table still serves the uncontended path"
    );
}

#[test]
fn single_writer_phases_between_parallel_read_phases() {
    let mut voc = Vocabulary::new();
    let db = serving_database(&mut voc);
    let queries = serving_queries(&mut voc);
    let eng = Engine::new(&voc);
    let mut session = Session::new(db);
    let prepared: Vec<PreparedQuery> = queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
    let p2 = voc.find_pred("P2").unwrap();
    // Alternate: one write (label fact / acyclic cross-chain edge / !=),
    // then a parallel read phase validated against a cold session.
    type Write = Box<dyn Fn(&mut Session, &Vocabulary)>;
    let writes: Vec<Write> = vec![
        Box::new(move |s, voc| {
            s.insert_fact(
                voc,
                p2,
                vec![indord::core::atom::Term::Ord(voc.find_ord("t0_3").unwrap())],
            )
            .unwrap()
        }),
        Box::new(|s, voc| {
            s.assert_lt(voc.find_ord("t0_4").unwrap(), voc.find_ord("t1_7").unwrap())
        }),
        Box::new(|s, voc| {
            s.assert_ne(voc.find_ord("t0_8").unwrap(), voc.find_ord("t1_1").unwrap())
        }),
        Box::new(|s, voc| {
            s.assert_le(
                voc.find_ord("t0_9").unwrap(),
                voc.find_ord("t1_10").unwrap(),
            )
        }),
    ];
    for write in &writes {
        // Warm the scaffold so the write has something to patch.
        let _ = eng.entails_prepared(&session, &prepared[1]).unwrap();
        write(&mut session, &voc);
        let cold = Session::new(session.database().clone());
        let expected: Vec<Verdict> = prepared
            .iter()
            .map(|pq| eng.entails_prepared(&cold, pq).unwrap())
            .collect();
        hammer(&eng, &session, &prepared, &expected, 4);
        // The patched scaffold keeps matching fresh recomputation.
        session
            .disjunctive_scaffold(&voc)
            .unwrap()
            .validate(session.monadic(&voc).unwrap())
            .expect("scaffold consistent after write + parallel reads");
    }
}
