//! Differential concurrency harness for the MVCC serving layer.
//!
//! Two properties pin the snapshot-isolation contract of
//! `indord-server`'s epoch MVCC (ISSUE 6):
//!
//! 1. **No torn states.** While a writer commits a known fragment
//!    sequence one commit at a time, reader threads continuously pin
//!    `Db::read_snapshot()` and check that every snapshot they observe
//!    is *exactly* some prefix of the committed sequence: its atom
//!    count is a prefix count (multi-atom fragments make intermediate
//!    counts detectable), its panel verdicts equal the oracle's
//!    verdicts for that prefix, and per-reader sequence numbers never
//!    regress.
//!
//! 2. **Group commit is invisible.** A proptest draws a pool of
//!    pairwise-commutative writes (so the final state is independent
//!    of apply order), applies them once sequentially over a single
//!    connection and once concurrently from several connections (where
//!    the mutator is free to coalesce them into group commits), and
//!    checks the two end states agree on batch verdicts, enumerated
//!    countermodel *sets*, and atom counts — with the grouped
//!    registry's stats audited for exact fragment/atom accounting.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::parse::{parse_database, parse_query, parse_query_expr_in};
use indord::core::session::Session;
use indord::core::sym::{PredSym, Vocabulary};
use indord::entail::{disjunctive, ineq, Engine};
use indord_server::protocol::Response;
use indord_server::runtime::{Conn, Registry};
use proptest::prelude::*;

/// Seed database: three predicates over six constants with two forward
/// order edges. Every generated write below stays forward, so any
/// subset in any order is consistent.
const SEED: &str = "pred P0(ord); pred P1(ord); pred P2(ord); \
     P0(c0); P1(c1); P2(c2); P0(c3); P1(c4); P2(c5); c0 < c1; c1 <= c2;";

/// Seed atom count: six labels plus two order edges.
const SEED_ATOMS: usize = 8;

/// The verdict panel. Chosen so verdicts *flip* at different prefixes
/// of the write sequence (a panel that never changes would accept a
/// stale-oracle bug), and so the `!=`-extended §7 route is exercised.
const PANEL: [&str; 4] = [
    "exists a b. P0(a) & a < b & P1(b)",
    "exists a b. P2(a) & a < b & P0(b)",
    "(exists s. P1(s) & P2(s)) | exists s t. P2(s) & s < t & P1(t)",
    "exists s t. P1(s) & s != t & P1(t)",
];

/// Evaluates the panel against an arbitrary (vocabulary, session)
/// pair without mutating the vocabulary — exactly the read path a
/// snapshot serves.
fn eval_panel(voc: &Vocabulary, session: &Session) -> Vec<bool> {
    let eng = Engine::new(voc);
    PANEL
        .iter()
        .map(|text| {
            let expr = parse_query_expr_in(voc, text).expect("panel query parses");
            let q = expr.to_dnf(voc).expect("panel query normalizes");
            let pq = eng.prepare(&q).expect("panel query prepares");
            eng.entails_prepared(session, &pq)
                .expect("panel query evaluates")
                .holds()
        })
        .collect()
}

/// Oracle for one committed prefix: rebuild from scratch and decide
/// the panel with a direct engine. Returns (atom count, verdicts).
fn oracle_prefix(writes: &[&str]) -> (usize, Vec<bool>) {
    let mut voc = Vocabulary::new();
    let text: String = std::iter::once(SEED)
        .chain(writes.iter().copied())
        .collect::<Vec<_>>()
        .join(" ");
    let db = parse_database(&mut voc, &text).expect("oracle database parses");
    let queries: Vec<_> = PANEL
        .iter()
        .map(|q| parse_query(&mut voc, q).expect("oracle query parses"))
        .collect();
    let eng = Engine::new(&voc);
    let verdicts = queries
        .iter()
        .map(|q| eng.entails(&db, q).expect("oracle evaluates").holds())
        .collect();
    (db.len(), verdicts)
}

/// Property 1: every snapshot a reader observes is a committed prefix.
///
/// The write sequence mixes patchable and structural fragments and
/// includes several multi-atom fragments whose *intermediate* atom
/// counts appear in no prefix — so a reader that ever saw a half-applied
/// fragment (a torn state) would fail the prefix-count lookup.
#[test]
fn snapshots_are_prefixes_of_the_committed_write_sequence() {
    const WRITES: [&str; 8] = [
        "P2(c0);",
        "c2 < c3; c3 <= c4;",
        "P0(d0); P1(d1); d0 < d1;",
        "c4 != c5;",
        "c0 <= c1; P1(c5);",
        "d1 < c0;",
        "P2(d0); c1 != d1;",
        "e0 <= e1; P0(e0);",
    ];
    const READERS: usize = 4;

    // Oracle: committed prefix -> expected panel, keyed by atom count.
    // Counts are strictly increasing, so the key is unique; intermediate
    // counts inside multi-atom fragments are absent by construction.
    let mut by_atoms: HashMap<usize, Vec<bool>> = HashMap::new();
    let mut counts = Vec::new();
    for i in 0..=WRITES.len() {
        let (atoms, verdicts) = oracle_prefix(&WRITES[..i]);
        assert_eq!(
            counts.last().map(|&c| c < atoms),
            if i == 0 { None } else { Some(true) },
            "prefix atom counts must be strictly increasing"
        );
        counts.push(atoms);
        by_atoms.insert(atoms, verdicts);
    }
    assert_eq!(counts[0], SEED_ATOMS);

    let registry = Arc::new(Registry::new());
    let mut writer = Conn::new(Arc::clone(&registry));
    assert!(matches!(writer.handle_line("OPEN lab"), Response::Ok(_)));
    assert!(matches!(
        writer.handle_line(&format!("FACT {SEED}")),
        Response::Ok(_)
    ));
    let db = registry.get("lab").expect("lab exists");

    let stop = AtomicBool::new(false);
    let observed: u64 = thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let db = &db;
                let stop = &stop;
                let by_atoms = &by_atoms;
                scope.spawn(move || {
                    let mut seen = 0u64;
                    let mut last_seq = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = db.read_snapshot().expect("MVCC mode has snapshots");
                        assert!(
                            snap.seq() >= last_seq,
                            "snapshot sequence regressed: {} after {last_seq}",
                            snap.seq()
                        );
                        last_seq = snap.seq();
                        let atoms = snap.session().len();
                        let expected = by_atoms.get(&atoms).unwrap_or_else(|| {
                            panic!("torn snapshot: {atoms} atoms matches no committed prefix")
                        });
                        let got = eval_panel(snap.vocabulary(), snap.session());
                        assert_eq!(
                            &got, expected,
                            "snapshot at {atoms} atoms disagrees with its prefix oracle"
                        );
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();

        // The committed sequence is program order on this one connection:
        // each FACT blocks until its commit is published. The pauses keep
        // the readers sampling across many distinct prefixes.
        for w in WRITES {
            match writer.handle_line(&format!("FACT {w}")) {
                Response::Ok(_) => {}
                other => panic!("FACT {w}: unexpected {other:?}"),
            }
            thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert!(observed > 0, "readers must observe at least one snapshot");

    // The final snapshot is the full sequence.
    let snap = db.read_snapshot().unwrap();
    assert_eq!(snap.session().len(), *counts.last().unwrap());
    assert_eq!(
        eval_panel(snap.vocabulary(), snap.session()),
        by_atoms[counts.last().unwrap()]
    );
}

// ---------------------------------------------------------------------
// Property 2: group-committed writes == the same fragments one-by-one.
// ---------------------------------------------------------------------

/// One single-atom write from a pairwise-commutative pool: labels and
/// `!=` over the six seed constants, strictly *forward* order edges
/// (index-increasing, so no cycle and no `<=`-merge can ever form
/// regardless of apply order), and structural fresh-constant labels.
/// Every write succeeds and the final state is order-independent —
/// which is what makes the grouped-vs-sequential comparison exact.
/// (Rollback of *rejected* fragments under grouping is covered by the
/// runtime unit tests; it is inherently order-sensitive.)
#[derive(Debug, Clone)]
enum W {
    Label(usize, usize),
    Lt(usize, usize),
    Le(usize, usize),
    Ne(usize, usize),
    Fresh(usize, usize),
}

impl W {
    fn render(&self) -> String {
        match *self {
            W::Label(p, i) => format!("P{p}(c{i});"),
            W::Lt(a, b) => format!("c{a} < c{b};"),
            W::Le(a, b) => format!("c{a} <= c{b};"),
            W::Ne(a, b) => format!("c{a} != c{b};"),
            W::Fresh(p, k) => format!("P{p}(f{k});"),
        }
    }
}

fn write_op() -> impl Strategy<Value = W> {
    let forward = || (0..5usize).prop_flat_map(|a| (Just(a), (a + 1)..6usize));
    prop_oneof![
        (0..3usize, 0..6usize).prop_map(|(p, i)| W::Label(p, i)),
        forward().prop_map(|(a, b)| W::Lt(a, b)),
        forward().prop_map(|(a, b)| W::Le(a, b)),
        forward().prop_map(|(a, b)| W::Ne(a, b)),
        (0..3usize, 0..4usize).prop_map(|(p, k)| W::Fresh(p, k)),
    ]
}

/// Builds a registry with the seed installed and the panel prepared
/// under names `q0..q3`, returning the admin connection.
fn seeded_conn(registry: &Arc<Registry>) -> Conn {
    let mut c = Conn::new(Arc::clone(registry));
    assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
    assert!(matches!(
        c.handle_line(&format!("FACT {SEED}")),
        Response::Ok(_)
    ));
    for (i, q) in PANEL.iter().enumerate() {
        assert!(matches!(
            c.handle_line(&format!("PREPARE q{i}: {q}")),
            Response::Ok(_)
        ));
    }
    c
}

fn ps(ids: &[usize]) -> PredSet {
    ids.iter().copied().map(PredSym::from_index).collect()
}

/// The panel of PANEL's queries in monadic form (PredSym indices 0..3
/// are stable across runs: both registries intern P0, P1, P2 from the
/// identical seed text first). Each entry is one disjunct list.
fn monadic_panel() -> Vec<Vec<MonadicQuery>> {
    let chain = |lo: usize, hi: usize| {
        MonadicQuery::new(
            OrderGraph::from_dag_edges(2, &[(0, 1, OrderRel::Lt)]).unwrap(),
            vec![ps(&[lo]), ps(&[hi])],
        )
    };
    let single = |ids: &[usize]| {
        MonadicQuery::new(OrderGraph::from_dag_edges(1, &[]).unwrap(), vec![ps(ids)])
    };
    let mut ne_pair = MonadicQuery::new(
        OrderGraph::from_dag_edges(2, &[]).unwrap(),
        vec![ps(&[1]), ps(&[1])],
    );
    ne_pair.ne.push((0, 1));
    // Thm 5.3 search takes [<,<=] disjuncts only: expand the `!=` query
    // into its order-saturated disjunction first (§7).
    let ne_expanded = ineq::eliminate_ne(&ne_pair, 64).expect("!= expansion fits the cap");
    vec![
        vec![chain(0, 1)],
        vec![chain(2, 0)],
        vec![single(&[1, 2]), chain(2, 1)],
        ne_expanded,
    ]
}

/// Enumerated countermodel sets for the monadic panel against one
/// snapshot's state. Model *sets* (not rendered witnesses) are the
/// right comparison: vertex numbering differs across apply orders, but
/// the minimal-countermodel words are canonical.
fn countermodel_sets(mdb: &MonadicDatabase) -> Vec<HashSet<indord::core::model::MonadicModel>> {
    monadic_panel()
        .iter()
        .map(|disjuncts| {
            disjunctive::countermodels(mdb, disjuncts, 4096)
                .expect("countermodel enumeration succeeds")
                .into_iter()
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn group_committed_writes_match_one_by_one(
        ops in proptest::collection::vec(write_op(), 1..=10)
    ) {
        let frags: Vec<String> = ops.iter().map(W::render).collect();
        let batch = format!(
            "BATCH {}",
            (0..PANEL.len()).map(|i| format!("q{i}")).collect::<Vec<_>>().join(" ")
        );

        // (a) Sequential: one connection, one fragment per commit.
        let reg_a = Arc::new(Registry::new());
        let mut ca = seeded_conn(&reg_a);
        for f in &frags {
            prop_assert!(
                matches!(ca.handle_line(&format!("FACT {f}")), Response::Ok(_)),
                "sequential FACT {f} must succeed"
            );
        }

        // (b) Grouped: the same fragments submitted from four concurrent
        // connections; the mutator coalesces whatever it finds queued.
        let reg_b = Arc::new(Registry::new());
        let mut cb = seeded_conn(&reg_b);
        thread::scope(|scope| {
            for t in 0..4usize {
                let frags = &frags;
                let reg_b = Arc::clone(&reg_b);
                scope.spawn(move || {
                    let mut c = Conn::new(reg_b);
                    assert!(matches!(c.handle_line("USE lab"), Response::Ok(_)));
                    for f in frags.iter().skip(t).step_by(4) {
                        match c.handle_line(&format!("FACT {f}")) {
                            Response::Ok(_) => {}
                            other => panic!("grouped FACT {f}: unexpected {other:?}"),
                        }
                    }
                });
            }
        });

        // Verdicts agree.
        let va = ca.handle_line(&batch);
        let vb = cb.handle_line(&batch);
        prop_assert!(matches!(va, Response::Verdicts(_)), "BATCH answers verdicts");
        prop_assert_eq!(&va, &vb, "sequential and grouped verdicts differ");

        // Countermodel sets agree (deeper than verdicts: the full
        // minimal-model frontier of each panel query must match).
        let snap_a = reg_a.get("lab").unwrap().read_snapshot().unwrap();
        let snap_b = reg_b.get("lab").unwrap().read_snapshot().unwrap();
        let mdb_a = snap_a.session().monadic(snap_a.vocabulary()).expect("monadic view");
        let mdb_b = snap_b.session().monadic(snap_b.vocabulary()).expect("monadic view");
        prop_assert_eq!(
            countermodel_sets(mdb_a),
            countermodel_sets(mdb_b),
            "countermodel sets diverge between sequential and grouped runs"
        );

        // Stats audit on the grouped registry: exact fragment and atom
        // accounting under whatever grouping happened.
        let sb = match cb.handle_line("STATS") {
            Response::Stats(s) => *s,
            other => panic!("STATS: unexpected {other:?}"),
        };
        let sa = match ca.handle_line("STATS") {
            Response::Stats(s) => *s,
            other => panic!("STATS: unexpected {other:?}"),
        };
        prop_assert_eq!(sa.atoms, sb.atoms, "final atom counts differ");
        // Fragments: the seed plus every generated op, each applied once.
        prop_assert_eq!(
            sb.patchable_writes + sb.structural_writes,
            1 + frags.len() as u64
        );
        // Atoms: the seed's eight plus one per single-atom op.
        prop_assert_eq!(sb.writes, (SEED_ATOMS + frags.len()) as u64);
        // Every job (seed + panel prepares + ops) passed through a group.
        prop_assert_eq!(
            sb.group_fragments,
            (1 + PANEL.len() + frags.len()) as u64
        );
        prop_assert!(sb.snapshots_published >= 1);
        prop_assert_eq!(sb.commit_queue_depth, 0, "queue must drain");
    }
}

/// A panic inside ONE fragment's apply must not poison its groupmates:
/// the faulty job gets the typed internal error, the writes queued
/// around it in the *same* group commit ack normally, and the
/// published snapshot contains exactly the groupmates — unpoisoned,
/// readable, and consistent with the sequential oracle. (The escaped
/// variant — a panic outside the per-job guard — is the supervisor's
/// business and lives in the chaos suite.)
#[test]
fn contained_apply_panic_spares_groupmates() {
    let registry = Arc::new(Registry::new());
    let mut c = seeded_conn(&registry);
    let db = registry.get("lab").unwrap();

    // Stall the mutator, then enqueue W1 / boom / W2 from this one
    // thread so they drain as a single deterministic group.
    let stall = db.stall_mutator(Duration::from_millis(200)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while db.stats().commit_queue_depth() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "mutator never took the stall"
        );
        thread::sleep(Duration::from_millis(1));
    }
    let rx1 = db.enqueue_fragment("P2(c0);").unwrap();
    let boom = db.inject_mutator_panic(false).unwrap();
    let rx2 = db.enqueue_fragment("P0(c5);").unwrap();
    stall.recv().unwrap().unwrap();

    // Groupmates ack; the faulty job reports the typed internal error.
    match rx1.recv().unwrap() {
        Ok(Response::Ok(msg)) => assert!(msg.contains("inserted 1 atoms"), "{msg}"),
        other => panic!("W1: unexpected {other:?}"),
    }
    match boom.recv().unwrap() {
        Err(e) => assert!(
            e.message
                .contains("internal error while applying the write"),
            "boom: {e:?}"
        ),
        other => panic!("boom: unexpected {other:?}"),
    }
    match rx2.recv().unwrap() {
        Ok(Response::Ok(msg)) => assert!(msg.contains("inserted 1 atoms"), "{msg}"),
        other => panic!("W2: unexpected {other:?}"),
    }

    // No restart, no health change: the per-job guard contained it.
    assert_eq!(db.stats().mutator_restarts(), 0);
    let (state, _) = db.health();
    assert_eq!(state, indord_server::protocol::HealthState::Ok);

    // The published snapshot is the seed plus exactly the groupmates —
    // same text, same panel — per the sequential oracle.
    let oreg = Arc::new(Registry::new());
    let mut oc = seeded_conn(&oreg);
    for f in ["P2(c0);", "P0(c5);"] {
        assert!(matches!(
            oc.handle_line(&format!("FACT {f}")),
            Response::Ok(_)
        ));
    }
    let snap = db.read_snapshot().unwrap();
    let osnap = oreg.get("lab").unwrap().read_snapshot().unwrap();
    assert_eq!(snap.session().len(), osnap.session().len());
    assert_eq!(
        snap.session()
            .database()
            .display(snap.vocabulary())
            .to_string(),
        osnap
            .session()
            .database()
            .display(osnap.vocabulary())
            .to_string(),
        "groupmates' snapshot diverges from the oracle"
    );
    for q in PANEL {
        assert_eq!(
            c.handle_line(&format!("ENTAIL {q}")),
            oc.handle_line(&format!("ENTAIL {q}")),
            "panel `{q}` diverges after a contained panic"
        );
    }
    // And the write path is still alive.
    assert!(matches!(c.handle_line("FACT P1(c3);"), Response::Ok(_)));
}
