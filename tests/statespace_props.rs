//! Property tests pinning the arena-interned Theorem 5.3 search to the
//! pre-refactor semantics: on randomized monadic databases, the interned
//! engine and the `disjunctive::reference` implementation must agree on
//! entailment verdicts, countermodel validity, and the *set* of minimal
//! falsifiers enumerated by `countermodels()`; the one-shot,
//! prepared-session, and scaffold-cached paths must all return the same
//! answers; and the §7 sub-scaffold projection must be invisible to
//! verdicts — independent of scaffold warmth and of whether the view was
//! projected from a warm parent or built fresh.

use indord::core::atom::{OrderRel, Term};
use indord::core::bitset::PredSet;
use indord::core::model::MonadicModel;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::parse::{parse_database, parse_query};
use indord::core::scaffold::{DisjunctiveScaffold, SubScaffold};
use indord::core::session::Session;
use indord::core::sym::{PredSym, Vocabulary};
use indord::entail::{disjunctive, modelcheck, naive, Engine, PreparedQuery};
use proptest::prelude::*;
use std::collections::HashSet;

const NPREDS: usize = 3;

fn pred_set() -> impl Strategy<Value = PredSet> {
    proptest::bits::u8::between(0, NPREDS).prop_map(|bits| {
        (0..NPREDS)
            .filter(|i| bits & (1 << i) != 0)
            .map(PredSym::from_index)
            .collect()
    })
}

/// A random `[<,<=]` labelled dag on up to `max_n` vertices.
fn labelled_dag(max_n: usize) -> impl Strategy<Value = (OrderGraph, Vec<PredSet>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n * n,
                prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)],
            ),
            0..=n * 2,
        );
        let labels = proptest::collection::vec(pred_set(), n);
        (Just(n), edges, labels).prop_map(|(n, raw_edges, labels)| {
            let mut edges = Vec::new();
            for (code, rel) in raw_edges {
                let (i, j) = (code / n, code % n);
                if i < j {
                    edges.push((i, j, rel));
                }
            }
            (
                OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic"),
                labels,
            )
        })
    })
}

fn db_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicDatabase::new(g, l))
}

/// As [`db_strategy`] but carrying up to two §7 `!=` constraints.
fn db_ne_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    (
        db_strategy(max_n),
        proptest::collection::vec((0..max_n, 0..max_n), 0..=2),
    )
        .prop_map(|(mut db, raw_ne)| {
            let n = db.graph.len();
            for (a, b) in raw_ne {
                db.ne.push((a % n, b % n));
            }
            db
        })
}

fn query_strategy(max_n: usize) -> impl Strategy<Value = MonadicQuery> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicQuery::new(g, l))
}

fn disjuncts_strategy() -> impl Strategy<Value = Vec<MonadicQuery>> {
    proptest::collection::vec(query_strategy(3), 1..=2)
}

fn model_set(models: &[MonadicModel]) -> HashSet<MonadicModel> {
    models.iter().cloned().collect()
}

// ---------------------------------------------------------------------
// Incremental scaffold maintenance: random mutation sequences on a warm
// session must be indistinguishable from a cold rebuild after every
// step — verdicts (with countermodels), enumerated countermodel sets,
// and the scaffold's internal tables (`DisjunctiveScaffold::validate`
// re-derives every memoized pair from scratch).
// ---------------------------------------------------------------------

/// One session mutation, indices resolved against a fixed constant pool
/// `c0..c5` and predicates `P0..P2`. Sequences mix in-place-patchable
/// writes (facts over known constants, acyclic edges, `!=` pairs) with
/// structural ones (fresh constants, cycle-closing edges) so both the
/// patch and the fallback paths run.
#[derive(Debug, Clone, Copy)]
enum MutOp {
    /// `P{p}(c{i})` — label-only fact insert.
    Fact(usize, usize),
    /// `c{a} < c{b}` (a == b closes a cycle → invalidating path).
    Lt(usize, usize),
    /// `c{a} <= c{b}`.
    Le(usize, usize),
    /// `c{a} != c{b}`.
    Ne(usize, usize),
    /// `P{p}(f{k})` over a fresh constant — structural invalidation.
    FreshFact(usize, usize),
}

const POOL: usize = 6;

fn mut_op() -> impl Strategy<Value = MutOp> {
    (0usize..5, 0usize..POOL, 0usize..POOL).prop_map(|(kind, a, b)| match kind {
        0 => MutOp::Fact(a % NPREDS, b),
        1 => MutOp::Lt(a, b),
        2 => MutOp::Le(a, b),
        3 => MutOp::Ne(a, b),
        _ => MutOp::FreshFact(a % NPREDS, b),
    })
}

/// Interns every symbol the op sequences can name, so `apply` works off
/// a shared `&Vocabulary` (the engine borrows it for the whole run).
fn intern_mutation_symbols(voc: &mut Vocabulary) {
    for i in 0..POOL {
        voc.ord(&format!("c{i}"));
        voc.ord(&format!("f{i}"));
    }
}

fn apply(op: MutOp, session: &mut Session, voc: &Vocabulary) {
    let c = |i: usize| voc.find_ord(&format!("c{i}")).unwrap();
    let pred = |p: usize| voc.find_pred(&format!("P{p}")).unwrap();
    match op {
        MutOp::Fact(p, i) => {
            session
                .insert_fact(voc, pred(p), vec![Term::Ord(c(i))])
                .unwrap();
        }
        MutOp::Lt(a, b) => session.assert_lt(c(a), c(b)),
        MutOp::Le(a, b) => session.assert_le(c(a), c(b)),
        MutOp::Ne(a, b) => session.assert_ne(c(a), c(b)),
        MutOp::FreshFact(p, k) => {
            let f = voc.find_ord(&format!("f{k}")).unwrap();
            session
                .insert_fact(voc, pred(p), vec![Term::Ord(f)])
                .unwrap();
        }
    }
}

/// The fixed query mix evaluated after every mutation: sequential,
/// disjunctive (drives the scaffold), and `!=`-carrying shapes.
fn mutation_suite_queries(voc: &mut Vocabulary) -> Vec<PreparedQuery> {
    let texts = [
        "exists a b. P0(a) & a < b & P1(b)",
        "(exists s. P0(s) & P1(s)) | exists s t. P2(s) & s <= t & P1(t)",
        "exists s t. P0(s) & P1(t) & s != t",
    ];
    let queries: Vec<_> = texts
        .iter()
        .map(|t| parse_query(voc, t).expect("well-formed"))
        .collect();
    let eng = Engine::new(voc);
    queries.iter().map(|q| eng.prepare(q).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: after every step of a random mutation
    /// sequence, the warm (incrementally patched) session and a cold
    /// rebuild agree on every verdict and countermodel enumeration, and
    /// the patched scaffold's reachability/topo/arena/pair tables match
    /// fresh recomputation exactly.
    #[test]
    fn incremental_scaffold_matches_cold_rebuild(
        ops in proptest::collection::vec(mut_op(), 1..10),
    ) {
        let mut voc = Vocabulary::new();
        let db = parse_database(
            &mut voc,
            "pred P0(ord); pred P1(ord); pred P2(ord); \
             P0(c0); P1(c1); P2(c2); P0(c3); P1(c4); P2(c5); \
             c0 < c1; c3 <= c4;",
        )
        .unwrap();
        let prepared = mutation_suite_queries(&mut voc);
        intern_mutation_symbols(&mut voc);
        let mut session = Session::new(db);
        let eng = Engine::new(&voc);
        // Warm everything before the first write.
        for pq in &prepared {
            let _ = eng.entails_prepared(&session, pq);
        }
        for &op in &ops {
            apply(op, &mut session, &voc);
            let cold = Session::new(session.database().clone());
            for pq in &prepared {
                let warm = eng.entails_prepared(&session, pq);
                let fresh = eng.entails_prepared(&cold, pq);
                prop_assert_eq!(
                    &warm, &fresh,
                    "verdict diverged after {:?} (ops {:?})", op, ops
                );
            }
            // When the database is still consistent and monadic, compare
            // the full countermodel enumeration and audit the scaffold.
            if let Ok(mdb) = session.monadic(&voc).cloned() {
                let scaffold = session.disjunctive_scaffold(&voc).unwrap();
                if let Err(why) = scaffold.validate(&mdb) {
                    prop_assert!(false, "scaffold drifted after {:?}: {}", op, why);
                }
                let disjuncts = vec![
                    MonadicQuery::new(
                        OrderGraph::from_dag_edges(2, &[(0, 1, OrderRel::Le)]).unwrap(),
                        vec![
                            PredSet::singleton(PredSym::from_index(0)),
                            PredSet::singleton(PredSym::from_index(1)),
                        ],
                    ),
                ];
                let warm_models = disjunctive::countermodels_scaffolded(
                    &mdb, scaffold, &disjuncts, 64, disjunctive::STATE_CAP,
                ).unwrap();
                let fresh_scaffold = DisjunctiveScaffold::new(&mdb);
                let fresh_models = disjunctive::countermodels_scaffolded(
                    &mdb, &fresh_scaffold, &disjuncts, 64, disjunctive::STATE_CAP,
                ).unwrap();
                prop_assert_eq!(
                    model_set(&warm_models),
                    model_set(&fresh_models),
                    "countermodel sets diverged after {:?}", op
                );
            }
        }
    }

    /// Pair-table cap: a session bounded by `with_max_pairs` answers
    /// exactly like an unbounded one across the same mutation sequence —
    /// eviction must be semantically invisible.
    #[test]
    fn capped_pair_table_is_semantically_invisible(
        ops in proptest::collection::vec(mut_op(), 1..8),
    ) {
        let mut voc = Vocabulary::new();
        let text = "pred P0(ord); pred P1(ord); pred P2(ord); \
                    P0(c0); P1(c1); P2(c2); P0(c3); P1(c4); P2(c5); \
                    c0 < c1; c3 <= c4;";
        let db = parse_database(&mut voc, text).unwrap();
        let prepared = mutation_suite_queries(&mut voc);
        intern_mutation_symbols(&mut voc);
        let eng = Engine::new(&voc);
        let mut capped = Session::new(db.clone()).with_max_pairs(2);
        let mut unbounded = Session::new(db);
        for &op in &ops {
            apply(op, &mut capped, &voc);
            apply(op, &mut unbounded, &voc);
            for pq in &prepared {
                prop_assert_eq!(
                    &eng.entails_prepared(&capped, pq),
                    &eng.entails_prepared(&unbounded, pq),
                    "capped session diverged after {:?}", op
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interned search == pre-refactor reference: verdicts, and genuine
    /// countermodels on failure.
    #[test]
    fn interned_verdict_matches_reference(
        db in db_strategy(5),
        disjuncts in disjuncts_strategy(),
    ) {
        let new = disjunctive::check(&db, &disjuncts).unwrap();
        let old = disjunctive::reference::check(&db, &disjuncts).unwrap();
        prop_assert_eq!(new.holds(), old.holds(), "verdict drifted from reference");
        if let Some(m) = new.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel supports D");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts), "countermodel falsifies Φ");
        }
    }

    /// `countermodels()` enumerates exactly the reference's minimal
    /// falsifier set (as a set: path order may differ, members may not).
    #[test]
    fn countermodel_set_matches_reference(
        db in db_strategy(4),
        disjuncts in disjuncts_strategy(),
    ) {
        let new = disjunctive::countermodels(&db, &disjuncts, 256).unwrap();
        let old = disjunctive::reference::countermodels(&db, &disjuncts, 256).unwrap();
        prop_assert_eq!(
            model_set(&new),
            model_set(&old),
            "minimal-falsifier sets diverged"
        );
        // Within the new engine, deduplication really deduplicates.
        prop_assert_eq!(new.len(), model_set(&new).len());
    }

    /// One-shot scaffold == shared scaffold (cold and warm pair tables):
    /// identical verdicts *including* the countermodel, and identical
    /// enumerations. Exercises the session-cached configuration where
    /// later queries reuse pairs interned by earlier ones.
    #[test]
    fn scaffold_cached_paths_agree(
        db in db_strategy(5),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let one_shot = disjunctive::check(&db, &disjuncts).unwrap();
        let scaffold = DisjunctiveScaffold::new(&db);
        // Warm the pair table with an unrelated query first.
        let _ = disjunctive::check_scaffolded(&db, &scaffold, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let cold = disjunctive::check_scaffolded(&db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::check_scaffolded(&db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        prop_assert_eq!(&one_shot, &cold, "one-shot vs shared scaffold");
        prop_assert_eq!(&cold, &warm, "warm pair table drifted");
        let enum_one_shot = disjunctive::countermodels(&db, &disjuncts, 128).unwrap();
        let enum_cached = disjunctive::countermodels_scaffolded(
            &db, &scaffold, &disjuncts, 128, disjunctive::STATE_CAP,
        )
        .unwrap();
        prop_assert_eq!(enum_one_shot, enum_cached, "enumeration depends on scaffold warmth");
    }

    /// §7 sub-scaffold properties: verdicts (including the exact
    /// countermodel) are independent of scaffold warmth and of whether
    /// the sub-scaffold view was projected off a warm parent or built
    /// over a fresh one — and they match the naive `!=`-aware oracle.
    #[test]
    fn sub_scaffold_projection_is_invisible(
        db in db_ne_strategy(5),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let oracle = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        // Fresh parent, explicit projection.
        let fresh_parent = DisjunctiveScaffold::new(&db);
        let fresh = disjunctive::check_restricted(
            &db, &SubScaffold::project(&fresh_parent, &db), &disjuncts, disjunctive::STATE_CAP,
        ).unwrap();
        prop_assert_eq!(fresh.holds(), oracle, "fresh sub-scaffold vs naive");
        // Warm parent (pair table and blocked bits populated by an
        // unrelated query), implicit projection through check_scaffolded.
        let warm_parent = DisjunctiveScaffold::new(&db);
        let _ = disjunctive::check_scaffolded(&db, &warm_parent, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let cold = disjunctive::check_scaffolded(&db, &warm_parent, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::check_scaffolded(&db, &warm_parent, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        prop_assert_eq!(&fresh, &cold, "projected-warm vs built-fresh");
        prop_assert_eq!(&cold, &warm, "warm blocked-bit table drifted");
        // Explicit projection over the warm parent is the same view.
        let via_project = disjunctive::check_restricted(
            &db, &SubScaffold::project(&warm_parent, &db), &disjuncts,
            disjunctive::STATE_CAP,
        ).unwrap();
        prop_assert_eq!(&via_project, &fresh, "explicit warm projection vs fresh");
        if let Some(m) = fresh.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel respects D and !=");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
    }

    /// §7 countermodel sets: the restricted enumeration agrees between a
    /// projected (warm) and a fresh sub-scaffold, enumerates exactly the
    /// separating falsifiers, and is empty iff entailment holds.
    #[test]
    fn sub_scaffold_countermodel_sets_agree(
        db in db_ne_strategy(4),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let fresh_parent = DisjunctiveScaffold::new(&db);
        let fresh = disjunctive::countermodels_restricted(
            &db, &SubScaffold::project(&fresh_parent, &db), &disjuncts, 256,
            disjunctive::STATE_CAP,
        ).unwrap();
        let warm_parent = DisjunctiveScaffold::new(&db);
        let _ = disjunctive::check_scaffolded(&db, &warm_parent, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::countermodels_scaffolded(
            &db, &warm_parent, &disjuncts, 256, disjunctive::STATE_CAP,
        ).unwrap();
        prop_assert_eq!(
            model_set(&fresh),
            model_set(&warm),
            "restricted countermodel sets diverged between fresh and warm"
        );
        let oracle = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        prop_assert_eq!(oracle, fresh.is_empty());
        for m in &fresh {
            prop_assert!(modelcheck::is_model_of(m, &db), "model must separate != pairs");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
    }

    /// The naive oracle still agrees with the interned engine (the
    /// end-to-end guard the repo has always kept).
    #[test]
    fn interned_engine_agrees_with_naive_oracle(
        db in db_strategy(4),
        disjuncts in disjuncts_strategy(),
    ) {
        let by_naive = indord::entail::naive::monadic_check(&db, &disjuncts).unwrap().holds();
        prop_assert_eq!(disjunctive::entails(&db, &disjuncts).unwrap(), by_naive);
    }
}
