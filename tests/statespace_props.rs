//! Property tests pinning the arena-interned Theorem 5.3 search to the
//! pre-refactor semantics: on randomized monadic databases, the interned
//! engine and the `disjunctive::reference` implementation must agree on
//! entailment verdicts, countermodel validity, and the *set* of minimal
//! falsifiers enumerated by `countermodels()`; and the one-shot,
//! prepared-session, and scaffold-cached paths must all return the same
//! answers.

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::model::MonadicModel;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::scaffold::DisjunctiveScaffold;
use indord::core::sym::PredSym;
use indord::entail::{disjunctive, modelcheck};
use proptest::prelude::*;
use std::collections::HashSet;

const NPREDS: usize = 3;

fn pred_set() -> impl Strategy<Value = PredSet> {
    proptest::bits::u8::between(0, NPREDS).prop_map(|bits| {
        (0..NPREDS)
            .filter(|i| bits & (1 << i) != 0)
            .map(PredSym::from_index)
            .collect()
    })
}

/// A random `[<,<=]` labelled dag on up to `max_n` vertices.
fn labelled_dag(max_n: usize) -> impl Strategy<Value = (OrderGraph, Vec<PredSet>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n * n,
                prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)],
            ),
            0..=n * 2,
        );
        let labels = proptest::collection::vec(pred_set(), n);
        (Just(n), edges, labels).prop_map(|(n, raw_edges, labels)| {
            let mut edges = Vec::new();
            for (code, rel) in raw_edges {
                let (i, j) = (code / n, code % n);
                if i < j {
                    edges.push((i, j, rel));
                }
            }
            (
                OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic"),
                labels,
            )
        })
    })
}

fn db_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicDatabase::new(g, l))
}

fn query_strategy(max_n: usize) -> impl Strategy<Value = MonadicQuery> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicQuery::new(g, l))
}

fn disjuncts_strategy() -> impl Strategy<Value = Vec<MonadicQuery>> {
    proptest::collection::vec(query_strategy(3), 1..=2)
}

fn model_set(models: &[MonadicModel]) -> HashSet<MonadicModel> {
    models.iter().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interned search == pre-refactor reference: verdicts, and genuine
    /// countermodels on failure.
    #[test]
    fn interned_verdict_matches_reference(
        db in db_strategy(5),
        disjuncts in disjuncts_strategy(),
    ) {
        let new = disjunctive::check(&db, &disjuncts).unwrap();
        let old = disjunctive::reference::check(&db, &disjuncts).unwrap();
        prop_assert_eq!(new.holds(), old.holds(), "verdict drifted from reference");
        if let Some(m) = new.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel supports D");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts), "countermodel falsifies Φ");
        }
    }

    /// `countermodels()` enumerates exactly the reference's minimal
    /// falsifier set (as a set: path order may differ, members may not).
    #[test]
    fn countermodel_set_matches_reference(
        db in db_strategy(4),
        disjuncts in disjuncts_strategy(),
    ) {
        let new = disjunctive::countermodels(&db, &disjuncts, 256).unwrap();
        let old = disjunctive::reference::countermodels(&db, &disjuncts, 256).unwrap();
        prop_assert_eq!(
            model_set(&new),
            model_set(&old),
            "minimal-falsifier sets diverged"
        );
        // Within the new engine, deduplication really deduplicates.
        prop_assert_eq!(new.len(), model_set(&new).len());
    }

    /// One-shot scaffold == shared scaffold (cold and warm pair tables):
    /// identical verdicts *including* the countermodel, and identical
    /// enumerations. Exercises the session-cached configuration where
    /// later queries reuse pairs interned by earlier ones.
    #[test]
    fn scaffold_cached_paths_agree(
        db in db_strategy(5),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let one_shot = disjunctive::check(&db, &disjuncts).unwrap();
        let scaffold = DisjunctiveScaffold::new(&db);
        // Warm the pair table with an unrelated query first.
        let _ = disjunctive::check_scaffolded(&db, &scaffold, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let cold = disjunctive::check_scaffolded(&db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::check_scaffolded(&db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        prop_assert_eq!(&one_shot, &cold, "one-shot vs shared scaffold");
        prop_assert_eq!(&cold, &warm, "warm pair table drifted");
        let enum_one_shot = disjunctive::countermodels(&db, &disjuncts, 128).unwrap();
        let enum_cached = disjunctive::countermodels_scaffolded(
            &db, &scaffold, &disjuncts, 128, disjunctive::STATE_CAP,
        )
        .unwrap();
        prop_assert_eq!(enum_one_shot, enum_cached, "enumeration depends on scaffold warmth");
    }

    /// The naive oracle still agrees with the interned engine (the
    /// end-to-end guard the repo has always kept).
    #[test]
    fn interned_engine_agrees_with_naive_oracle(
        db in db_strategy(4),
        disjuncts in disjuncts_strategy(),
    ) {
        let by_naive = indord::entail::naive::monadic_check(&db, &disjuncts).unwrap().holds();
        prop_assert_eq!(disjunctive::entails(&db, &disjuncts).unwrap(), by_naive);
    }
}
