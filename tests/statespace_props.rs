//! Property tests pinning the arena-interned Theorem 5.3 search to the
//! pre-refactor semantics: on randomized monadic databases, the interned
//! engine and the `disjunctive::reference` implementation must agree on
//! entailment verdicts, countermodel validity, and the *set* of minimal
//! falsifiers enumerated by `countermodels()`; the one-shot,
//! prepared-session, and scaffold-cached paths must all return the same
//! answers; and the §7 sub-scaffold projection must be invisible to
//! verdicts — independent of scaffold warmth and of whether the view was
//! projected from a warm parent or built fresh.

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::model::MonadicModel;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::scaffold::{DisjunctiveScaffold, SubScaffold};
use indord::core::sym::PredSym;
use indord::entail::{disjunctive, modelcheck, naive};
use proptest::prelude::*;
use std::collections::HashSet;

const NPREDS: usize = 3;

fn pred_set() -> impl Strategy<Value = PredSet> {
    proptest::bits::u8::between(0, NPREDS).prop_map(|bits| {
        (0..NPREDS)
            .filter(|i| bits & (1 << i) != 0)
            .map(PredSym::from_index)
            .collect()
    })
}

/// A random `[<,<=]` labelled dag on up to `max_n` vertices.
fn labelled_dag(max_n: usize) -> impl Strategy<Value = (OrderGraph, Vec<PredSet>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n * n,
                prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)],
            ),
            0..=n * 2,
        );
        let labels = proptest::collection::vec(pred_set(), n);
        (Just(n), edges, labels).prop_map(|(n, raw_edges, labels)| {
            let mut edges = Vec::new();
            for (code, rel) in raw_edges {
                let (i, j) = (code / n, code % n);
                if i < j {
                    edges.push((i, j, rel));
                }
            }
            (
                OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic"),
                labels,
            )
        })
    })
}

fn db_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicDatabase::new(g, l))
}

/// As [`db_strategy`] but carrying up to two §7 `!=` constraints.
fn db_ne_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    (
        db_strategy(max_n),
        proptest::collection::vec((0..max_n, 0..max_n), 0..=2),
    )
        .prop_map(|(mut db, raw_ne)| {
            let n = db.graph.len();
            for (a, b) in raw_ne {
                db.ne.push((a % n, b % n));
            }
            db
        })
}

fn query_strategy(max_n: usize) -> impl Strategy<Value = MonadicQuery> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicQuery::new(g, l))
}

fn disjuncts_strategy() -> impl Strategy<Value = Vec<MonadicQuery>> {
    proptest::collection::vec(query_strategy(3), 1..=2)
}

fn model_set(models: &[MonadicModel]) -> HashSet<MonadicModel> {
    models.iter().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interned search == pre-refactor reference: verdicts, and genuine
    /// countermodels on failure.
    #[test]
    fn interned_verdict_matches_reference(
        db in db_strategy(5),
        disjuncts in disjuncts_strategy(),
    ) {
        let new = disjunctive::check(&db, &disjuncts).unwrap();
        let old = disjunctive::reference::check(&db, &disjuncts).unwrap();
        prop_assert_eq!(new.holds(), old.holds(), "verdict drifted from reference");
        if let Some(m) = new.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel supports D");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts), "countermodel falsifies Φ");
        }
    }

    /// `countermodels()` enumerates exactly the reference's minimal
    /// falsifier set (as a set: path order may differ, members may not).
    #[test]
    fn countermodel_set_matches_reference(
        db in db_strategy(4),
        disjuncts in disjuncts_strategy(),
    ) {
        let new = disjunctive::countermodels(&db, &disjuncts, 256).unwrap();
        let old = disjunctive::reference::countermodels(&db, &disjuncts, 256).unwrap();
        prop_assert_eq!(
            model_set(&new),
            model_set(&old),
            "minimal-falsifier sets diverged"
        );
        // Within the new engine, deduplication really deduplicates.
        prop_assert_eq!(new.len(), model_set(&new).len());
    }

    /// One-shot scaffold == shared scaffold (cold and warm pair tables):
    /// identical verdicts *including* the countermodel, and identical
    /// enumerations. Exercises the session-cached configuration where
    /// later queries reuse pairs interned by earlier ones.
    #[test]
    fn scaffold_cached_paths_agree(
        db in db_strategy(5),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let one_shot = disjunctive::check(&db, &disjuncts).unwrap();
        let scaffold = DisjunctiveScaffold::new(&db);
        // Warm the pair table with an unrelated query first.
        let _ = disjunctive::check_scaffolded(&db, &scaffold, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let cold = disjunctive::check_scaffolded(&db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::check_scaffolded(&db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        prop_assert_eq!(&one_shot, &cold, "one-shot vs shared scaffold");
        prop_assert_eq!(&cold, &warm, "warm pair table drifted");
        let enum_one_shot = disjunctive::countermodels(&db, &disjuncts, 128).unwrap();
        let enum_cached = disjunctive::countermodels_scaffolded(
            &db, &scaffold, &disjuncts, 128, disjunctive::STATE_CAP,
        )
        .unwrap();
        prop_assert_eq!(enum_one_shot, enum_cached, "enumeration depends on scaffold warmth");
    }

    /// §7 sub-scaffold properties: verdicts (including the exact
    /// countermodel) are independent of scaffold warmth and of whether
    /// the sub-scaffold view was projected off a warm parent or built
    /// over a fresh one — and they match the naive `!=`-aware oracle.
    #[test]
    fn sub_scaffold_projection_is_invisible(
        db in db_ne_strategy(5),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let oracle = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        // Fresh parent, explicit projection.
        let fresh_parent = DisjunctiveScaffold::new(&db);
        let fresh = disjunctive::check_restricted(
            &db, &SubScaffold::project(&fresh_parent, &db), &disjuncts, disjunctive::STATE_CAP,
        ).unwrap();
        prop_assert_eq!(fresh.holds(), oracle, "fresh sub-scaffold vs naive");
        // Warm parent (pair table and blocked bits populated by an
        // unrelated query), implicit projection through check_scaffolded.
        let warm_parent = DisjunctiveScaffold::new(&db);
        let _ = disjunctive::check_scaffolded(&db, &warm_parent, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let cold = disjunctive::check_scaffolded(&db, &warm_parent, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::check_scaffolded(&db, &warm_parent, &disjuncts, disjunctive::STATE_CAP)
            .unwrap();
        prop_assert_eq!(&fresh, &cold, "projected-warm vs built-fresh");
        prop_assert_eq!(&cold, &warm, "warm blocked-bit table drifted");
        // Explicit projection over the warm parent is the same view.
        let via_project = disjunctive::check_restricted(
            &db, &SubScaffold::project(&warm_parent, &db), &disjuncts,
            disjunctive::STATE_CAP,
        ).unwrap();
        prop_assert_eq!(&via_project, &fresh, "explicit warm projection vs fresh");
        if let Some(m) = fresh.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel respects D and !=");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
    }

    /// §7 countermodel sets: the restricted enumeration agrees between a
    /// projected (warm) and a fresh sub-scaffold, enumerates exactly the
    /// separating falsifiers, and is empty iff entailment holds.
    #[test]
    fn sub_scaffold_countermodel_sets_agree(
        db in db_ne_strategy(4),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let fresh_parent = DisjunctiveScaffold::new(&db);
        let fresh = disjunctive::countermodels_restricted(
            &db, &SubScaffold::project(&fresh_parent, &db), &disjuncts, 256,
            disjunctive::STATE_CAP,
        ).unwrap();
        let warm_parent = DisjunctiveScaffold::new(&db);
        let _ = disjunctive::check_scaffolded(&db, &warm_parent, &warmup, disjunctive::STATE_CAP)
            .unwrap();
        let warm = disjunctive::countermodels_scaffolded(
            &db, &warm_parent, &disjuncts, 256, disjunctive::STATE_CAP,
        ).unwrap();
        prop_assert_eq!(
            model_set(&fresh),
            model_set(&warm),
            "restricted countermodel sets diverged between fresh and warm"
        );
        let oracle = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        prop_assert_eq!(oracle, fresh.is_empty());
        for m in &fresh {
            prop_assert!(modelcheck::is_model_of(m, &db), "model must separate != pairs");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
    }

    /// The naive oracle still agrees with the interned engine (the
    /// end-to-end guard the repo has always kept).
    #[test]
    fn interned_engine_agrees_with_naive_oracle(
        db in db_strategy(4),
        disjuncts in disjuncts_strategy(),
    ) {
        let by_naive = indord::entail::naive::monadic_check(&db, &disjuncts).unwrap().holds();
        prop_assert_eq!(disjunctive::entails(&db, &disjuncts).unwrap(), by_naive);
    }
}
