//! Helpers shared by the cross-crate integration suites.

/// The two-observer serving database, in parser syntax: `chains` chains
/// of `len` points each with mixed `<`/`<=` steps, monadic labels
/// `P0`/`P1`/`P2` round-robined along them, and one cross-chain `!=`
/// pair — wide enough that the disjunctive and `!=` routes genuinely
/// search. Used (parsed) by the concurrency harness and (as a `FACT`
/// fragment) by the server e2e, so the two suites exercise one shape.
pub fn serving_db_text(chains: usize, len: usize) -> String {
    let mut text = String::from("pred P0(ord); pred P1(ord); pred P2(ord); ");
    for c in 0..chains {
        for i in 0..len {
            text.push_str(&format!("P{}(t{c}_{i}); ", (c + i) % 3));
        }
        for i in 0..len - 1 {
            let rel = if i % 3 == 0 { "<=" } else { "<" };
            text.push_str(&format!("t{c}_{i} {rel} t{c}_{};", i + 1));
        }
    }
    text.push_str("t0_2 != t1_5;");
    text
}
