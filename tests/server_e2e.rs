//! End-to-end serving harness: boot `indord-serve`'s runtime on an
//! ephemeral port and drive the full wire protocol — open → write →
//! prepare → entail → countermodel → batch → stats — from many
//! concurrent TCP clients, asserting every verdict against a direct
//! in-process [`Engine`] oracle.
//!
//! The workload is the promoted `prepared_service` monitoring story on
//! the `concurrent_serving` database shape: two observer chains with
//! mixed `<`/`<=` steps and a `!=` pair, a fixed query panel compiled
//! once via `PREPARE`, and single-writer mutation phases (label fact /
//! acyclic cross-chain edge / known-vertex `!=`) between parallel read
//! phases. Every write lands on known constants, so the server-side
//! session must absorb all of them in place: the final `STATS` reply is
//! asserted to show nonzero prepared-cache hits and in-place patches
//! and **zero** scaffold rebuilds.

use indord::core::parse::{parse_database, parse_query};
use indord::core::sym::Vocabulary;
use indord::entail::Engine;
use indord_server::protocol::Response;
use indord_server::runtime::{serve, Registry};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

mod common;

const CLIENTS: usize = 6;
const ROUNDS: usize = 8;

/// A test client: one TCP connection speaking the line protocol.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> Response {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        Response::read_from(&mut self.reader)
            .expect("read response")
            .expect("server replied")
    }

    fn ok(&mut self, line: &str) {
        match self.send(line) {
            Response::Ok(_) => {}
            other => panic!("`{line}` failed: {other:?}"),
        }
    }

    fn close(mut self) {
        assert_eq!(self.send("CLOSE"), Response::Bye);
    }
}

/// The seed fragment: the `concurrent_serving` two-observer shape, sent
/// through `FACT` exactly as a client would.
fn seed_fragment() -> String {
    common::serving_db_text(2, 12)
}

/// The alert panel: sequential, disjunctive (drives the Thm 5.3
/// scaffold), and `!=` shapes.
const PANEL: [(&str, &str); 3] = [
    ("seq", "exists a b. P0(a) & a < b & P1(b)"),
    (
        "disj",
        "(exists s. P0(s) & P1(s)) | exists s t. P0(s) & s < t & P2(t)",
    ),
    ("ne", "exists s t. P0(s) & P2(t) & s != t"),
];

/// Single-writer mutation phases, all over constants the seed already
/// interned — the server session must patch every one in place.
const WRITES: [&str; 4] = [
    "FACT P2(t0_3);",
    "ASSERT t0_4 < t1_7;",
    "ASSERT t0_8 != t1_1;",
    "ASSERT t0_9 <= t1_10;",
];

/// The in-process oracle: rebuild the database from the accumulated
/// fragments and decide the panel with a direct [`Engine`].
fn oracle_verdicts(fragments: &[&str]) -> Vec<bool> {
    let mut voc = Vocabulary::new();
    let text: String = fragments
        .iter()
        .map(|f| {
            f.trim_start_matches("FACT ")
                .trim_start_matches("ASSERT ")
                .to_string()
        })
        .collect::<Vec<_>>()
        .join(" ");
    let db = parse_database(&mut voc, &text).expect("oracle database parses");
    let queries: Vec<_> = PANEL
        .iter()
        .map(|(_, q)| parse_query(&mut voc, q).expect("oracle query parses"))
        .collect();
    let eng = Engine::new(&voc);
    queries
        .iter()
        .map(|q| eng.entails(&db, q).expect("oracle evaluates").holds())
        .collect()
}

/// One parallel read phase: `CLIENTS` fresh TCP clients hammer the
/// prepared panel (entail + countermodel + batch), asserting agreement
/// with the oracle on every reply.
fn parallel_read_phase(addr: SocketAddr, expected: &[bool]) {
    thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                let mut c = Client::connect(addr);
                c.ok("USE lab");
                let batch_expected = Response::Verdicts(
                    PANEL
                        .iter()
                        .zip(expected)
                        .map(|((name, _), &holds)| (name.to_string(), holds))
                        .collect(),
                );
                for _ in 0..ROUNDS {
                    for ((name, text), &want) in PANEL.iter().zip(expected) {
                        // Prepared-name route.
                        assert_eq!(
                            c.send(&format!("ENTAIL {name}")),
                            Response::Verdict(want),
                            "prepared {name} drifted from the oracle"
                        );
                        // Inline route (parse per request, same session).
                        assert_eq!(
                            c.send(&format!("ENTAIL {text}")),
                            Response::Verdict(want),
                            "inline {name} drifted from the oracle"
                        );
                        // Witness route: CERTAIN exactly when entailed,
                        // a countermodel word otherwise.
                        match c.send(&format!("COUNTERMODEL {name}")) {
                            Response::Verdict(true) => assert!(want, "{name}: spurious CERTAIN"),
                            Response::Countermodel(body) => {
                                assert!(!want, "{name}: spurious countermodel");
                                assert!(!body.trim().is_empty());
                            }
                            other => panic!("COUNTERMODEL {name}: unexpected {other:?}"),
                        }
                    }
                    assert_eq!(
                        c.send(&format!(
                            "BATCH {}",
                            PANEL.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
                        )),
                        batch_expected,
                        "batch verdicts drifted from the oracle"
                    );
                }
                c.close();
            });
        }
    });
}

#[test]
fn tcp_served_session_agrees_with_engine_oracle_across_writes() {
    let registry = Arc::new(Registry::new());
    let mut handle = serve(registry, "127.0.0.1:0", CLIENTS + 2).expect("bind ephemeral port");
    let addr = handle.addr();

    // Seed + prepare through the wire, like any client would.
    let seed = seed_fragment();
    let mut writer = Client::connect(addr);
    writer.ok("OPEN lab");
    writer.ok(&format!("FACT {seed}"));
    for (name, text) in PANEL {
        writer.ok(&format!("PREPARE {name}: {text}"));
    }

    // Phase 0: parallel reads on the seed database (this also warms the
    // scaffold before the first write, pinning the no-rebuild claim).
    let mut fragments: Vec<&str> = vec![&seed];
    parallel_read_phase(addr, &oracle_verdicts(&fragments));

    // Write phases: one mutation each, then parallel reads validated
    // against a freshly-built oracle.
    for write in WRITES {
        writer.ok(write);
        fragments.push(write);
        parallel_read_phase(addr, &oracle_verdicts(&fragments));
    }

    // Concurrent PREPAREs: each client registers its own query and
    // immediately serves from it (registry writes are serialized by the
    // db write lock).
    thread::scope(|scope| {
        for i in 0..CLIENTS {
            scope.spawn(move || {
                let mut c = Client::connect(addr);
                c.ok("USE lab");
                c.ok(&format!("PREPARE own{i}: exists s. P{}(s)", i % 3));
                assert_eq!(c.send(&format!("ENTAIL own{i}")), Response::Verdict(true));
                c.close();
            });
        }
    });

    // The acceptance gate: nonzero prepared-cache hits and in-place
    // patches, and the acyclic-edge workload forced no scaffold
    // rebuild.
    let stats = match writer.send("STATS") {
        Response::Stats(s) => s,
        other => panic!("STATS: unexpected {other:?}"),
    };
    let reads_per_phase = (CLIENTS * ROUNDS * (3 * PANEL.len() + PANEL.len())) as u64;
    assert!(
        stats.prepared_hits > 0,
        "prepared cache must serve hits: {stats:?}"
    );
    assert!(
        stats.queries >= reads_per_phase,
        "query counter undercounts: {stats:?}"
    );
    assert_eq!(
        stats.in_place_patches,
        WRITES.len() as u64,
        "every write phase must patch in place: {stats:?}"
    );
    assert_eq!(
        stats.scaffold_rebuilds, 0,
        "acyclic-edge workload must not rebuild the scaffold: {stats:?}"
    );
    assert_eq!(stats.scaffold_builds, 1, "one warm scaffold: {stats:?}");
    assert_eq!(stats.prepared, (PANEL.len() + CLIENTS) as u64);
    assert!(
        stats.p50_ns > 0 && stats.p99_ns >= stats.p50_ns,
        "{stats:?}"
    );

    // MVCC group-commit accounting: every write landed through the
    // mutator, each mutation published a snapshot, the queue drained,
    // and the current snapshot has measurable age. The seed fragment
    // (fresh constants) is the one structural write; the four mutation
    // phases all patch known vertices.
    assert!(stats.group_commits > 0, "{stats:?}");
    assert!(stats.snapshots_published > 0, "{stats:?}");
    assert_eq!(
        stats.patchable_writes,
        WRITES.len() as u64,
        "every mutation phase is patchable: {stats:?}"
    );
    assert_eq!(
        stats.structural_writes, 1,
        "only the seed fragment is structural: {stats:?}"
    );
    assert!(stats.queue_depth_p99 >= 1, "{stats:?}");
    assert_eq!(stats.commit_queue_depth, 0, "queue must drain: {stats:?}");
    assert!(stats.snapshot_age_ns > 0, "{stats:?}");

    // STATS round-trips the wire representation (protocol sanity at the
    // integration level).
    let rendered = Response::Stats(stats.clone()).render();
    let mut r = BufReader::new(rendered.as_bytes());
    assert_eq!(
        Response::read_from(&mut r).unwrap().unwrap(),
        Response::Stats(stats)
    );

    writer.close();
    handle.shutdown();
}

/// A write burst completes while a long read holds its snapshot: the
/// MVCC non-blocking contract, end to end.
///
/// The "deliberately slow COUNTERMODEL" is modelled two ways at once:
/// wire clients churn `COUNTERMODEL ne` for the whole burst, and — as a
/// deterministic stand-in for an enumeration of *arbitrary* duration —
/// an in-process handle pins a `DbSnapshot` for the entire burst (a
/// pinned snapshot is exactly what a countermodel enumeration holds
/// while it walks the state graph). Under the old per-db `RwLock` the
/// equivalent long read would hold the read guard and every write
/// would queue behind it; under MVCC the burst lands, publishes fresh
/// snapshots, and the pinned one stays immutable. The burst completing
/// *inside* the scope, while `pinned` is still alive, is the claim.
#[test]
fn slow_countermodel_reader_never_blocks_the_write_burst() {
    const BURST: usize = 40;
    let registry = Arc::new(Registry::new());
    let mut handle =
        serve(Arc::clone(&registry), "127.0.0.1:0", CLIENTS + 4).expect("bind ephemeral port");
    let addr = handle.addr();

    let seed = seed_fragment();
    let mut admin = Client::connect(addr);
    admin.ok("OPEN lab");
    admin.ok(&format!("FACT {seed}"));
    for (name, text) in PANEL {
        admin.ok(&format!("PREPARE {name}: {text}"));
    }
    let before = match admin.send("STATS") {
        Response::Stats(s) => s,
        other => panic!("STATS: unexpected {other:?}"),
    };

    let db = registry.get("lab").expect("lab registered");
    // Pin the read view for the whole burst. Under the RwLock ablation
    // there is no snapshot to pin (`read_snapshot` is `None`) — this
    // line is what makes the test MVCC-specific.
    let pinned = db.read_snapshot().expect("MVCC mode serves snapshots");
    let pinned_seq = pinned.seq();
    let pinned_atoms = pinned.session().len();

    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        // Wire countermodel readers churn against whatever snapshot is
        // current, concurrently with the writers.
        for _ in 0..2 {
            let stop = &stop;
            scope.spawn(move || {
                let mut c = Client::connect(addr);
                c.ok("USE lab");
                while !stop.load(Ordering::Relaxed) {
                    match c.send("COUNTERMODEL ne") {
                        Response::Verdict(true) | Response::Countermodel(_) => {}
                        other => panic!("COUNTERMODEL ne: unexpected {other:?}"),
                    }
                }
                c.close();
            });
        }
        // The burst: concurrent writers, label facts on known constants.
        let writers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr);
                    c.ok("USE lab");
                    for k in 0..BURST {
                        c.ok(&format!("FACT P{}(t0_{});", (i + k) % 3, k % 12));
                    }
                    c.close();
                })
            })
            .collect();
        for w in writers {
            w.join()
                .expect("writer finishes while the reader holds its snapshot");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The pinned snapshot never moved while the burst landed past it.
    assert_eq!(pinned.seq(), pinned_seq);
    assert_eq!(pinned.session().len(), pinned_atoms);
    let fresh = db.read_snapshot().expect("snapshot after burst");
    assert!(
        fresh.seq() > pinned_seq,
        "the burst must publish new snapshots behind the pinned one"
    );
    // Structural claim, tightened by the three-way `Sharing` answer:
    // label-fact patches copy-on-write the scaffold away from pinned
    // snapshots, so across the burst the two warm scaffolds must be
    // *distinct* objects — `Unshared`, not `Shared` (the pinned view
    // stayed immutable) and crucially not `Cold` (the old boolean
    // answer let an unwarmed publish pass this check vacuously).
    use indord::core::session::Sharing;
    assert_eq!(
        pinned.session().shares_scaffold_with(fresh.session()),
        Sharing::Unshared,
        "both snapshots must publish warm, CoW-split scaffolds"
    );
    // The fact store is structurally shared too: every chunk the pinned
    // snapshot sealed is pointer-identical in the fresh one.
    let pinned_log = pinned.session().database().proper_atoms();
    let fresh_log = fresh.session().database().proper_atoms();
    assert_eq!(
        pinned_log.shared_chunks_with(fresh_log),
        pinned_log.sealed_chunks(),
        "burst appends must extend the pinned log, not recopy it"
    );
    drop(pinned);

    let after = match admin.send("STATS") {
        Response::Stats(s) => s,
        other => panic!("STATS: unexpected {other:?}"),
    };
    assert_eq!(
        after.writes - before.writes,
        (CLIENTS * BURST) as u64,
        "every burst atom must land: {after:?}"
    );
    assert!(
        after.snapshots_published > before.snapshots_published,
        "{after:?}"
    );
    assert!(
        after.max_group >= 2,
        "concurrent burst must coalesce into group commits: {after:?}"
    );
    assert_eq!(after.commit_queue_depth, 0, "queue must drain: {after:?}");
    admin.close();
    handle.shutdown();
}

/// The durability leg: stop → restart → query. A durable server is
/// seeded and prepared over the wire, gracefully shut down, and booted
/// again on the same data dir. The restarted server must answer the
/// panel correctly on its *first* requests — with the prepared registry
/// already compiled, zero scaffold rebuilds (warm restart), and the
/// recovery counters visible in `STATS`.
#[test]
fn durable_server_restarts_warm_and_serves_the_prepared_panel() {
    use std::sync::atomic::AtomicU64;
    static N: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "indord-e2e-durable-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&root).unwrap();
    let storage = || indord_server::durable::StorageConfig::new(&root);

    let seed = seed_fragment();
    let mut fragments: Vec<&str> = vec![&seed];
    fragments.extend(WRITES);
    let expected = oracle_verdicts(&fragments);
    let batch_expected = Response::Verdicts(
        PANEL
            .iter()
            .zip(&expected)
            .map(|((name, _), &holds)| (name.to_string(), holds))
            .collect(),
    );

    // First life: seed, prepare the panel, commit the write phases, and
    // shut down gracefully (the handle drains and fsyncs the WAL tail).
    {
        let registry = Arc::new(Registry::with_storage(storage()).expect("durable registry"));
        let mut handle = serve(registry, "127.0.0.1:0", 2).expect("bind ephemeral port");
        let mut c = Client::connect(handle.addr());
        c.ok("OPEN lab");
        c.ok(&format!("FACT {seed}"));
        for (name, text) in PANEL {
            c.ok(&format!("PREPARE {name}: {text}"));
        }
        for write in WRITES {
            c.ok(write);
        }
        let stats = match c.send("STATS") {
            Response::Stats(s) => s,
            other => panic!("STATS: unexpected {other:?}"),
        };
        assert_eq!(
            stats.wal_appends,
            (1 + PANEL.len() + WRITES.len()) as u64,
            "every acked write is logged: {stats:?}"
        );
        assert!(stats.wal_bytes > 0, "{stats:?}");
        assert!(stats.fsyncs > 0, "group fsync per commit: {stats:?}");
        c.close();
        handle.shutdown();
    }

    // Second life: recovery happens at registry boot, before the port
    // opens; the very first requests must already be warm and correct.
    let registry = Arc::new(Registry::with_storage(storage()).expect("recovery succeeds"));
    let mut handle = serve(registry, "127.0.0.1:0", 2).expect("bind ephemeral port");
    let mut c = Client::connect(handle.addr());
    c.ok("USE lab");
    for ((name, _), &want) in PANEL.iter().zip(&expected) {
        assert_eq!(
            c.send(&format!("ENTAIL {name}")),
            Response::Verdict(want),
            "prepared `{name}` must survive the restart with the right verdict"
        );
    }
    assert_eq!(
        c.send(&format!(
            "BATCH {}",
            PANEL.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
        )),
        batch_expected,
        "first post-restart BATCH diverges"
    );
    let stats = match c.send("STATS") {
        Response::Stats(s) => s,
        other => panic!("STATS: unexpected {other:?}"),
    };
    assert_eq!(
        stats.recovery_replayed_fragments,
        (1 + PANEL.len() + WRITES.len()) as u64,
        "replay covers the whole committed sequence: {stats:?}"
    );
    assert_eq!(
        stats.recovery_truncated_bytes, 0,
        "clean shutdown: {stats:?}"
    );
    assert_eq!(stats.prepared, PANEL.len() as u64, "{stats:?}");
    assert!(
        stats.prepared_hits >= PANEL.len() as u64 * 2,
        "panel served from the recovered prepared cache: {stats:?}"
    );
    assert_eq!(
        stats.scaffold_builds, 1,
        "boot warmup builds the scaffold once: {stats:?}"
    );
    assert_eq!(
        stats.scaffold_rebuilds, 0,
        "first post-restart queries must not rebuild: {stats:?}"
    );

    // FLUSH over the wire: snapshot + compaction land in the counters,
    // and a third life recovers from the snapshot with nothing to
    // replay.
    c.ok("FLUSH");
    let stats = match c.send("STATS") {
        Response::Stats(s) => s,
        other => panic!("STATS: unexpected {other:?}"),
    };
    assert_eq!(stats.snapshots_written, 1, "{stats:?}");
    assert_eq!(stats.compactions, 1, "{stats:?}");
    c.close();
    handle.shutdown();

    let registry = Arc::new(Registry::with_storage(storage()).expect("recovery succeeds"));
    let db = registry.get("lab").expect("lab recovered");
    assert_eq!(
        db.stats().recovery_replayed_fragments(),
        0,
        "post-FLUSH boot loads the snapshot and replays nothing"
    );
    drop(registry);
    std::fs::remove_dir_all(&root).unwrap();
}

/// A tiny Prometheus text-format parser for the `METRICS` leg: every
/// non-comment line must be `name{labels} value`, and the returned map
/// keys are the full series strings (name + label set).
fn parse_prometheus(text: &str) -> std::collections::HashMap<String, f64> {
    let mut series = std::collections::HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unknown comment form: {line}"
            );
            continue;
        }
        let (key, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("metric line has no value: {line}");
        });
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .unwrap_or_else(|_| panic!("unparseable value in: {line}"))
        };
        let name_end = key.find('{').unwrap_or(key.len());
        let name = &key[..name_end];
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        if name_end < key.len() {
            let labels = &key[name_end..];
            assert!(
                labels.starts_with('{') && labels.ends_with('}'),
                "bad label block in: {line}"
            );
            for pair in labels[1..labels.len() - 1].split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("bad label pair `{pair}` in: {line}"));
                assert!(
                    !k.is_empty() && v.starts_with('"') && v.ends_with('"'),
                    "{line}"
                );
            }
        }
        assert!(
            series.insert(key.to_string(), value).is_none(),
            "duplicate series: {key}"
        );
    }
    series
}

/// The observability legs: `EXPLAIN` names the expected route for each
/// panel shape without executing, `TRACE`d requests return phase
/// breakdowns (write phases include WAL/fsync exactly when the server
/// is durable), and `METRICS` renders valid Prometheus text whose
/// histogram counts equal the requests sent.
#[test]
fn explain_trace_and_metrics_introspect_the_serving_path() {
    let registry = Arc::new(Registry::new());
    let mut handle = serve(registry, "127.0.0.1:0", 2).expect("bind ephemeral port");
    let mut c = Client::connect(handle.addr());
    c.ok("OPEN lab");
    c.ok(&format!("FACT {}", seed_fragment()));
    for (name, text) in PANEL {
        c.ok(&format!("PREPARE {name}: {text}"));
    }

    // EXPLAIN names the route each panel shape compiles to — pure
    // introspection, no execution (the query counter must not move).
    let explain = |c: &mut Client, target: &str| -> String {
        match c.send(&format!("EXPLAIN {target}")) {
            Response::Explain(body) => body,
            other => panic!("EXPLAIN {target}: unexpected {other:?}"),
        }
    };
    let body = explain(&mut c, "seq");
    assert!(body.contains("route seq"), "{body}");
    assert!(body.contains("monadic yes"), "{body}");
    assert!(body.contains("disjuncts 1"), "{body}");
    let body = explain(&mut c, "disj");
    assert!(body.contains("route disjunctive"), "{body}");
    assert!(body.contains("disjuncts 2"), "{body}");
    let body = explain(&mut c, "ne");
    assert!(body.contains("ne_atoms 1"), "{body}");
    assert!(body.contains("ne expanded("), "{body}");
    // Inline EXPLAIN compiles the text exactly as PREPARE would.
    let body = explain(&mut c, PANEL[0].1);
    assert!(body.contains("route seq"), "{body}");
    let stats = match c.send("STATS") {
        Response::Stats(s) => s,
        other => panic!("STATS: unexpected {other:?}"),
    };
    assert_eq!(stats.queries, 0, "EXPLAIN must not execute: {stats:?}");

    // TRACE executes and reports: an evaluation shows its fired route
    // and search phase; a write on an in-memory server shows the commit
    // pipeline but *no* WAL or fsync time (there is nothing to sync).
    let trace = |c: &mut Client, req: &str| -> String {
        match c.send(&format!("TRACE {req}")) {
            Response::Trace(body) => body,
            other => panic!("TRACE {req}: unexpected {other:?}"),
        }
    };
    let body = trace(&mut c, "ENTAIL seq");
    assert!(body.contains("request ENTAIL seq"), "{body}");
    // The fired route is db-dependent, not just query-dependent: the
    // seed carries a `!=` pair, so even the `seq`-planned query runs
    // through the inequality machinery. TRACE reports what actually
    // fired — that divergence from EXPLAIN's compiled plan is the point.
    assert!(body.contains("route ne"), "{body}");
    assert!(body.contains("outcome CERTAIN"), "{body}");
    assert!(body.contains("phase search "), "{body}");
    let body = trace(&mut c, "FACT P2(t0_5);");
    assert!(body.contains("phase apply "), "{body}");
    assert!(body.contains("phase publish "), "{body}");
    assert!(
        !body.contains("phase wal_append") && !body.contains("phase fsync"),
        "in-memory write must not report WAL time: {body}"
    );

    // METRICS: valid Prometheus text, histogram counts equal to the
    // requests this connection sent (1 traced ENTAIL so far, plus the
    // loop below; the seed FACT + traced FACT give the write count).
    const ENTAILS: usize = 5;
    for _ in 0..ENTAILS - 1 {
        assert_eq!(c.send("ENTAIL seq"), Response::Verdict(true));
    }
    let body = match c.send("METRICS") {
        Response::Metrics(body) => body,
        other => panic!("METRICS: unexpected {other:?}"),
    };
    let series = parse_prometheus(&body);
    let get = |k: &str| -> f64 {
        *series
            .get(k)
            .unwrap_or_else(|| panic!("missing series `{k}` in:\n{body}"))
    };
    assert_eq!(
        get(r#"indord_request_duration_ns_count{db="lab",verb="entail",status="ok"}"#),
        ENTAILS as f64
    );
    assert_eq!(
        get(r#"indord_request_duration_ns_count{db="lab",verb="fact",status="ok"}"#),
        2.0
    );
    assert_eq!(
        get(r#"indord_request_duration_ns_count{db="lab",verb="prepare",status="ok"}"#),
        PANEL.len() as f64
    );
    // Every ENTAIL fired the ne route (see above); the +Inf bucket is
    // the series count.
    assert_eq!(
        get(r#"indord_route_duration_ns_bucket{db="lab",route="ne",le="+Inf"}"#),
        ENTAILS as f64
    );
    assert!(get(r#"indord_request_duration_ns_sum{db="lab",verb="entail",status="ok"}"#) > 0.0);
    // Depth is sampled at every mutator submit: 2 FACTs + the PREPAREs.
    assert_eq!(
        get(r#"indord_commit_queue_depth_count{db="lab"}"#),
        (2 + PANEL.len()) as f64
    );

    // HEALTH carries the liveness extras now.
    match c.send("HEALTH") {
        Response::Health { detail, .. } => {
            assert!(detail.contains("snapshot_age_ms="), "{detail}");
            assert!(detail.contains("commit_queue_depth=0"), "{detail}");
        }
        other => panic!("HEALTH: unexpected {other:?}"),
    }
    c.close();
    handle.shutdown();

    // The durable leg: the same traced write on a `--data-dir` server
    // must report nonzero WAL append and fsync phases.
    use std::sync::atomic::AtomicU64;
    static N: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "indord-e2e-trace-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&root).unwrap();
    let storage = indord_server::durable::StorageConfig::new(&root);
    let registry = Arc::new(Registry::with_storage(storage).expect("durable registry"));
    let mut handle = serve(registry, "127.0.0.1:0", 2).expect("bind ephemeral port");
    let mut c = Client::connect(handle.addr());
    c.ok("OPEN lab");
    c.ok("FACT pred P(ord); P(u);");
    let body = trace(&mut c, "FACT P(u);");
    let phase_ns = |body: &str, phase: &str| -> Option<u64> {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("phase {phase} ")))
            .map(|v| v.parse().expect("phase value parses"))
    };
    assert!(
        phase_ns(&body, "wal_append").is_some_and(|ns| ns > 0),
        "durable write must report WAL append time: {body}"
    );
    assert!(
        phase_ns(&body, "fsync").is_some_and(|ns| ns > 0),
        "durable write must report fsync time: {body}"
    );
    c.close();
    handle.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn malformed_lines_get_spanned_errors_over_the_wire() {
    let registry = Arc::new(Registry::new());
    let mut handle = serve(registry, "127.0.0.1:0", 2).expect("bind ephemeral port");
    let mut c = Client::connect(handle.addr());
    c.ok("OPEN scratch");
    let resp = c.send("FACT P(u) @");
    match resp {
        Response::Error(e) => {
            assert_eq!(e.kind, indord_server::protocol::ErrorKind::Parse);
            // Span in request-line coordinates: the `@` at byte 10.
            assert_eq!(e.span, Some(indord::core::error::Span::point(10)));
        }
        other => panic!("expected spanned parse error, got {other:?}"),
    }
    // An unknown prepared name is a registry error, and the connection
    // keeps serving afterwards.
    let resp = c.send("ENTAIL nope");
    assert!(matches!(resp, Response::Error(_)), "{resp:?}");
    c.ok("FACT pred P(ord); P(u);");
    assert_eq!(c.send("ENTAIL exists t. P(t)"), Response::Verdict(true));
    c.close();
    handle.shutdown();
}
