//! Every worked example of the paper, end to end.

use indord::prelude::*;
use indord::semantics;

/// Example 1.1 — the embassy investigation, including the integrity
/// constraint Ψ and the four queries whose answers the paper states.
///
/// The constraint Ψ asserts an *interior* time point `w` inside two
/// overlapping intervals — a non-tight variable. Over dense (rational)
/// time this behaves as intended; over finite orders the interior point
/// may simply not exist in a model. The paper's answers are reproduced
/// under `|=_Q`, and the Fin/Q contrast is itself checked below.
#[test]
fn example_1_1_embassy() {
    let mut voc = Vocabulary::new();
    let db = parse_database(
        &mut voc,
        "IC(z1, z2, A); IC(z3, z4, B); z1 < z2 < z3 < z4;
         IC(u1, u3, A); IC(u2, u4, B); u1 < u2 < u3 < u4;",
    )
    .unwrap();
    let violation = parse_query(
        &mut voc,
        "exists x t1 t2 t3 t4 w.
            IC(t1, t2, x) & IC(t3, t4, x) &
            t1 < w & w < t2 & t3 < w & w < t4 &
            (t1 < t3 | t2 < t4)",
    )
    .unwrap();
    let somebody = parse_query(
        &mut voc,
        "exists x t1 t2 t3 t4. IC(t1, t2, x) & IC(t3, t4, x) & t1 < t3",
    )
    .unwrap();

    // Ψ ∨ ∃x Φ(x): YES over dense time.
    let q = with_integrity_constraint(&violation, &somebody);
    assert!(semantics::entails(&mut voc, &db, &q, OrderType::Q)
        .unwrap()
        .holds());
    // Over *finite* orders the interior witness w may not exist: the same
    // query is not certain — a genuinely semantic difference (§2).
    assert!(!semantics::entails(&mut voc, &db, &q, OrderType::Fin)
        .unwrap()
        .holds());

    // Ψ ∨ Φ(A) and Ψ ∨ Φ(B): both fail (models (a) and (b) of Fig. 1).
    for who in ["A", "B"] {
        let (gdb, phi) = parse_query_with_db(
            &mut voc,
            &db,
            &format!("exists t1 t2 t3 t4. IC(t1, t2, {who}) & IC(t3, t4, {who}) & t1 < t3"),
        )
        .unwrap();
        let q = with_integrity_constraint(&violation, &phi);
        let verdict = semantics::entails(&mut voc, &gdb, &q, OrderType::Q).unwrap();
        assert!(
            !verdict.holds(),
            "agent {who} must not be individually convictable"
        );
        // The countermodel is a genuine model falsifying the reduced query.
        match verdict {
            Verdict::NaryCountermodel(m) => {
                assert!(!m.satisfies(&semantics::reduce_q(&q)));
            }
            _ => panic!("expected an n-ary countermodel"),
        }
    }

    // Ψ ∨ Φ(A) ∨ Φ(B): YES.
    let (gdb1, phi_a) = parse_query_with_db(
        &mut voc,
        &db,
        "exists t1 t2 t3 t4. IC(t1, t2, A) & IC(t3, t4, A) & t1 < t3",
    )
    .unwrap();
    let (gdb2, phi_b) = parse_query_with_db(
        &mut voc,
        &gdb1,
        "exists t1 t2 t3 t4. IC(t1, t2, B) & IC(t3, t4, B) & t1 < t3",
    )
    .unwrap();
    let q = with_integrity_constraint(&violation, &phi_a.or(phi_b));
    assert!(semantics::entails(&mut voc, &gdb2, &q, OrderType::Q)
        .unwrap()
        .holds());
}

/// Fig. 1's model (d): without the integrity constraint, a model exists in
/// which A's intervals overlap without being identical — so Φ(A)∨Φ(B)
/// alone (no Ψ) is NOT entailed.
#[test]
fn example_1_1_needs_the_integrity_constraint() {
    let mut voc = Vocabulary::new();
    let db = parse_database(
        &mut voc,
        "IC(z1, z2, A); IC(z3, z4, B); z1 < z2 < z3 < z4;
         IC(u1, u3, A); IC(u2, u4, B); u1 < u2 < u3 < u4;",
    )
    .unwrap();
    let somebody = parse_query(
        &mut voc,
        "exists x t1 t2 t3 t4. IC(t1, t2, x) & IC(t3, t4, x) & t1 < t3",
    )
    .unwrap();
    assert!(!Engine::new(&voc).entails(&db, &somebody).unwrap().holds());
}

/// Example 1.2 — gene-sequence data as monadic chains; the A–G alignment
/// constraint is violable (hence not entailed), i.e. alignments exist.
#[test]
fn example_1_2_alignment() {
    let mut voc = Vocabulary::new();
    let db = parse_database(
        &mut voc,
        "G(u1); A(u2); T(u3); u1 < u2 < u3;
         G(v1); T(v2); A(v3); v1 < v2 < v3;",
    )
    .unwrap();
    let violation = parse_query(&mut voc, "exists t. A(t) & G(t)").unwrap();
    assert!(!Engine::new(&voc).entails(&db, &violation).unwrap().holds());
    // But "some column holds G" is certain.
    let g = parse_query(&mut voc, "exists t. G(t)").unwrap();
    assert!(Engine::new(&voc).entails(&db, &g).unwrap().holds());
}

/// Example 2.4 / 2.7 — the database u<v<w, u<=t<=w with B(a,t), B(b,w)
/// has the sort {u,t} {v} {w} among its minimal models.
#[test]
fn examples_2_4_and_2_7() {
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "u < v; v < w; u <= t; t <= w; B(a, t); B(b, w);").unwrap();
    let nd = db.normalize().unwrap();
    let mut found_three_stage = false;
    indord::core::toposort::for_each_minimal_model(&nd, &mut |m| {
        if m.n_points == 3 {
            found_three_stage = true;
        }
        true
    })
    .unwrap();
    assert!(found_three_stage);

    // In that model B(a) holds at the first point; "B(a) strictly before
    // B(b)" is certain (t <= w forced strict? t<=w and v<w with t<=w…
    // t can equal w! Then B(a,x)=B(b,x): not strictly before). Check:
    let (gdb, q) =
        parse_query_with_db(&mut voc, &db, "exists s t2. B(a, s) & s < t2 & B(b, t2)").unwrap();
    assert!(!Engine::new(&voc).entails(&gdb, &q).unwrap().holds());
    // But "B(a) before-or-at B(b)" is certain.
    let (gdb, q) =
        parse_query_with_db(&mut voc, &db, "exists s t2. B(a, s) & s <= t2 & B(b, t2)").unwrap();
    assert!(Engine::new(&voc).entails(&gdb, &q).unwrap().holds());
}

/// The Fig. 5 query: its dag, paths, width, and non-sequentiality.
#[test]
fn fig_5_query_structure() {
    let mut voc = Vocabulary::new();
    parse_database(
        &mut voc,
        "pred P(ord); pred Q(ord); pred R(ord); pred S(ord);",
    )
    .unwrap();
    let q = parse_query(
        &mut voc,
        "exists t1 t2 t3 t4.
            P(t1) & Q(t1) & P(t2) & R(t3) & S(t4) &
            t1 < t2 & t2 < t3 & t2 <= t4",
    )
    .unwrap();
    let cq = &q.disjuncts()[0];
    assert!(!cq.is_sequential());
    assert_eq!(cq.width(), 2);
    let mq = indord::core::monadic::MonadicQuery::from_conjunctive(&voc, cq).unwrap();
    assert_eq!(mq.path_count(), 2);
}

/// §2's remark on successor redundancy: a width-k database needs at most
/// 2k successors per vertex; the witness family
/// `D = {u<=vᵢ} ∪ {vᵢ<=wᵢ} ∪ {u<wᵢ}` meets the bound.
#[test]
fn successor_bound_witness() {
    let mut voc = Vocabulary::new();
    let k = 4;
    let mut text = String::new();
    for i in 0..k {
        text.push_str(&format!("u <= v{i}; v{i} <= w{i}; u < w{i};"));
    }
    let db = parse_database(&mut voc, &text).unwrap();
    let nd = db.normalize().unwrap();
    assert_eq!(nd.width(), k);
    let u = nd.vertex(voc.find_ord("u").unwrap());
    assert_eq!(nd.graph.successors(u).len(), 2 * k);
}
