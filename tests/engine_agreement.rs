//! The most valuable correctness check in the repository: every engine
//! must agree with the naive minimal-model oracle on randomized inputs.

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::flexi::FlexiWord;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::parse::{parse_database, parse_query};
use indord::core::session::Session;
use indord::core::sym::{PredSym, Vocabulary};
use indord::entail::Strategy as EngineStrategy;
use indord::entail::{bounded, disjunctive, modelcheck, naive, paths, seq, Engine};
use indord::wqo;
use proptest::prelude::*;

const NPREDS: usize = 3;

fn pred_set() -> impl Strategy<Value = PredSet> {
    proptest::bits::u8::between(0, NPREDS).prop_map(|bits| {
        (0..NPREDS)
            .filter(|i| bits & (1 << i) != 0)
            .map(PredSym::from_index)
            .collect()
    })
}

/// A random labelled dag on up to `n` vertices.
fn labelled_dag(max_n: usize) -> impl Strategy<Value = (OrderGraph, Vec<PredSet>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n * n,
                prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le), Just(OrderRel::Ne)],
            ),
            0..=n * 2,
        );
        let labels = proptest::collection::vec(pred_set(), n);
        (Just(n), edges, labels).prop_map(|(n, raw_edges, labels)| {
            let mut edges = Vec::new();
            for (code, rel) in raw_edges {
                let (i, j) = (code / n, code % n);
                if i < j && rel != OrderRel::Ne {
                    edges.push((i, j, rel));
                }
            }
            (
                OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic"),
                labels,
            )
        })
    })
}

fn db_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicDatabase::new(g, l))
}

fn query_strategy(max_n: usize) -> impl Strategy<Value = MonadicQuery> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicQuery::new(g, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// paths (Lemma 4.1 + SEQ) == bounded (Thm 4.7) == disjunctive
    /// (Thm 5.3, singleton) == compiled (Thm 6.5 basis) == naive oracle.
    #[test]
    fn conjunctive_engines_agree(
        db in db_strategy(5),
        q in query_strategy(4),
    ) {
        let by_naive = naive::monadic_check(&db, std::slice::from_ref(&q)).unwrap().holds();
        let by_paths = paths::entails(&db, &q);
        let by_bounded = bounded::entails(&db, &q);
        let by_disj = disjunctive::entails(&db, std::slice::from_ref(&q)).unwrap();
        let by_compiled = wqo::compile_conjunctive(&q).entails(&db);
        prop_assert_eq!(by_paths, by_naive, "paths vs naive");
        prop_assert_eq!(by_bounded, by_naive, "bounded vs naive");
        prop_assert_eq!(by_disj, by_naive, "disjunctive vs naive");
        prop_assert_eq!(by_compiled, by_naive, "compiled vs naive");
    }

    /// Disjunctive engine == naive oracle on 2-disjunct queries, and its
    /// countermodels are genuine.
    #[test]
    fn disjunctive_engine_agrees(
        db in db_strategy(4),
        q1 in query_strategy(3),
        q2 in query_strategy(3),
    ) {
        let disjuncts = vec![q1, q2];
        let by_naive = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        let verdict = disjunctive::check(&db, &disjuncts).unwrap();
        prop_assert_eq!(verdict.holds(), by_naive);
        if let Some(m) = verdict.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel supports D");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts), "countermodel falsifies Φ");
        }
    }

    /// Sequential queries: SEQ == naive oracle, and SEQ countermodels are
    /// genuine.
    #[test]
    fn seq_agrees_with_oracle(
        db in db_strategy(5),
        labels in proptest::collection::vec(pred_set(), 1..4),
        rels in proptest::collection::vec(
            prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)], 3),
    ) {
        let mut fw = FlexiWord::empty();
        for (i, l) in labels.iter().enumerate() {
            if i == 0 {
                fw.push(OrderRel::Lt, l.clone());
            } else {
                fw.push(rels[i - 1], l.clone());
            }
        }
        let q = MonadicQuery::from_flexiword(&fw);
        let by_naive = naive::monadic_check(&db, std::slice::from_ref(&q)).unwrap().holds();
        match seq::check(&db, &fw) {
            indord::entail::MonadicVerdict::Entailed => prop_assert!(by_naive),
            indord::entail::MonadicVerdict::Countermodel(m) => {
                prop_assert!(!by_naive);
                prop_assert!(modelcheck::is_model_of(&m, &db));
                prop_assert!(!modelcheck::satisfies_conjunct(&m, &q));
            }
        }
    }

    /// Countermodel enumeration: every enumerated model is a genuine
    /// countermodel, and enumeration is nonempty iff entailment fails.
    #[test]
    fn countermodel_enumeration_is_sound(
        db in db_strategy(4),
        q in query_strategy(3),
    ) {
        let disjuncts = vec![q];
        let holds = disjunctive::entails(&db, &disjuncts).unwrap();
        let models = disjunctive::countermodels(&db, &disjuncts, 64).unwrap();
        prop_assert_eq!(holds, models.is_empty());
        for m in &models {
            prop_assert!(modelcheck::is_model_of(m, &db));
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
    }

    /// The wqo order is monotone for entailment (Lemma 6.4): D1 ⊑ D2 and
    /// D1 |= Φ imply D2 |= Φ.
    #[test]
    fn lemma_6_4_upward_closure(
        d1 in db_strategy(3),
        d2 in db_strategy(4),
        q in query_strategy(3),
    ) {
        if wqo::db_le(&d1, &d2) && paths::entails(&d1, &q) {
            prop_assert!(paths::entails(&d2, &q));
        }
    }

    /// Greedy model checking (Cor 5.1) == backtracking model checking.
    #[test]
    fn modelcheck_greedy_equals_backtracking(
        labels in proptest::collection::vec(pred_set(), 0..5),
        q in query_strategy(4),
    ) {
        let m = indord::core::model::MonadicModel::new(labels);
        prop_assert_eq!(
            modelcheck::satisfies_conjunct(&m, &q),
            q.holds_in_naive(&m)
        );
    }
}

// ---------------------------------------------------------------------
// Prepared vs. unprepared agreement: for every strategy and a grid of
// monadic / object-part / n-ary / `!=` databases, `prepare` +
// `entails_prepared` on a (cold and warm) `Session` must return exactly
// the verdict of the one-shot `entails` path; and a mutated session must
// agree with a fresh evaluation of its database.
// ---------------------------------------------------------------------

const ALL_STRATEGIES: [EngineStrategy; 6] = [
    EngineStrategy::Auto,
    EngineStrategy::Naive,
    EngineStrategy::Seq,
    EngineStrategy::Paths,
    EngineStrategy::BoundedWidth,
    EngineStrategy::Disjunctive,
];

/// Both paths under one strategy: identical `Ok` verdicts (including the
/// countermodels), or both `Err`, or both panicking (the pinned Thm 4.7 /
/// 5.3 engines assert `[<,<=]` inputs on either path).
fn assert_prepared_agrees(db_text: &str, q_text: &str) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, db_text).expect(db_text);
    let q = parse_query(&mut voc, q_text).expect(q_text);
    let mut ok_verdicts: Vec<(EngineStrategy, bool)> = Vec::new();
    for strategy in ALL_STRATEGIES {
        let eng = Engine::new(&voc).with_strategy(strategy);
        let direct = catch_unwind(AssertUnwindSafe(|| eng.entails(&db, &q)));
        let session = Session::new(db.clone());
        let via_prepared = catch_unwind(AssertUnwindSafe(|| {
            eng.prepare(&q).and_then(|pq| {
                let cold = eng.entails_prepared(&session, &pq)?;
                let warm = eng.entails_prepared(&session, &pq)?;
                assert_eq!(cold, warm, "{strategy:?}: warm session drifted on {q_text}");
                Ok(cold)
            })
        }));
        match (direct, via_prepared) {
            (Ok(Ok(a)), Ok(Ok(b))) => {
                assert_eq!(
                    a, b,
                    "{strategy:?}: prepared disagrees on {db_text} |= {q_text}"
                );
                ok_verdicts.push((strategy, a.holds()));
            }
            (Ok(Err(_)), Ok(Err(_))) => {}
            (Err(_), Err(_)) => {}
            (a, b) => {
                panic!("{strategy:?}: paths diverged on {db_text} |= {q_text}: {a:?} vs {b:?}")
            }
        }
    }
    // Every strategy that decides the instance must reach the same answer
    // (e.g. Auto's monadic pipeline vs. pinned Naive's n-ary enumeration).
    assert!(
        ok_verdicts.windows(2).all(|w| w[0].1 == w[1].1),
        "strategies disagree on {db_text} |= {q_text}: {ok_verdicts:?}"
    );
}

#[test]
fn prepared_agreement_grid() {
    const DECLS: &str = "pred P(ord); pred Q(ord); pred R(ord);";
    let monadic_dbs = [
        "P(u); Q(v); u < v;",
        "P(u); Q(v); u <= v;",
        "P(u1); Q(u2); u1 < u2; P(v1); R(v2); v1 <= v2;",
        "P(u); P(v); u != v;",
        "P(u); Q(v); R(w); u <= v; v <= w; u != w;",
    ]
    .map(|db| format!("{DECLS} {db}"));
    let monadic_qs = [
        "exists s t. P(s) & s < t & Q(t)",
        "exists s t. Q(s) & s < t & P(t)",
        "exists s t. P(s) & s <= t & P(t)",
        "exists a b c. P(a) & a < b & Q(b) & a <= c & R(c)",
        "(exists s. P(s) & Q(s)) | exists s t. P(s) & s < t & Q(t)",
        "exists s t. P(s) & P(t) & s != t",
        "(exists s t. P(s) & s != t & Q(t)) | exists s. R(s)",
    ];
    for db in &monadic_dbs {
        for q in monadic_qs {
            assert_prepared_agrees(db, q);
        }
    }

    // Object parts: disjuncts filtered by definite facts.
    let obj_db = "pred Emp(obj); pred Boss(obj); pred P(ord); pred Q(ord);
                  Emp(alice); P(u); Q(v); u < v;";
    for q in [
        "exists x t. Boss(x) & P(t)",
        "exists x t. Emp(x) & P(t)",
        "(exists x t. Boss(x) & P(t)) | (exists x t. Emp(x) & P(t))",
        "(exists x. Boss(x)) | (exists x. Emp(x))",
        "exists x s t. Emp(x) & P(s) & s < t & Q(t)",
    ] {
        assert_prepared_agrees(obj_db, q);
    }

    // n-ary databases route to the naive engine on both paths.
    let nary_db = "R(u, v); u < v; R(v, w); v <= w;";
    for q in [
        "exists s t. R(s, t) & s < t",
        "exists s t. R(s, t) & t < s",
        "exists s t x. R(s, t) & R(t, x) & s < x",
    ] {
        assert_prepared_agrees(nary_db, q);
    }
}

#[test]
fn prepared_agreement_after_session_mutation() {
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "P(u); Q(v); u <= v;").unwrap();
    let p = voc.find_pred("P").unwrap();
    let (u, v, w) = (voc.ord("u"), voc.ord("v"), voc.ord("w"));
    let queries = [
        "exists s t. P(s) & s < t & Q(t)",
        "exists s t. P(s) & s <= t & P(t)",
        "(exists s. P(s) & Q(s)) | exists s t. Q(s) & s < t & P(t)",
    ];
    let parsed: Vec<_> = queries
        .iter()
        .map(|t| parse_query(&mut voc, t).expect(t))
        .collect();
    let eng = Engine::new(&voc);
    let prepared: Vec<_> = parsed.iter().map(|q| eng.prepare(q).unwrap()).collect();

    let mut session = Session::new(db);
    let check = |session: &Session, step: &str| {
        for (pq, q) in prepared.iter().zip(&parsed) {
            let via_session = eng.entails_prepared(session, pq).unwrap();
            let fresh = eng.entails(session.database(), q).unwrap();
            assert_eq!(via_session, fresh, "{step}: session drifted from database");
        }
    };
    // A sequence of mutations exercising both the in-place and the
    // invalidating paths; after each, every prepared query must agree
    // with a fresh one-shot evaluation of the session's database.
    session.normal().unwrap(); // warm the cache
    check(&session, "warm");
    session.assert_lt(u, v);
    check(&session, "after u < v");
    session
        .insert_fact(&voc, p, vec![indord::core::atom::Term::Ord(v)])
        .unwrap();
    check(&session, "after P(v) in-place insert");
    session.assert_le(v, w);
    check(&session, "after v <= w (fresh constant)");
}

#[test]
fn prepared_ne_queries_track_session_mutations() {
    // The §7 sub-scaffold caches live inside the session's scaffold
    // layer; every mutation class (in-place fact insert, in-place order
    // edge, != constraint, fresh constant) must invalidate them exactly
    // as needed — asserted by re-checking each prepared `!=` query
    // against a fresh one-shot evaluation after every step.
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "pred R(ord); P(u); Q(v); u <= v;").unwrap();
    let p = voc.find_pred("P").unwrap();
    let (u, v, w) = (voc.ord("u"), voc.ord("v"), voc.ord("w"));
    let queries = [
        "exists s t. P(s) & P(t) & s != t",
        "exists s t. P(s) & Q(t) & s != t",
        "(exists s t. P(s) & s != t & Q(t)) | exists s. R(s)",
        "(exists s t. P(s) & s < t & Q(t)) | (exists s t. Q(s) & s < t & P(t))",
        "exists s t. P(s) & s < t & Q(t)",
    ];
    let parsed: Vec<_> = queries
        .iter()
        .map(|t| parse_query(&mut voc, t).expect(t))
        .collect();
    let eng = Engine::new(&voc);
    let prepared: Vec<_> = parsed.iter().map(|q| eng.prepare(q).unwrap()).collect();

    let mut session = Session::new(db);
    let check = |session: &Session, step: &str| {
        for (pq, q) in prepared.iter().zip(&parsed) {
            let warm1 = eng.entails_prepared(session, pq).unwrap();
            let warm2 = eng.entails_prepared(session, pq).unwrap();
            assert_eq!(warm1, warm2, "{step}: warm re-evaluation drifted");
            let fresh = eng.entails(session.database(), q).unwrap();
            assert_eq!(warm1, fresh, "{step}: session drifted from database");
        }
    };
    check(&session, "cold");
    // != constraint between known constants: drops the scaffold (and its
    // blocked-bit tables) for rebuild under the new signature.
    session.assert_ne(u, v);
    check(&session, "after u != v");
    // In-place fact insert: label unions change, sub-scaffolds rebuild.
    session
        .insert_fact(&voc, p, vec![indord::core::atom::Term::Ord(v)])
        .unwrap();
    check(&session, "after P(v) in-place insert");
    // In-place order edge over known vertices (the patch path).
    session.assert_lt(u, v);
    check(&session, "after u < v in-place edge");
    // Fresh constant: full invalidation.
    session.assert_ne(v, w);
    check(&session, "after v != w (fresh constant)");
    session.assert_lt(w, u);
    check(&session, "after w < u");
}

#[test]
fn acyclic_edge_insert_does_not_over_invalidate() {
    // Regression test (ROADMAP: incremental order-atom insertion): an
    // acyclic order-edge insert over known vertices must keep the
    // normalized/monadic views warm — only the scaffold layer may drop —
    // while still changing verdicts exactly as a fresh evaluation would.
    let mut voc = Vocabulary::new();
    // `u <= u` only forces `u` onto the order sort (N2 discharges it).
    let db = parse_database(&mut voc, "P(u); Q(v); R(w); w <= v; u <= u;").unwrap();
    let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
    let q_ne = parse_query(&mut voc, "exists s t. P(s) & P(t) & s != t").unwrap();
    let (u, v) = (voc.ord("u"), voc.ord("v"));
    let eng = Engine::new(&voc);
    let (pq, pq_ne) = (eng.prepare(&q).unwrap(), eng.prepare(&q_ne).unwrap());
    let mut session = Session::new(db);
    assert!(!eng.entails_prepared(&session, &pq).unwrap().holds());
    assert!(session.is_warm());
    session.assert_lt(u, v);
    assert!(
        session.is_warm(),
        "acyclic edge over known vertices must patch, not renormalize"
    );
    assert!(
        eng.entails_prepared(&session, &pq).unwrap().holds(),
        "the patched session must see u < v"
    );
    assert_eq!(
        eng.entails_prepared(&session, &pq).unwrap(),
        eng.entails(session.database(), &q).unwrap()
    );
    assert_eq!(
        eng.entails_prepared(&session, &pq_ne).unwrap(),
        eng.entails(session.database(), &q_ne).unwrap()
    );
}
