//! The most valuable correctness check in the repository: every engine
//! must agree with the naive minimal-model oracle on randomized inputs.

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::flexi::FlexiWord;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::sym::PredSym;
use indord::entail::{bounded, disjunctive, modelcheck, naive, paths, seq};
use indord::wqo;
use proptest::prelude::*;

const NPREDS: usize = 3;

fn pred_set() -> impl Strategy<Value = PredSet> {
    proptest::bits::u8::between(0, NPREDS)
        .prop_map(|bits| {
            (0..NPREDS)
                .filter(|i| bits & (1 << i) != 0)
                .map(PredSym::from_index)
                .collect()
        })
}

/// A random labelled dag on up to `n` vertices.
fn labelled_dag(max_n: usize) -> impl Strategy<Value = (OrderGraph, Vec<PredSet>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n * n, prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le), Just(OrderRel::Ne)]),
            0..=n * 2,
        );
        let labels = proptest::collection::vec(pred_set(), n);
        (Just(n), edges, labels).prop_map(|(n, raw_edges, labels)| {
            let mut edges = Vec::new();
            for (code, rel) in raw_edges {
                let (i, j) = (code / n, code % n);
                if i < j && rel != OrderRel::Ne {
                    edges.push((i, j, rel));
                }
            }
            (OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic"), labels)
        })
    })
}

fn db_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicDatabase::new(g, l))
}

fn query_strategy(max_n: usize) -> impl Strategy<Value = MonadicQuery> {
    labelled_dag(max_n).prop_map(|(g, l)| MonadicQuery::new(g, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// paths (Lemma 4.1 + SEQ) == bounded (Thm 4.7) == disjunctive
    /// (Thm 5.3, singleton) == compiled (Thm 6.5 basis) == naive oracle.
    #[test]
    fn conjunctive_engines_agree(
        db in db_strategy(5),
        q in query_strategy(4),
    ) {
        let by_naive = naive::monadic_check(&db, std::slice::from_ref(&q)).unwrap().holds();
        let by_paths = paths::entails(&db, &q);
        let by_bounded = bounded::entails(&db, &q);
        let by_disj = disjunctive::entails(&db, std::slice::from_ref(&q)).unwrap();
        let by_compiled = wqo::compile_conjunctive(&q).entails(&db);
        prop_assert_eq!(by_paths, by_naive, "paths vs naive");
        prop_assert_eq!(by_bounded, by_naive, "bounded vs naive");
        prop_assert_eq!(by_disj, by_naive, "disjunctive vs naive");
        prop_assert_eq!(by_compiled, by_naive, "compiled vs naive");
    }

    /// Disjunctive engine == naive oracle on 2-disjunct queries, and its
    /// countermodels are genuine.
    #[test]
    fn disjunctive_engine_agrees(
        db in db_strategy(4),
        q1 in query_strategy(3),
        q2 in query_strategy(3),
    ) {
        let disjuncts = vec![q1, q2];
        let by_naive = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        let verdict = disjunctive::check(&db, &disjuncts).unwrap();
        prop_assert_eq!(verdict.holds(), by_naive);
        if let Some(m) = verdict.countermodel() {
            prop_assert!(modelcheck::is_model_of(m, &db), "countermodel supports D");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts), "countermodel falsifies Φ");
        }
    }

    /// Sequential queries: SEQ == naive oracle, and SEQ countermodels are
    /// genuine.
    #[test]
    fn seq_agrees_with_oracle(
        db in db_strategy(5),
        labels in proptest::collection::vec(pred_set(), 1..4),
        rels in proptest::collection::vec(
            prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)], 3),
    ) {
        let mut fw = FlexiWord::empty();
        for (i, l) in labels.iter().enumerate() {
            if i == 0 {
                fw.push(OrderRel::Lt, l.clone());
            } else {
                fw.push(rels[i - 1], l.clone());
            }
        }
        let q = MonadicQuery::from_flexiword(&fw);
        let by_naive = naive::monadic_check(&db, &[q.clone()]).unwrap().holds();
        match seq::check(&db, &fw) {
            indord::entail::MonadicVerdict::Entailed => prop_assert!(by_naive),
            indord::entail::MonadicVerdict::Countermodel(m) => {
                prop_assert!(!by_naive);
                prop_assert!(modelcheck::is_model_of(&m, &db));
                prop_assert!(!modelcheck::satisfies_conjunct(&m, &q));
            }
        }
    }

    /// Countermodel enumeration: every enumerated model is a genuine
    /// countermodel, and enumeration is nonempty iff entailment fails.
    #[test]
    fn countermodel_enumeration_is_sound(
        db in db_strategy(4),
        q in query_strategy(3),
    ) {
        let disjuncts = vec![q];
        let holds = disjunctive::entails(&db, &disjuncts).unwrap();
        let models = disjunctive::countermodels(&db, &disjuncts, 64).unwrap();
        prop_assert_eq!(holds, models.is_empty());
        for m in &models {
            prop_assert!(modelcheck::is_model_of(m, &db));
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
    }

    /// The wqo order is monotone for entailment (Lemma 6.4): D1 ⊑ D2 and
    /// D1 |= Φ imply D2 |= Φ.
    #[test]
    fn lemma_6_4_upward_closure(
        d1 in db_strategy(3),
        d2 in db_strategy(4),
        q in query_strategy(3),
    ) {
        if wqo::db_le(&d1, &d2) && paths::entails(&d1, &q) {
            prop_assert!(paths::entails(&d2, &q));
        }
    }

    /// Greedy model checking (Cor 5.1) == backtracking model checking.
    #[test]
    fn modelcheck_greedy_equals_backtracking(
        labels in proptest::collection::vec(pred_set(), 0..5),
        q in query_strategy(4),
    ) {
        let m = indord::core::model::MonadicModel::new(labels);
        prop_assert_eq!(
            modelcheck::satisfies_conjunct(&m, &q),
            q.holds_in_naive(&m)
        );
    }
}
