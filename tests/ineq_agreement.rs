//! Differential suite for the §7 `!=` routes.
//!
//! The scaffold-routed inequality paths (`ineq::entails_db_ne` /
//! `entails_expanded` and their `*_scaffolded` forms, which run the
//! Theorem 5.3 search through a `SubScaffold` projection) must return
//! exactly the verdict of the naive minimal-model oracle — the
//! pre-existing §7 decision procedure — and must be independent of
//! scaffold warmth. Two layers:
//!
//! * an exhaustive **grid** over every two-vertex database shape
//!   (edge × `!=` × label combinations) against a fixed query set;
//! * **proptest** randomization over larger databases with `!=`
//!   constraints and queries with `!=` atoms, including the mixed case
//!   (both sides constrained) and countermodel validation.

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::scaffold::{DisjunctiveScaffold, SubScaffold};
use indord::core::sym::PredSym;
use indord::entail::{disjunctive, ineq, modelcheck, naive};
use proptest::prelude::*;

const NPREDS: usize = 3;
const STATE_CAP: usize = disjunctive::STATE_CAP;

fn ps(ids: &[usize]) -> PredSet {
    ids.iter().map(|&i| PredSym::from_index(i)).collect()
}

/// Every route that decides a §7 instance, pinned against the oracle.
/// `scaffold` is shared across calls so later invocations exercise warm
/// pair tables and blocked-commit bits.
fn assert_routes_agree(
    db: &MonadicDatabase,
    scaffold: &DisjunctiveScaffold,
    disjuncts: &[MonadicQuery],
    context: &str,
) {
    let oracle = naive::monadic_check(db, disjuncts)
        .unwrap_or_else(|e| panic!("{context}: oracle failed: {e:?}"))
        .holds();
    let one_shot = ineq::entails_query_ne(db, disjuncts, 64, STATE_CAP).unwrap();
    assert_eq!(
        one_shot.holds(),
        oracle,
        "{context}: one-shot §7 route vs naive"
    );
    let warm = ineq::entails_query_ne_scaffolded(db, scaffold, disjuncts, 64, STATE_CAP).unwrap();
    assert_eq!(
        warm.holds(),
        oracle,
        "{context}: scaffold-routed §7 vs naive"
    );
    let again = ineq::entails_query_ne_scaffolded(db, scaffold, disjuncts, 64, STATE_CAP).unwrap();
    assert_eq!(again, warm, "{context}: warm scaffold drifted");
    // The db-!= entry point is the same decision.
    let db_ne = ineq::entails_db_ne(db, disjuncts).unwrap();
    assert_eq!(db_ne.holds(), oracle, "{context}: entails_db_ne vs naive");
    // A precomputed expansion must not change the verdict.
    let expanded: Option<Vec<MonadicQuery>> = disjuncts
        .iter()
        .map(|q| ineq::eliminate_ne(q, 64).ok())
        .collect::<Option<Vec<_>>>()
        .map(|vs| vs.into_iter().flatten().collect());
    let via_expanded =
        ineq::entails_expanded(db, disjuncts, expanded.as_deref(), STATE_CAP).unwrap();
    assert_eq!(
        via_expanded.holds(),
        oracle,
        "{context}: entails_expanded vs naive"
    );
    let via_expanded_scaffolded =
        ineq::entails_expanded_scaffolded(db, scaffold, disjuncts, expanded.as_deref(), STATE_CAP)
            .unwrap();
    assert_eq!(
        via_expanded_scaffolded.holds(),
        oracle,
        "{context}: entails_expanded_scaffolded vs naive"
    );
    // Countermodels are genuine: models of D (respecting !=) falsifying
    // every disjunct.
    for v in [&one_shot, &warm, &db_ne, &via_expanded_scaffolded] {
        if let Some(m) = v.countermodel() {
            assert!(
                modelcheck::is_model_of(m, db),
                "{context}: countermodel violates D (or its != constraints)"
            );
            assert!(
                !modelcheck::satisfies(m, disjuncts),
                "{context}: countermodel satisfies a disjunct"
            );
        }
    }
}

/// Exhaustive grid: all two-vertex databases (edge shape × `!=` pair ×
/// label assignment) against a fixed query set covering sequential,
/// `!=`-atom, and disjunctive shapes.
#[test]
fn two_vertex_grid() {
    let edge_shapes: [&[(usize, usize, OrderRel)]; 3] =
        [&[], &[(0, 1, OrderRel::Lt)], &[(0, 1, OrderRel::Le)]];
    let label_choices = [ps(&[0]), ps(&[1]), ps(&[0, 1])];
    let queries = grid_queries();
    for (ei, edges) in edge_shapes.iter().enumerate() {
        for with_ne in [false, true] {
            for (li, l0) in label_choices.iter().enumerate() {
                for (lj, l1) in label_choices.iter().enumerate() {
                    let g = OrderGraph::from_dag_edges(2, edges).unwrap();
                    let mut db = MonadicDatabase::new(g, vec![l0.clone(), l1.clone()]);
                    if with_ne {
                        db.ne.push((0, 1));
                    }
                    let scaffold = DisjunctiveScaffold::new(&db);
                    for (qi, q) in queries.iter().enumerate() {
                        let context =
                            format!("grid edges={ei} ne={with_ne} labels=({li},{lj}) q={qi}");
                        assert_routes_agree(&db, &scaffold, q, &context);
                    }
                }
            }
        }
    }
}

fn grid_queries() -> Vec<Vec<MonadicQuery>> {
    let single = |labels: &[&[usize]], edges: &[(usize, usize, OrderRel)]| {
        let g = OrderGraph::from_dag_edges(labels.len(), edges).unwrap();
        MonadicQuery::new(g, labels.iter().map(|l| ps(l)).collect())
    };
    let with_ne = |mut q: MonadicQuery, pairs: &[(usize, usize)]| {
        q.ne.extend_from_slice(pairs);
        q
    };
    vec![
        // P somewhere.
        vec![single(&[&[0]], &[])],
        // P strictly before Q.
        vec![single(&[&[0], &[1]], &[(0, 1, OrderRel::Lt)])],
        // Two P's at distinct points (query !=).
        vec![with_ne(single(&[&[0], &[0]], &[]), &[(0, 1)])],
        // P and Q at distinct points (query !=).
        vec![with_ne(single(&[&[0], &[1]], &[]), &[(0, 1)])],
        // Two strictly ordered points (label-free).
        vec![single(&[&[], &[]], &[(0, 1, OrderRel::Lt)])],
        // Disjunction: P-and-Q together, or P != Q separation.
        vec![
            single(&[&[0, 1]], &[]),
            with_ne(single(&[&[0], &[1]], &[]), &[(0, 1)]),
        ],
        // Disjunction of the two strict orders.
        vec![
            single(&[&[0], &[1]], &[(0, 1, OrderRel::Lt)]),
            single(&[&[1], &[0]], &[(0, 1, OrderRel::Lt)]),
        ],
    ]
}

// ---------------------------------------------------------------------
// Randomized layer.
// ---------------------------------------------------------------------

fn pred_set() -> impl Strategy<Value = PredSet> {
    proptest::bits::u8::between(0, NPREDS).prop_map(|bits| {
        (0..NPREDS)
            .filter(|i| bits & (1 << i) != 0)
            .map(PredSym::from_index)
            .collect()
    })
}

/// A random `[<,<=]` labelled dag on up to `max_n` vertices.
fn labelled_dag(max_n: usize) -> impl Strategy<Value = (OrderGraph, Vec<PredSet>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n * n,
                prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)],
            ),
            0..=n * 2,
        );
        let labels = proptest::collection::vec(pred_set(), n);
        (Just(n), edges, labels).prop_map(|(n, raw_edges, labels)| {
            let mut edges = Vec::new();
            for (code, rel) in raw_edges {
                let (i, j) = (code / n, code % n);
                if i < j {
                    edges.push((i, j, rel));
                }
            }
            (
                OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic"),
                labels,
            )
        })
    })
}

/// A random database with up to two `!=` constraints (possibly over
/// comparable or even identical vertices — the engines must handle the
/// contradictory case too).
fn db_ne_strategy(max_n: usize) -> impl Strategy<Value = MonadicDatabase> {
    (
        labelled_dag(max_n),
        proptest::collection::vec((0..max_n, 0..max_n), 0..=2),
    )
        .prop_map(|((g, l), raw_ne)| {
            let n = g.len();
            let mut db = MonadicDatabase::new(g, l);
            for (a, b) in raw_ne {
                db.ne.push((a % n, b % n));
            }
            db
        })
}

/// A random query with at most one `!=` atom.
fn query_ne_strategy(max_n: usize) -> impl Strategy<Value = MonadicQuery> {
    (labelled_dag(max_n), proptest::bits::u8::between(0, 4)).prop_map(|((g, l), bits)| {
        let n = g.len();
        let mut q = MonadicQuery::new(g, l);
        if n >= 2 && bits & 1 != 0 {
            let a = (bits >> 1) as usize % n;
            let b = (a + 1) % n;
            q.ne.push((a, b));
        }
        q
    })
}

fn disjuncts_strategy() -> impl Strategy<Value = Vec<MonadicQuery>> {
    proptest::collection::vec(query_ne_strategy(3), 1..=2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Random §7 instances (database `!=` and/or query `!=`): every
    /// route agrees with the naive oracle, warm and cold.
    #[test]
    fn random_ne_instances_agree(
        db in db_ne_strategy(4),
        disjuncts in disjuncts_strategy(),
        warmup in disjuncts_strategy(),
    ) {
        let scaffold = DisjunctiveScaffold::new(&db);
        // Warm the pair table (and its blocked bits) with an unrelated
        // query first, as a serving session would.
        let _ = ineq::entails_query_ne_scaffolded(&db, &scaffold, &warmup, 64, STATE_CAP).unwrap();
        assert_routes_agree(&db, &scaffold, &disjuncts, "random");
    }

    /// The restricted countermodel enumeration is sound and complete on
    /// `!=` databases: nonempty exactly when entailment fails, every
    /// model separates the constrained pairs, falsifies the query, and
    /// agrees between projected-warm and fresh sub-scaffolds.
    #[test]
    fn restricted_countermodels_are_genuine(
        db in db_ne_strategy(4),
        disjuncts in proptest::collection::vec(
            labelled_dag(3).prop_map(|(g, l)| MonadicQuery::new(g, l)), 1..=2),
        warmup in proptest::collection::vec(
            labelled_dag(3).prop_map(|(g, l)| MonadicQuery::new(g, l)), 1..=2),
    ) {
        let holds = naive::monadic_check(&db, &disjuncts).unwrap().holds();
        let fresh_scaffold = DisjunctiveScaffold::new(&db);
        let fresh = disjunctive::countermodels_restricted(
            &db,
            &SubScaffold::project(&fresh_scaffold, &db),
            &disjuncts,
            256,
            STATE_CAP,
        )
        .unwrap();
        prop_assert_eq!(holds, fresh.is_empty(), "enumeration vs verdict");
        for m in &fresh {
            prop_assert!(modelcheck::is_model_of(m, &db), "model violates D or !=");
            prop_assert!(!modelcheck::satisfies(m, &disjuncts));
        }
        // Warm projection: same set.
        let warm_scaffold = DisjunctiveScaffold::new(&db);
        let _ = disjunctive::check_scaffolded(&db, &warm_scaffold, &warmup, STATE_CAP).unwrap();
        let warm = disjunctive::countermodels_scaffolded(
            &db, &warm_scaffold, &disjuncts, 256, STATE_CAP,
        )
        .unwrap();
        prop_assert_eq!(fresh, warm, "countermodels depend on scaffold warmth");
    }
}
