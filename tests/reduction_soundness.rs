//! Cross-validation of every hardness reduction against its reference
//! decider — the "lower bound" half of reproducing Tables 1 and 2.

use indord::prelude::*;
use indord::reductions::{thm32, thm33, thm34, thm46, thm71};
use indord::solvers::coloring::Graph;
use indord::solvers::dnf::Dnf;
use indord::solvers::formula::Formula;
use indord::solvers::mono3sat::Mono3Sat;
use indord::solvers::qbf::Pi2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3.2 (data complexity co-NP-hard): D(S) |= Φ iff S unsat.
#[test]
fn thm32_reduction_verified() {
    let mut rng = StdRng::seed_from_u64(2001);
    // Satisfiable random instances (distinct-variable clauses over 3 vars
    // are always satisfiable) plus the canonical unsat unit conflict.
    for _ in 0..4 {
        let inst = Mono3Sat::random(&mut rng, 3, 1, 1);
        let mut voc = Vocabulary::new();
        let out = thm32::build(&mut voc, &inst, thm32::Layout::WidthTwo);
        let got = Engine::new(&voc)
            .with_strategy(Strategy::Naive)
            .entails(&out.db, &out.query)
            .unwrap()
            .holds();
        assert_eq!(got, !inst.satisfiable());
    }
    let unsat = Mono3Sat {
        n_vars: 1,
        pos_clauses: vec![[0, 0, 0]],
        neg_clauses: vec![[0, 0, 0]],
    };
    let mut voc = Vocabulary::new();
    let out = thm32::build(&mut voc, &unsat, thm32::Layout::WidthTwo);
    assert!(Engine::new(&voc)
        .with_strategy(Strategy::Naive)
        .entails(&out.db, &out.query)
        .unwrap()
        .holds());
}

/// Theorem 3.3 (combined complexity Π₂ᵖ-hard): D |= Φ iff the Π₂ sentence
/// is true.
#[test]
fn thm33_reduction_verified() {
    let mut rng = StdRng::seed_from_u64(2002);
    let mut both = [false, false];
    for _ in 0..6 {
        let pi2 = Pi2::random(&mut rng, 2, 2);
        let mut voc = Vocabulary::new();
        let out = thm33::build(&mut voc, &pi2);
        let got = Engine::new(&voc)
            .with_strategy(Strategy::Naive)
            .entails(&out.db, &out.query)
            .unwrap()
            .holds();
        assert_eq!(got, pi2.is_true());
        both[usize::from(got)] = true;
    }
    assert!(both[0] || both[1]);
}

/// Theorem 3.4 (expression complexity NP-hard): E |= Φ(α) iff α is
/// satisfiable.
#[test]
fn thm34_reduction_verified() {
    let mut rng = StdRng::seed_from_u64(2003);
    for _ in 0..25 {
        let f = Formula::random(&mut rng, 4, 3);
        let mut voc = Vocabulary::new();
        let db = thm34::fixed_database(&mut voc);
        let q = thm34::satisfiability_query(&mut voc, &f);
        let got = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        assert_eq!(got, f.satisfiable_brute(4), "{f:?}");
    }
}

/// Theorem 4.6 (monadic combined complexity co-NP-hard): D(α) |= Φ(α) iff
/// α is a tautology — decided by three different engines.
#[test]
fn thm46_reduction_verified() {
    let mut rng = StdRng::seed_from_u64(2004);
    for _ in 0..30 {
        let dnf = Dnf::random(&mut rng, 3, 4, true);
        let want = dnf.is_tautology();
        let mut voc = Vocabulary::new();
        let out = thm46::build(&mut voc, &dnf);
        assert_eq!(indord::entail::paths::entails(&out.db, &out.query), want);
        assert_eq!(indord::entail::bounded::entails(&out.db, &out.query), want);
        assert_eq!(
            indord::entail::disjunctive::entails(&out.db, std::slice::from_ref(&out.query))
                .unwrap(),
            want
        );
    }
}

/// Theorem 7.1(1): expression complexity of [!=]-queries ~ 3-colourability.
#[test]
fn thm71_expression_verified() {
    let mut rng = StdRng::seed_from_u64(2005);
    for _ in 0..10 {
        let g = Graph::random(&mut rng, 5, 0.5);
        let mut voc = Vocabulary::new();
        let (db, q) = thm71::build_expression(&mut voc, &g);
        let got = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        assert_eq!(got, g.three_colorable(), "{g:?}");
    }
}

/// Theorem 7.1(2): data complexity of a fixed sequential query over
/// [!=]-databases ~ non-3-colourability.
#[test]
fn thm71_data_verified() {
    let mut rng = StdRng::seed_from_u64(2006);
    for _ in 0..8 {
        let g = Graph::random(&mut rng, 5, 0.6);
        let mut voc = Vocabulary::new();
        let (db, q) = thm71::build_data(&mut voc, &g);
        let got = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        assert_eq!(got, !g.three_colorable(), "{g:?}");
    }
}

/// The [<=]-variants of Theorems 3.2 and 4.6 agree with their [<] forms.
#[test]
fn le_variants_verified() {
    // Thm 3.2 [<=]: unsat unit conflict entailed, satisfiable not.
    let unsat = Mono3Sat {
        n_vars: 1,
        pos_clauses: vec![[0, 0, 0]],
        neg_clauses: vec![[0, 0, 0]],
    };
    let mut voc = Vocabulary::new();
    let out = thm32::build_le_variant(&mut voc, &unsat);
    assert!(Engine::new(&voc)
        .with_strategy(Strategy::Naive)
        .entails(&out.db, &out.query)
        .unwrap()
        .holds());

    // Thm 4.6 [<=]: spot-check tautology and non-tautology.
    let mut rng = StdRng::seed_from_u64(2007);
    for _ in 0..10 {
        let dnf = Dnf::random(&mut rng, 3, 3, true);
        let mut voc = Vocabulary::new();
        let le = thm46::build_le_variant(&mut voc, &dnf);
        assert_eq!(
            indord::entail::bounded::entails(&le.db, &le.query),
            dnf.is_tautology(),
            "{dnf:?}"
        );
    }
}
