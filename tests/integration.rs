//! Cross-crate integration: semantics reductions against direct checks,
//! containment round-trips, compiled queries in the full pipeline, and
//! the public parsing surface.

use indord::prelude::*;
use indord::relalg::{contained_in, entailment_as_containment, RelQuery};
use indord::semantics::{all_semantics, reduce_q, reduce_z};
use proptest::prelude::*;

/// Prop. 2.1 containments on randomized monadic inputs: Fin ⊆ Z ⊆ Q.
#[test]
fn semantics_containments_randomized() {
    let mut runner = proptest::test_runner::TestRunner::new(ProptestConfig::with_cases(48));
    runner
        .run(
            &(
                proptest::collection::vec((0usize..3, 0usize..3, proptest::bool::ANY), 0..4),
                proptest::collection::vec(0usize..3, 1..4),
            ),
            |(db_spec, q_spec)| {
                let mut voc = Vocabulary::new();
                let preds = ["P", "Q", "R"];
                for p in preds {
                    voc.monadic_pred(p);
                }
                // database: chain u0 < u1 < u2 with labels from spec, plus
                // optional extra le edges
                let mut text = String::from("P(u0); Q(u1); R(u2); u0 <= u1; ");
                for (a, b, strict) in &db_spec {
                    if a < b {
                        text.push_str(&format!("u{a} {} u{b}; ", if *strict { "<" } else { "<=" }));
                    }
                }
                let db = parse_database(&mut voc, &text).expect("db");
                // query: sequence of labels, strict steps, with one
                // order-only variable to keep it non-tight sometimes
                let mut q = String::from("exists w");
                for i in 0..q_spec.len() {
                    q.push_str(&format!(" t{i}"));
                }
                q.push_str(". ");
                for (i, p) in q_spec.iter().enumerate() {
                    if i > 0 {
                        q.push_str(&format!("& t{} < t{i} ", i - 1));
                    }
                    q.push_str(&format!("& {}(t{i}) ", preds[*p]));
                }
                let q = q.replacen(". & ", ". ", 1);
                let q = parse_query(&mut voc, &q).expect("query");
                let (fin, z, qq) = all_semantics(&mut voc, &db, &q).expect("semantics");
                prop_assert!(!fin || z, "Fin ⊆ Z");
                prop_assert!(!z || qq, "Z ⊆ Q");
                Ok(())
            },
        )
        .unwrap();
}

/// For tight queries the reductions are no-ops semantically: all three
/// agree with the direct finite check.
#[test]
fn tight_reductions_agree_with_direct() {
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "P(u); Q(v); u < v; P(w); v <= w;").unwrap();
    for text in [
        "exists s t. P(s) & s < t & Q(t)",
        "exists s t. P(s) & s <= t & P(t)",
        "(exists s. P(s) & Q(s)) | exists s t. Q(s) & s <= t & P(t)",
    ] {
        let q = parse_query(&mut voc, text).unwrap();
        assert!(q.is_tight());
        let direct = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        let via_z = {
            let dz = reduce_z(&mut voc, &db, &q);
            Engine::new(&voc).entails(&dz, &q).unwrap().holds()
        };
        let via_q = {
            let qq = reduce_q(&q);
            Engine::new(&voc).entails(&db, &qq).unwrap().holds()
        };
        assert_eq!(direct, via_z, "{text}");
        assert_eq!(direct, via_q, "{text}");
    }
}

/// Prop. 2.10 round trip: entailment → containment → entailment.
#[test]
fn containment_entailment_round_trip() {
    let cases = [
        (
            "P(u); Q(v); u < v;",
            "exists s t. P(s) & s < t & Q(t)",
            true,
        ),
        (
            "P(u); Q(v); u < v;",
            "exists s t. Q(s) & s < t & P(t)",
            false,
        ),
        (
            "P(u); Q(v); u <= v;",
            "exists s t. P(s) & s <= t & Q(t)",
            true,
        ),
        (
            "pred P(ord); pred Q(ord); P(u); Q(v);",
            "exists s t. P(s) & s <= t & Q(t)",
            false,
        ),
        ("P(u); Q(u);", "exists s. P(s) & Q(s)", true),
    ];
    for (db_text, q_text, expect) in cases {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, db_text).unwrap();
        let q = parse_query(&mut voc, q_text).unwrap();
        let direct = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        assert_eq!(direct, expect, "direct: {db_text} |= {q_text}");
        let (q1, q2) = entailment_as_containment(&mut voc, &db, &q.disjuncts()[0]).unwrap();
        let via_containment = contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap();
        assert_eq!(
            via_containment, expect,
            "containment: {db_text} |= {q_text}"
        );
    }
}

/// Containment answers agree with brute-force falsification on sampled
/// instances (soundness direction).
#[test]
fn containment_never_contradicted_by_samples() {
    use indord::relalg::{find_counterexample, RelInstance, RelVal};
    let mut voc = Vocabulary::new();
    voc.pred(
        "R",
        &[
            indord::core::sym::Sort::Object,
            indord::core::sym::Sort::Order,
        ],
    )
    .unwrap();
    let r = voc.find_pred("R").unwrap();
    let a = voc.obj("a");
    let b = voc.obj("b");

    let q1 = RelQuery::boolean(
        parse_query(&mut voc, "exists x s y t. R(x, s) & R(y, t) & s < t")
            .unwrap()
            .disjuncts()[0]
            .clone(),
    );
    let q2 = RelQuery::boolean(
        parse_query(&mut voc, "exists x s y t. R(x, s) & R(y, t) & s <= t")
            .unwrap()
            .disjuncts()[0]
            .clone(),
    );
    assert!(contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
    let mut instances = Vec::new();
    for vals in [[1i64, 2], [2, 1], [3, 3], [0, 7]] {
        let mut inst = RelInstance::default();
        inst.insert(&voc, r, vec![RelVal::Obj(a), RelVal::Num(vals[0])])
            .unwrap();
        inst.insert(&voc, r, vec![RelVal::Obj(b), RelVal::Num(vals[1])])
            .unwrap();
        instances.push(inst);
    }
    assert!(find_counterexample(&q1, &q2, &instances).is_none());
    assert!(find_counterexample(&q2, &q1, &instances).is_some());
}

/// Parsing, display, and re-parsing round-trips databases.
#[test]
fn parser_display_round_trip() {
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "IC(z1, z2, A); P(u); z1 < z2; u <= z1; z2 != u;").unwrap();
    let printed = db.display(&voc).to_string();
    let mut voc2 = Vocabulary::new();
    let db2 = parse_database(&mut voc2, &printed).unwrap();
    assert_eq!(db.proper_atoms().len(), db2.proper_atoms().len());
    assert_eq!(db.order_atoms().len(), db2.order_atoms().len());
    // same entailments on a sample query
    let q1 = parse_query(&mut voc, "exists s t x. IC(s, t, x) & s < t").unwrap();
    let q2 = parse_query(&mut voc2, "exists s t x. IC(s, t, x) & s < t").unwrap();
    assert_eq!(
        Engine::new(&voc).entails(&db, &q1).unwrap().holds(),
        Engine::new(&voc2).entails(&db2, &q2).unwrap().holds(),
    );
}

/// The width computation matches the "number of observers" intuition on
/// union-of-chains databases.
#[test]
fn width_matches_observer_count() {
    for k in 1..=5usize {
        let mut voc = Vocabulary::new();
        let mut text = String::new();
        for o in 0..k {
            text.push_str(&format!("o{o}a < o{o}b; o{o}b < o{o}c;"));
        }
        let db = parse_database(&mut voc, &text).unwrap();
        assert_eq!(db.normalize().unwrap().width(), k);
    }
}

/// Inequality end to end: certain distinctness over the §7 extension.
#[test]
fn inequality_end_to_end() {
    let mut voc = Vocabulary::new();
    // Two distinct P-events at unknown order.
    let db = parse_database(&mut voc, "P(u); P(v); u != v;").unwrap();
    // "Two P's at genuinely distinct times" is certain…
    let q = parse_query(&mut voc, "exists s t. P(s) & P(t) & s != t").unwrap();
    assert!(Engine::new(&voc).entails(&db, &q).unwrap().holds());
    // …but "a P strictly before a P" is also certain (either order works).
    let q2 = parse_query(&mut voc, "exists s t. P(s) & s < t & P(t)").unwrap();
    assert!(Engine::new(&voc).entails(&db, &q2).unwrap().holds());
    // Without the != the latter fails.
    let db2 = parse_database(&mut voc, "P(u2); P(v2); u2 <= u2;").unwrap();
    let q3 = parse_query(&mut voc, "exists s t. P(s) & s < t & P(t)").unwrap();
    assert!(!Engine::new(&voc).entails(&db2, &q3).unwrap().holds());
}
