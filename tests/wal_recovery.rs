//! Crash-recovery differential suite for the durable serving layer.
//!
//! The contract under test (ISSUE 7): a server killed at an *arbitrary
//! WAL byte offset* and restarted recovers exactly the longest durable
//! prefix of its committed write sequence — identical verdicts,
//! identical countermodel sets, identical prepared registries — and
//! comes back warm. "Identical" is decided differentially against an
//! in-process oracle: a plain in-memory registry that applies the same
//! prefix of protocol lines through the live write path.
//!
//! The kill is simulated at the byte level: run a durable registry to
//! completion, take its WAL bytes, and restart from an arbitrary
//! truncation — every whole frame below the cut is a write the crashed
//! server acked (group fsync) and must survive; the torn frame at the
//! cut was never acked and must vanish without trace.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::core::sym::PredSym;
use indord::entail::{disjunctive, ineq};
use indord_server::durable::StorageConfig;
use indord_server::protocol::Response;
use indord_server::runtime::{Conn, Db, Registry};
use indord_storage::wal::scan;
use indord_storage::FsyncPolicy;
use proptest::prelude::*;

fn tempdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "indord-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// The committed write sequence: protocol lines, applied in this order
/// by both the durable run and the oracle. Mixes patchable and
/// structural fragments, multi-atom fragments, `!=`, and `PREPARE`
/// compilations (so the prepared registry is part of what recovery must
/// reproduce). Every line succeeds, so `k` durable records ⇔ the first
/// `k` lines applied.
const OPS: [&str; 9] = [
    "FACT pred P0(ord); pred P1(ord); pred P2(ord); \
     P0(c0); P1(c1); P2(c2); P0(c3); P1(c4); P2(c5); c0 < c1; c1 <= c2;",
    "FACT P2(c0);",
    "FACT c2 < c3; c3 <= c4;",
    "PREPARE q0: exists a b. P0(a) & a < b & P1(b)",
    "FACT P0(d0); P1(d1); d0 < d1;",
    "FACT c4 != c5;",
    "PREPARE q1: exists s t. P1(s) & s != t & P1(t)",
    "FACT c0 <= c1; P1(c5);",
    "FACT d1 < c0;",
];

/// Inline panel queries (evaluated as `ENTAIL <query>` on both sides;
/// responses — errors included, e.g. before the seed's declarations
/// exist — must match verbatim).
const PANEL: [&str; 4] = [
    "exists a b. P0(a) & a < b & P1(b)",
    "exists a b. P2(a) & a < b & P0(b)",
    "(exists s. P1(s) & P2(s)) | exists s t. P2(s) & s < t & P1(t)",
    "exists s t. P1(s) & s != t & P1(t)",
];

fn ps(ids: &[usize]) -> PredSet {
    ids.iter().copied().map(PredSym::from_index).collect()
}

/// Monadic panel for countermodel-set comparison (PredSym indices are
/// stable: both sides intern P0, P1, P2 from the identical seed line).
fn monadic_panel() -> Vec<Vec<MonadicQuery>> {
    let chain = |lo: usize, hi: usize| {
        MonadicQuery::new(
            OrderGraph::from_dag_edges(2, &[(0, 1, OrderRel::Lt)]).unwrap(),
            vec![ps(&[lo]), ps(&[hi])],
        )
    };
    let mut ne_pair = MonadicQuery::new(
        OrderGraph::from_dag_edges(2, &[]).unwrap(),
        vec![ps(&[1]), ps(&[1])],
    );
    ne_pair.ne.push((0, 1));
    let ne_expanded = ineq::eliminate_ne(&ne_pair, 64).expect("!= expansion fits the cap");
    vec![vec![chain(0, 1)], vec![chain(2, 0)], ne_expanded]
}

/// Enumerated countermodel *sets* for the monadic panel — canonical
/// minimal-model words, independent of internal vertex numbering.
fn countermodel_sets(mdb: &MonadicDatabase) -> Vec<HashSet<indord::core::model::MonadicModel>> {
    monadic_panel()
        .iter()
        .map(|disjuncts| {
            disjunctive::countermodels(mdb, disjuncts, 4096)
                .expect("countermodel enumeration succeeds")
                .into_iter()
                .collect()
        })
        .collect()
}

/// Applies the first `k` OPS to a fresh in-memory registry — the
/// sequential oracle for a crash that made exactly `k` records durable.
fn oracle(k: usize) -> (Arc<Registry>, Conn) {
    let registry = Arc::new(Registry::new());
    let mut c = Conn::new(Arc::clone(&registry));
    assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
    for op in &OPS[..k] {
        match c.handle_line(op) {
            Response::Ok(_) => {}
            other => panic!("oracle op `{op}`: unexpected {other:?}"),
        }
    }
    (registry, c)
}

/// Runs the full OPS sequence durably into `root` and returns the
/// resulting WAL bytes of database `lab`. The registry is dropped —
/// i.e. gracefully shut down — before the bytes are read.
fn committed_wal(root: &Path, fsync: FsyncPolicy) -> Vec<u8> {
    {
        let cfg = StorageConfig {
            root: root.to_path_buf(),
            fsync,
            snapshot_every: 10_000, // never: the whole sequence stays in the log
        };
        let registry = Arc::new(Registry::with_storage(cfg).unwrap());
        let mut c = Conn::new(Arc::clone(&registry));
        assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
        for op in OPS {
            match c.handle_line(op) {
                Response::Ok(_) => {}
                other => panic!("durable op `{op}`: unexpected {other:?}"),
            }
        }
        registry.shutdown_dbs();
    }
    std::fs::read(root.join("lab").join("wal.log")).unwrap()
}

/// Restarts a registry from a data dir whose `lab` WAL is exactly
/// `bytes` — the on-disk state a kill at that byte offset leaves.
fn restart_from(bytes: &[u8], tag: &str) -> (PathBuf, Arc<Registry>, Conn) {
    let root = tempdir(tag);
    std::fs::create_dir_all(root.join("lab")).unwrap();
    std::fs::write(root.join("lab").join("wal.log"), bytes).unwrap();
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let registry = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut c = Conn::new(Arc::clone(&registry));
    assert!(matches!(c.handle_line("USE lab"), Response::Ok(_)));
    (root, registry, c)
}

/// The differential check: the recovered database must be
/// indistinguishable from the oracle at prefix `k` — same state text,
/// same prepared registry, same panel responses, same countermodel
/// sets — and must have booted warm. `replayed` is the number of WAL
/// records recovery had to replay — `k` when no snapshot folded any,
/// fewer when one did.
fn assert_matches_oracle(recovered: &Arc<Db>, rc: &mut Conn, k: usize, replayed: u64) {
    let (oreg, mut oc) = oracle(k);
    let odb = oreg.get("lab").unwrap();
    let rsnap = recovered.read_snapshot().unwrap();
    let osnap = odb.read_snapshot().unwrap();

    // State: identical apply order from identical empty states makes
    // the database display text byte-identical, not just equivalent.
    assert_eq!(rsnap.session().len(), osnap.session().len(), "k={k}");
    assert_eq!(
        rsnap
            .session()
            .database()
            .display(rsnap.vocabulary())
            .to_string(),
        osnap
            .session()
            .database()
            .display(osnap.vocabulary())
            .to_string(),
        "k={k}: recovered database text diverges from the oracle"
    );

    // Prepared registry: same names compiled.
    assert_eq!(rsnap.prepared_len(), osnap.prepared_len(), "k={k}");
    for name in ["q0", "q1"] {
        assert_eq!(
            rc.handle_line(&format!("ENTAIL {name}")),
            oc.handle_line(&format!("ENTAIL {name}")),
            "k={k}: prepared `{name}` diverges (missing on one side?)"
        );
    }

    // Panel verdicts through the live read path (warm caches included).
    for q in PANEL {
        assert_eq!(
            rc.handle_line(&format!("ENTAIL {q}")),
            oc.handle_line(&format!("ENTAIL {q}")),
            "k={k}: panel `{q}` diverges"
        );
    }

    // Countermodel sets (deeper than verdicts: the whole minimal-model
    // frontier). Only meaningful once the seed declared the predicates.
    if k >= 1 {
        let rmdb = rsnap
            .session()
            .monadic(rsnap.vocabulary())
            .expect("monadic view");
        let omdb = osnap
            .session()
            .monadic(osnap.vocabulary())
            .expect("monadic view");
        assert_eq!(
            countermodel_sets(rmdb),
            countermodel_sets(omdb),
            "k={k}: countermodel sets diverge"
        );
    }

    // Warm restart: recovery built the scaffold once, at boot; the
    // panel evaluations above must not have rebuilt it.
    if k >= 1 {
        let Response::Stats(s) = rc.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.scaffold_builds, 1, "k={k}: boot must build the scaffold");
        assert_eq!(s.scaffold_rebuilds, 0, "k={k}: restart must be warm");
        assert_eq!(s.recovery_replayed_fragments, replayed, "k={k}");
    }
}

/// Kill at every frame boundary (clean group-commit crashes): each
/// prefix recovers exactly, and the reopened log keeps appending with
/// ids that never reset.
#[test]
fn kill_at_frame_boundaries_recovers_each_committed_prefix() {
    let root = tempdir("boundary");
    let wal = committed_wal(&root, FsyncPolicy::Group);
    let full = scan(&wal);
    assert_eq!(full.records.len(), OPS.len(), "one WAL record per op");
    assert!(full.torn.is_none());

    let mut ends: Vec<usize> = Vec::new();
    let mut acc = 0usize;
    for (_, payload) in &full.records {
        acc += indord_storage::wal::HEADER_LEN + payload.len();
        ends.push(acc);
    }
    for (k, &cut) in std::iter::once(&0usize).chain(ends.iter()).enumerate() {
        let (r2, registry, mut rc) = restart_from(&wal[..cut], "boundary-cut");
        let db = registry.get("lab").unwrap();
        assert_matches_oracle(&db, &mut rc, k, k as u64);
        // The sequence continues past the crash: a post-recovery write
        // lands with the next id — ids never reset, even at k=0.
        assert!(matches!(
            rc.handle_line("FACT pred R(ord); R(z0);"),
            Response::Ok(_)
        ));
        registry.shutdown_dbs();
        let reopened = std::fs::read(r2.join("lab").join("wal.log")).unwrap();
        let s2 = scan(&reopened);
        assert_eq!(s2.records.len(), k + 1);
        assert_eq!(s2.records.last().unwrap().0, k as u64 + 1);
        drop(registry);
        std::fs::remove_dir_all(&r2).unwrap();
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// A corrupt (killed-mid-write) snapshot file must not poison recovery:
/// the loader skips it and falls back to the previous valid snapshot
/// plus the WAL tail — which together still hold every acked write.
#[test]
fn kill_mid_snapshot_falls_back_to_snapshot_plus_wal() {
    let root = tempdir("midsnap");
    {
        let cfg = StorageConfig {
            root: root.clone(),
            fsync: FsyncPolicy::Group,
            snapshot_every: 10_000,
        };
        let registry = Arc::new(Registry::with_storage(cfg).unwrap());
        let mut c = Conn::new(Arc::clone(&registry));
        assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
        for op in &OPS[..5] {
            assert!(matches!(c.handle_line(op), Response::Ok(_)), "{op}");
        }
        // A valid snapshot folding the first five ops...
        assert!(matches!(c.handle_line("FLUSH"), Response::Ok(_)));
        // ...then more WAL-only writes on top of it.
        for op in &OPS[5..] {
            assert!(matches!(c.handle_line(op), Response::Ok(_)), "{op}");
        }
        registry.shutdown_dbs();
    }
    // The kill lands mid-snapshot-write: a newer snapshot file exists
    // but its content is torn garbage.
    std::fs::write(
        root.join("lab")
            .join(format!("snap-{:020}.snap", 99_999u64)),
        b"INDSNAPgarbage-cut-short",
    )
    .unwrap();
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let registry = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut rc = Conn::new(Arc::clone(&registry));
    assert!(matches!(rc.handle_line("USE lab"), Response::Ok(_)));
    let db = registry.get("lab").unwrap();
    // The valid snapshot folded the first five ops; only the four
    // post-snapshot records replay.
    assert_matches_oracle(&db, &mut rc, OPS.len(), (OPS.len() - 5) as u64);
    drop(registry);
    std::fs::remove_dir_all(&root).unwrap();
}

/// Graceful shutdown is a durability barrier even under `fsync=os`
/// (which never syncs during serving): the drain fsyncs the tail
/// before the shutdown ack, so a reopen finds everything.
#[test]
fn graceful_shutdown_makes_the_tail_durable_under_fsync_os() {
    let root = tempdir("shutdown-os");
    let wal = committed_wal(&root, FsyncPolicy::Os);
    let s = scan(&wal);
    assert_eq!(s.records.len(), OPS.len());
    let (r2, registry, mut rc) = restart_from(&wal, "shutdown-os-restart");
    let db = registry.get("lab").unwrap();
    assert_matches_oracle(&db, &mut rc, OPS.len(), OPS.len() as u64);
    drop(registry);
    std::fs::remove_dir_all(&r2).unwrap();
    std::fs::remove_dir_all(&root).unwrap();
}

/// A WAL `append` error in the *middle* of a multi-fragment group
/// commit: the fragment whose append failed — and every groupmate
/// behind it, the io being dead after the fault — must be neither
/// applied nor acked, while the groupmates whose appends succeeded
/// commit normally. Log-before-apply is per fragment, not per group, so
/// a group is allowed to split at the fault: the durable prefix of the
/// group survives, the rest is rejected with a typed error, and replay
/// of the surviving WAL reproduces exactly the acked prefix.
#[test]
fn wal_append_fault_mid_group_rejects_the_tail_of_the_group() {
    use indord::core::parse::parse_database;
    use indord::core::sym::Vocabulary;
    use indord_storage::wal::{Fault, FaultIo, FaultKind, HEADER_LEN};
    use indord_storage::Wal;
    use std::time::Duration;

    const SEED: &str = "pred P0(ord); pred P1(ord); pred P2(ord); P0(c0); P1(c1); c0 < c1;";
    // All three are patchable label facts on seed constants, so the
    // group's stable sort preserves enqueue order and the fault lands
    // on a known fragment.
    const W1: &str = "P2(c0);";
    const W2: &str = "P0(c1);";
    const W3: &str = "P1(c0);";

    let root = tempdir("midgroup-fault");
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let registry = Arc::new(Registry::with_storage(cfg).unwrap());
    let mut voc = Vocabulary::new();
    let seed_db = parse_database(&mut voc, SEED).unwrap();

    // The WAL dies exactly at the end of W1's frame: W1's append
    // succeeds, W2's append crosses the fault (nothing persists), and
    // W3 hits the dead io.
    let at_byte = (HEADER_LEN + format!("FACT {W1}").len()) as u64;
    let (io, persisted) = FaultIo::new(Fault {
        at_byte,
        kind: FaultKind::Error,
    });
    let wal = Wal::new(Box::new(io), FsyncPolicy::Group, 1);
    let db = registry
        .install_durable_with_wal("lab", voc, seed_db, wal)
        .unwrap();

    // Occupy the mutator, wait until it has taken the stall job off the
    // queue, then enqueue the three writes from this one thread —
    // channel FIFO makes them one deterministic group in W1..W3 order.
    let stall_rx = db.stall_mutator(Duration::from_millis(200)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while db.stats().commit_queue_depth() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "mutator never took the stall"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let rx1 = db.enqueue_fragment(W1).unwrap();
    let rx2 = db.enqueue_fragment(W2).unwrap();
    let rx3 = db.enqueue_fragment(W3).unwrap();
    stall_rx.recv().unwrap().unwrap();

    // W1: appended, applied, acked.
    match rx1.recv().unwrap() {
        Ok(Response::Ok(msg)) => assert!(msg.contains("inserted 1 atoms"), "{msg}"),
        other => panic!("W1: unexpected {other:?}"),
    }
    // W2 (the faulting append) and W3 (dead io): rejected, not applied.
    for (tag, rx) in [("W2", rx2), ("W3", rx3)] {
        match rx.recv().unwrap() {
            Err(e) => assert!(
                e.message.contains("write-ahead log append failed"),
                "{tag}: {e:?}"
            ),
            other => panic!("{tag}: unexpected {other:?}"),
        }
    }
    // One stall group + one three-write group, not three singletons.
    assert_eq!(db.stats().group_commits(), 2);
    assert_eq!(db.stats().group_fragments(), 4);

    // The published state is the oracle at seed + W1 — byte-identical
    // text, so W2/W3 contributed nothing.
    let (oreg, mut oc) = {
        let oreg = Arc::new(Registry::new());
        let mut voc = Vocabulary::new();
        let odb = parse_database(&mut voc, SEED).unwrap();
        oreg.install("lab", voc, odb);
        let mut oc = Conn::new(Arc::clone(&oreg));
        assert!(matches!(oc.handle_line("USE lab"), Response::Ok(_)));
        match oc.handle_line(&format!("FACT {W1}")) {
            Response::Ok(_) => {}
            other => panic!("oracle W1: unexpected {other:?}"),
        }
        (oreg, oc)
    };
    let osnap = oreg.get("lab").unwrap().read_snapshot().unwrap();
    let rsnap = db.read_snapshot().unwrap();
    assert_eq!(
        rsnap
            .session()
            .database()
            .display(rsnap.vocabulary())
            .to_string(),
        osnap
            .session()
            .database()
            .display(osnap.vocabulary())
            .to_string(),
        "rejected groupmates leaked into the published state"
    );
    let mut rc = Conn::new(Arc::clone(&registry));
    assert!(matches!(rc.handle_line("USE lab"), Response::Ok(_)));
    for q in [
        "exists a. P2(a) & P0(a)",
        "exists a b. P0(a) & a < b & P0(b)",
    ] {
        assert_eq!(
            rc.handle_line(&format!("ENTAIL {q}")),
            oc.handle_line(&format!("ENTAIL {q}")),
            "panel `{q}` diverges from the seed+W1 oracle"
        );
    }

    // Replay of the surviving WAL bytes reproduces exactly the acked
    // prefix: the snapshot (id 0) plus W1's frame, nothing of W2/W3.
    drop(rc);
    registry.shutdown_dbs();
    drop(db);
    drop(registry);
    let bytes = persisted.lock().unwrap().clone();
    assert_eq!(scan(&bytes).records.len(), 1, "only W1's frame persisted");
    std::fs::write(root.join("lab").join("wal.log"), &bytes).unwrap();
    let cfg = StorageConfig {
        root: root.clone(),
        fsync: FsyncPolicy::Group,
        snapshot_every: 10_000,
    };
    let reg2 = Arc::new(Registry::with_storage(cfg).unwrap());
    let db2 = reg2.get("lab").unwrap();
    assert_eq!(db2.stats().recovery_replayed_fragments(), 1);
    let snap2 = db2.read_snapshot().unwrap();
    assert_eq!(
        snap2
            .session()
            .database()
            .display(snap2.vocabulary())
            .to_string(),
        osnap
            .session()
            .database()
            .display(osnap.vocabulary())
            .to_string(),
        "recovery from the faulted WAL diverges from the acked prefix"
    );
    drop(reg2);
    std::fs::remove_dir_all(&root).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE acceptance property: kill at an *arbitrary* WAL byte offset.
    /// Whole frames below the cut are acked writes and must all
    /// survive; the torn frame must vanish; the recovered server must
    /// match the sequential oracle for that exact prefix and serve
    /// warm.
    #[test]
    fn kill_at_any_byte_offset_matches_the_prefix_oracle(
        cut_frac in 0usize..=1000,
    ) {
        // The committed WAL is deterministic; rebuild it per case (the
        // proptest shim runs cases in one process, so a static would
        // also work, but per-case dirs keep the cases independent).
        let root = tempdir("anybyte");
        let wal = committed_wal(&root, FsyncPolicy::Group);
        let cut = wal.len() * cut_frac / 1000;
        let k = scan(&wal[..cut]).records.len();
        let (r2, registry, mut rc) = restart_from(&wal[..cut], "anybyte-cut");
        let db = registry.get("lab").unwrap();
        assert_matches_oracle(&db, &mut rc, k, k as u64);
        // Torn bytes are reported and truncated on disk: a second
        // recovery of the same dir is clean.
        if k >= 1 {
            let Response::Stats(s) = rc.handle_line("STATS") else {
                panic!("expected stats");
            };
            prop_assert_eq!(s.recovery_truncated_bytes, (cut as u64) - scan(&wal[..cut]).valid_len);
        }
        registry.shutdown_dbs();
        drop(registry);
        let cfg = StorageConfig {
            root: r2.clone(),
            fsync: FsyncPolicy::Group,
            snapshot_every: 10_000,
        };
        let reg2 = Arc::new(Registry::with_storage(cfg).unwrap());
        let db2 = reg2.get("lab").unwrap();
        prop_assert_eq!(db2.stats().recovery_replayed_fragments(), k as u64);
        drop(reg2);
        std::fs::remove_dir_all(&r2).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }
}
