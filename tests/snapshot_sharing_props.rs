//! Structural-sharing proptests for the copy-on-write freeze path
//! (ISSUE 8).
//!
//! Two properties pin the O(changed) snapshot contract:
//!
//! 1. **Pinned snapshots are bit-identical.** Whatever interleaving of
//!    writes lands on the master session after a freeze — label facts,
//!    forward order edges, `!=` pairs, fresh-constant (structural)
//!    facts — the frozen snapshot's database display text and its panel
//!    verdicts do not change by a single byte.
//!
//! 2. **Untouched views stay `Arc`-shared.** For patchable-only
//!    interleavings the sharing report between master and snapshot is
//!    exactly predictable per view: the order graph unshares iff an
//!    edge landed, the vertex map and object profiles never unshare,
//!    the scaffold CoW-splits on the first patch of any kind (keeping
//!    its warm pair table), and the fact log's sealed chunks remain
//!    pointer-identical in every case — the structural statement that
//!    `freeze()` copies O(changed), not O(|D|).

use indord::core::atom::OrderRel;
use indord::core::parse::{parse_database, parse_query_expr_in};
use indord::core::session::{Session, Sharing};
use indord::core::sym::Vocabulary;
use indord::entail::Engine;
use proptest::prelude::*;

/// Seed: three predicates over six chained constants — identical to the
/// `mvcc_consistency` seed, so every generated edge below stays forward
/// (acyclic by construction) and `!=` pairs never hit merged vertices.
const SEED: &str = "pred P0(ord); pred P1(ord); pred P2(ord); \
     P0(c0); P1(c1); P2(c2); P0(c3); P1(c4); P2(c5); c0 < c1; c1 <= c2;";

/// Verdict panel; chosen so several verdicts flip as generated writes
/// land (an always-constant panel would accept a torn snapshot).
const PANEL: [&str; 4] = [
    "exists a b. P0(a) & a < b & P1(b)",
    "exists a b. P2(a) & a < b & P0(b)",
    "(exists s. P1(s) & P2(s)) | exists s t. P2(s) & s < t & P1(t)",
    "exists s t. P1(s) & s != t & P1(t)",
];

fn eval_panel(voc: &Vocabulary, session: &Session) -> Vec<bool> {
    let eng = Engine::new(voc);
    PANEL
        .iter()
        .map(|text| {
            let expr = parse_query_expr_in(voc, text).expect("panel query parses");
            let q = expr.to_dnf(voc).expect("panel query normalizes");
            let pq = eng.prepare(&q).expect("panel query prepares");
            eng.entails_prepared(session, &pq)
                .expect("panel query evaluates")
                .holds()
        })
        .collect()
}

/// One generated write, rendered to parser syntax.
#[derive(Debug, Clone)]
enum W {
    /// `P{p}(c{k});` — patchable label fact on a known constant.
    Label(usize, usize),
    /// `c{u} < c{v};` (u < v) — patchable forward order edge.
    Edge(usize, usize),
    /// `c{u} != c{v};` — patchable known-vertex inequality.
    Ne(usize, usize),
    /// `P0(z{k});` — structural: a fresh order constant drops caches.
    Fresh(usize),
}

impl W {
    fn text(&self) -> String {
        match self {
            W::Label(p, k) => format!("P{p}(c{k});"),
            W::Edge(u, v) => format!("c{u} < c{v};"),
            W::Ne(u, v) => format!("c{u} != c{v};"),
            W::Fresh(k) => format!("P0(z{k});"),
        }
    }
}

fn patchable_write() -> impl Strategy<Value = W> {
    prop_oneof![
        (0usize..3, 0usize..6).prop_map(|(p, k)| W::Label(p, k)),
        (0usize..5, 0usize..5).prop_map(|(a, b)| if a <= b {
            W::Edge(a, b + 1)
        } else {
            W::Edge(b, a)
        }),
        (0usize..5, 0usize..5).prop_map(|(a, b)| if a <= b {
            W::Ne(a, b + 1)
        } else {
            W::Ne(b, a)
        }),
    ]
}

fn any_write() -> impl Strategy<Value = W> {
    prop_oneof![
        patchable_write(),
        patchable_write(),
        patchable_write(),
        (0usize..8).prop_map(W::Fresh),
    ]
}

/// Seeds a warm session: every derived view computed before the freeze.
fn warm_seeded_session() -> (Vocabulary, Session) {
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, SEED).expect("seed parses");
    let session = Session::new(db);
    session.normal().expect("normal view");
    session.monadic(&voc).expect("monadic view");
    session.disjunctive_scaffold(&voc).expect("scaffold");
    session.object_profiles().expect("profiles");
    (voc, session)
}

/// Applies one write through the live patch paths (`push_proper` /
/// `assert_*`) — `Session::extend` would drop the caches wholesale and
/// test nothing about the patching CoW story.
fn apply(session: &mut Session, voc: &mut Vocabulary, op: &W) {
    let fragment = parse_database(voc, &op.text()).expect("generated write parses");
    for atom in fragment.proper_atoms().iter() {
        session.push_proper(atom.clone());
    }
    for oa in fragment.order_atoms().iter() {
        match oa.rel {
            OrderRel::Lt => session.assert_lt(oa.lhs, oa.rhs),
            OrderRel::Le => session.assert_le(oa.lhs, oa.rhs),
            OrderRel::Ne => session.assert_ne(oa.lhs, oa.rhs),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: any interleaving — structural writes included —
    /// leaves a pinned snapshot bit-identical in text and verdicts.
    #[test]
    fn pinned_snapshots_are_bit_identical_under_any_interleaving(
        ops in proptest::collection::vec(any_write(), 0..16),
    ) {
        let (mut voc, mut session) = warm_seeded_session();
        let snap = session.freeze();
        let baseline_text = snap
            .database()
            .display(&voc)
            .to_string();
        let baseline_verdicts = eval_panel(&voc, &snap);
        let sealed = snap.database().proper_atoms().sealed_chunks();

        for op in &ops {
            apply(&mut session, &mut voc, op);
        }

        // The writer moved on; the pinned snapshot did not move a byte.
        // (The baseline vocabulary prefix is immutable — interning is
        // append-only — so rendering under the grown `voc` is exact.)
        prop_assert_eq!(
            snap.database().display(&voc).to_string(),
            baseline_text,
            "pinned snapshot text changed under {ops:?}"
        );
        prop_assert_eq!(
            eval_panel(&voc, &snap),
            baseline_verdicts,
            "pinned snapshot verdicts changed under {ops:?}"
        );
        // The sealed prefix of the fact log is still pointer-shared:
        // appends (and even structural cache drops) extend the log,
        // they never recopy what a snapshot can see.
        prop_assert_eq!(
            session
                .database()
                .proper_atoms()
                .shared_chunks_with(snap.database().proper_atoms()),
            sealed,
            "sealed chunks were recopied under {ops:?}"
        );
    }

    /// Property 2: for patchable-only interleavings the sharing report
    /// is exactly predictable per view — the structural O(changed)
    /// statement, not a timing proxy.
    #[test]
    fn patchable_interleavings_unshare_only_the_touched_views(
        ops in proptest::collection::vec(patchable_write(), 0..16),
    ) {
        let (mut voc, mut session) = warm_seeded_session();
        let snap = session.freeze();
        let scaffold_generation = snap
            .disjunctive_scaffold(&voc)
            .expect("snapshot scaffold is warm")
            .pair_generation();

        let mut any_label = false;
        let mut any_edge = false;
        let mut any_ne = false;
        for op in &ops {
            match op {
                W::Label(..) => any_label = true,
                W::Edge(..) => any_edge = true,
                W::Ne(..) => any_ne = true,
                W::Fresh(..) => unreachable!("patchable strategy"),
            }
            apply(&mut session, &mut voc, op);
        }
        let any = any_label || any_edge || any_ne;

        let report = session.sharing_with(&snap);
        // Every view is warm on both sides; Cold would mean the freeze
        // or the patch pass silently lost a cache.
        prop_assert_eq!(
            report.normal,
            if any { Sharing::Unshared } else { Sharing::Shared },
            "normal view under {ops:?}"
        );
        prop_assert_eq!(
            report.monadic,
            if any { Sharing::Unshared } else { Sharing::Shared },
            "monadic view under {ops:?}"
        );
        // Inner components unshare only when an op of their kind landed.
        prop_assert_eq!(
            report.order_graph,
            if any_edge { Sharing::Unshared } else { Sharing::Shared },
            "order graph under {ops:?}"
        );
        prop_assert_eq!(report.vertex_map, Sharing::Shared, "vertex map under {ops:?}");
        prop_assert_eq!(report.profiles, Sharing::Shared, "profiles under {ops:?}");
        // Every patch kind touches the scaffold (labels patch `D(S,T)`
        // unions, edges its closure, `!=` marks its blocked-commit bits
        // stale), so any op CoW-splits it away from the snapshot.
        prop_assert_eq!(
            report.scaffold,
            if any { Sharing::Unshared } else { Sharing::Shared },
            "scaffold under {ops:?}"
        );
        // The epoch tag: every CoW split carried the warm `D(S,T)` pair
        // table instead of starting a cold one (no contention in this
        // single-threaded interleaving, so the generation never bumps).
        prop_assert_eq!(
            session
                .disjunctive_scaffold(&voc)
                .expect("master scaffold stays warm through patches")
                .pair_generation(),
            scaffold_generation,
            "a patch pass dropped the warm pair table under {ops:?}"
        );
        // And the fact log: label writes append; at most the unsealed
        // tail (< CHUNK elements) differs structurally.
        let master_log = session.database().proper_atoms();
        let snap_log = snap.database().proper_atoms();
        prop_assert_eq!(
            master_log.shared_chunks_with(snap_log),
            snap_log.sealed_chunks(),
            "sealed chunks under {ops:?}"
        );
        prop_assert!(
            master_log.len() - snap_log.len() <= ops.len(),
            "log grew by more than the applied writes"
        );
    }
}
