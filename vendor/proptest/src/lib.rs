//! A minimal, dependency-free stand-in for the subset of the `proptest`
//! API this workspace's property tests use. The build environment has no
//! network access, so the real crate cannot be fetched.
//!
//! Differences from real proptest: generation is plain seeded random
//! sampling (deterministic per test name), and failing cases are reported
//! without shrinking. The `Strategy` combinators (`prop_map`,
//! `prop_flat_map`), `Just`, tuples, ranges, `collection::vec`,
//! `bits::u8::between`, `bool::ANY`, simple `[class]{lo,hi}` string
//! patterns, `prop_oneof!`, `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! and `TestRunner::run` are supported with the same surface syntax.

pub mod strategy;

pub mod test_runner;

/// Fixed-size collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Bit-mask strategies.
pub mod bits {
    /// Strategies over `u8` masks.
    pub mod u8 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `u8` values whose set bits lie in `[lo, hi)`.
        pub struct Between {
            mask: u8,
        }

        /// Masks with set bits only in positions `lo..hi`.
        pub fn between(lo: usize, hi: usize) -> Between {
            let mut mask = 0u8;
            for b in lo..hi.min(8) {
                mask |= 1 << b;
            }
            Between { mask }
        }

        impl Strategy for Between {
            type Value = u8;

            fn generate(&self, rng: &mut TestRng) -> u8 {
                (rng.next_u64() as u8) & self.mask
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+), l, r
            ),
        }
    };
}

/// Fails the current property case if the values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($strategy:expr $(,)?) => { $strategy };
    ($first:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(
            $first,
            $crate::__prop_oneof_count!($($rest),+),
            $crate::prop_oneof!($($rest),+),
        )
    };
}

/// Implementation detail of [`prop_oneof!`]: counts its arguments.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_oneof_count {
    ($one:expr) => { 1u32 };
    ($first:expr, $($rest:expr),+) => { 1u32 + $crate::__prop_oneof_count!($($rest),+) };
}

/// Declares property tests, mirroring proptest's macro surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{TestRng, TestRunner};

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let s = (1usize..=5).prop_flat_map(|n| {
            crate::collection::vec((0..n * n, crate::bool::ANY), 0..=2 * n)
                .prop_map(move |pairs| (n, pairs))
        });
        let mut rng = TestRng::deterministic("shim");
        for _ in 0..50 {
            let (n, pairs) = s.generate(&mut rng);
            assert!((1..=5).contains(&n));
            assert!(pairs.len() <= 2 * n);
            for (code, _) in pairs {
                assert!(code < n * n);
            }
        }
    }

    #[test]
    fn oneof_and_just_generate() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [1u8, 2, 3].into_iter().collect());
    }

    #[test]
    fn string_patterns_generate() {
        let s = "[ab]{2,4}";
        let mut rng = TestRng::deterministic("str");
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn runner_runs_and_reports() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner
            .run(&(0usize..10, 0usize..10), |(a, b)| {
                prop_assert!(a < 10 && b < 10);
                Ok(())
            })
            .unwrap();
        let failed = runner.run(&(0usize..10,), |(a,)| {
            prop_assert!(a < 5, "a was {}", a);
            Ok(())
        });
        assert!(failed.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro form compiles and runs.
        #[test]
        fn macro_form_works(x in 0usize..10, ys in crate::collection::vec(0usize..3, 1..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.iter().copied().max().is_some(), true);
        }
    }
}
