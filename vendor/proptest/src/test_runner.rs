//! Test configuration, RNG, and the closure-based runner.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Compatibility alias used by some call sites.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generation RNG handed to strategies — deterministic per test name
/// so failures reproduce across runs.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a stable FNV-1a hash of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// The underlying `rand` generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Closure-based runner, mirroring `proptest::test_runner::TestRunner`.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::deterministic("proptest-test-runner"),
        }
    }

    /// Runs `test` against `cases` values drawn from `strategy`, stopping
    /// at the first failure.
    pub fn run<S: Strategy, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestCaseError>
    where
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            test(value).map_err(|e| {
                TestCaseError::fail(format!(
                    "case {}/{} failed: {}",
                    case + 1,
                    self.config.cases,
                    e
                ))
            })?;
        }
        Ok(())
    }
}
