//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform binary choice between two strategies of the same value type;
/// `prop_oneof!` folds its options into a right-nested chain of these,
/// weighting each node so every leaf is equally likely.
pub struct OneOf<A, B> {
    left: A,
    right: B,
    right_arms: u32,
}

impl<A, B> OneOf<A, B> {
    /// `right_arms` is the number of leaf options inside `right`.
    pub fn new(left: A, right_arms: u32, right: B) -> Self {
        OneOf {
            left,
            right,
            right_arms,
        }
    }
}

impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for OneOf<A, B> {
    type Value = A::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.rng().gen_range(0..self.right_arms + 1) == 0 {
            self.left.generate(rng)
        } else {
            self.right.generate(rng)
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String patterns of the form `[class]{lo,hi}` (the only regex shape the
/// workspace's tests use). Unsupported patterns are treated as literal
/// alphabets.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_pattern(self);
        let n = rng.rng().gen_range(lo..=hi);
        (0..n)
            .map(|_| alphabet[rng.rng().gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_simple_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let fallback = || (pattern.chars().collect::<Vec<_>>(), 0usize, 16usize);
    let rest = match pattern.strip_prefix('[') {
        Some(r) => r,
        None => return fallback(),
    };
    let close = match rest.find(']') {
        Some(i) => i,
        None => return fallback(),
    };
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a as u32..=b as u32 {
                if let Some(c) = char::from_u32(c) {
                    alphabet.push(c);
                }
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return fallback();
    }
    // {lo,hi} suffix
    let suffix = &rest[close + 1..];
    let (lo, hi) = suffix
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .and_then(|body| {
            let (l, h) = body.split_once(',')?;
            Some((l.trim().parse().ok()?, h.trim().parse().ok()?))
        })
        .unwrap_or((0, 16));
    (alphabet, lo, hi)
}
