//! A minimal, deterministic, dependency-free stand-in for the subset of the
//! `rand` 0.8 API this workspace uses (`StdRng::seed_from_u64`, `gen`,
//! `gen_bool`, `gen_range`). The build environment has no network access,
//! so the real crate cannot be fetched; workloads only need reproducible
//! pseudo-randomness, not cryptographic quality.
//!
//! The generator is SplitMix64, which passes BigCrush for the bit budgets
//! used here and is trivially seedable from a `u64`.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }

    #[test]
    fn standard_values_draw() {
        let mut r = StdRng::seed_from_u64(3);
        let _: bool = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
