//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use. The build environment has no network
//! access, so the real crate cannot be fetched.
//!
//! The measurement model is deliberately simple but honest: each
//! `Bencher::iter` call runs a warm-up, then collects `sample_size`
//! samples, each a batch of iterations sized so the batches together fill
//! the configured measurement time; it reports the median per-iteration
//! time. That is enough to compare alternatives (prepared vs. unprepared,
//! engine crossovers, scaling series) on the same machine and run.
//!
//! Two extensions beyond the upstream API surface:
//!
//! * **Machine-readable results** — every measurement is recorded, and
//!   `criterion_main!` ends by writing `BENCH_<binary>.json` (override
//!   the path with the `BENCH_JSON` environment variable) with one
//!   `{"id", "ns_per_iter"}` entry per benchmark, so the repository can
//!   track its bench trajectory across commits.
//! * **Smoke mode** — passing `--smoke` (e.g. `cargo bench -- --smoke`)
//!   clamps sample counts and measurement times to CI-sized values and
//!   suppresses the implicit JSON file (an explicit `BENCH_JSON` path
//!   still writes); it exists to keep bench code compiling *and
//!   running* in CI without burning minutes. [`is_smoke`] lets benches
//!   shorten their own hand-rolled measurement loops too.

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Recorded measurements of this bench process: `(id, ns per iteration)`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Records an externally-measured scalar under `id` so hand-rolled
/// harness numbers (a client-side p99, a writes/sec figure, a
/// stats-derived ratio) land in the same JSON baseline as [`Bencher`]
/// medians. Extension beyond the upstream API, used by report-style
/// bench targets that measure outside `Bencher::iter`.
pub fn record(id: &str, value: f64) {
    RESULTS
        .lock()
        .expect("results mutex")
        .push((id.to_string(), value));
}

/// True when the process was started in smoke mode (`--smoke`).
pub fn is_smoke() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--smoke"))
}

/// Writes the recorded measurements as JSON. Called by `criterion_main!`
/// after all groups ran. In smoke mode the implicit
/// `BENCH_<binary>.json` dump is suppressed (throwaway numbers must not
/// overwrite a recorded baseline), but an explicit `$BENCH_JSON` path
/// is honored — it names a scratch destination, not the baseline, and
/// the CI regression gate reads it.
pub fn finalize() {
    if is_smoke() && std::env::var("BENCH_JSON").is_err() {
        return;
    }
    let results = RESULTS.lock().expect("results mutex");
    if results.is_empty() {
        return;
    }
    let stem = bench_stem();
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| format!("BENCH_{stem}.json"));
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&stem)));
    out.push_str("  \"results\": [\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}}}{comma}\n",
            escape(id),
            ns
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path} ({} results)", results.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The bench binary's stem with cargo's trailing `-<hash>` stripped.
fn bench_stem() -> String {
    let raw = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    match raw.rsplit_once('-') {
        Some((head, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            head.to_string()
        }
        _ => raw,
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep defaults small: these benches run in CI-sized containers.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            filter,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// No-op compatibility shim for CLI configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let settings = self.settings();
        run_one(&settings, &self.filter, id, |b| f(b));
    }

    fn settings(&self) -> Settings {
        Settings {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the workload size for throughput reporting (stored, printed
    /// alongside results).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let settings = self.criterion.settings();
        run_one(&settings, &self.criterion.filter, &full, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let settings = self.criterion.settings();
        run_one(&settings, &self.criterion.filter, &full, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    settings: &Settings,
    filter: &Option<String>,
    name: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let settings = if is_smoke() {
        Settings {
            sample_size: settings.sample_size.min(2),
            measurement_time: settings.measurement_time.min(Duration::from_millis(20)),
            warm_up_time: settings.warm_up_time.min(Duration::from_millis(5)),
        }
    } else {
        *settings
    };
    let mut b = Bencher {
        settings,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(r) => {
            println!(
                "{name:<60} time: [{}]  ({} samples, {} iters/sample)",
                format_ns(r.median_ns),
                settings.sample_size,
                r.iters_per_sample,
            );
            RESULTS
                .lock()
                .expect("results mutex")
                .push((name.to_string(), r.median_ns));
        }
        None => println!("{name:<60} (no measurement)"),
    }
}

struct Measurement {
    median_ns: f64,
    iters_per_sample: u64,
}

/// Per-benchmark measurement driver handed to the closures.
pub struct Bencher {
    settings: Settings,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures a closure: warm-up, then `sample_size` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also used to estimate the per-iteration cost.
        let warm_until = Instant::now() + self.settings.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_started = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_until {
                break;
            }
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.settings.sample_size.max(2);
        let budget = self.settings.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        self.result = Some(Measurement {
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            iters_per_sample,
        });
    }

    /// The median per-iteration time of the last [`Bencher::iter`] run, in
    /// nanoseconds (extension used by assertions in this workspace).
    pub fn last_median_ns(&self) -> Option<f64> {
        self.result.as_ref().map(|r| r.median_ns)
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Identifies a benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

/// Workload-size annotation (accepted, reported inline).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro, and
/// finishing with [`finalize`] (the machine-readable results dump).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn measurements_are_recorded_for_the_json_dump() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("record/me", |b| b.iter(|| black_box(1 + 1)));
        let results = RESULTS.lock().unwrap();
        let entry = results.iter().find(|(id, _)| id == "record/me");
        let (_, ns) = entry.expect("measurement recorded");
        assert!(*ns > 0.0);
    }

    #[test]
    fn stem_strips_cargo_hash_suffix() {
        // bench_stem reads argv0; exercise the suffix rule directly.
        let strip = |raw: &str| -> String {
            match raw.rsplit_once('-') {
                Some((head, tail))
                    if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
                {
                    head.to_string()
                }
                _ => raw.to_string(),
            }
        };
        assert_eq!(strip("prepared-b1c3a3d41975bc69"), "prepared");
        assert_eq!(strip("table1_nary"), "table1_nary");
        assert_eq!(strip("engine-crossover"), "engine-crossover");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
