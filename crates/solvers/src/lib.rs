//! # indord-solvers
//!
//! Reference deciders for the complete problems the paper reduces from:
//!
//! * [`formula`] — propositional formulas and random generators;
//! * [`cnf`] — CNF, the Tseitin transform, brute-force satisfiability;
//! * [`dpll`] — a DPLL SAT solver (unit propagation, pure literals);
//! * [`qbf`] — Π₂ quantified boolean formulas `∀p⃗ ∃q⃗ α` (Theorem 3.3);
//! * [`dnf`] — DNF tautology checking (Theorem 4.6);
//! * [`mono3sat`] — monotone 3-SAT instances (Theorem 3.2);
//! * [`coloring`] — graph 3-colourability (Theorem 7.1).
//!
//! Everything is implemented from scratch so the hardness reductions of
//! `indord-reductions` can be *verified*: both sides of each
//! "`D |= Φ` iff instance-is-X" equivalence are computed independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod coloring;
pub mod dnf;
pub mod dpll;
pub mod formula;
pub mod mono3sat;
pub mod qbf;
