//! Conjunctive normal form and the Tseitin transform.
//!
//! Literals are encoded as non-zero `i32`s: `+(v+1)` for variable `v`,
//! `-(v+1)` for its negation (the DIMACS convention).

use crate::formula::Formula;
use rand::Rng;

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Number of variables (`0..n_vars`).
    pub n_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<i32>>,
}

/// Encodes variable `v` as a positive literal.
pub fn lit(v: usize) -> i32 {
    i32::try_from(v + 1).expect("variable index overflow")
}

/// Encodes the negation of variable `v`.
pub fn neg(v: usize) -> i32 {
    -lit(v)
}

/// The variable of a literal.
pub fn var_of(l: i32) -> usize {
    (l.unsigned_abs() as usize) - 1
}

impl Cnf {
    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|&l| {
                let v = var_of(l);
                if l > 0 {
                    assignment[v]
                } else {
                    !assignment[v]
                }
            })
        })
    }

    /// Brute-force satisfiability (oracle for small instances).
    pub fn satisfiable_brute(&self) -> bool {
        assert!(self.n_vars < 26, "brute force capped at 25 variables");
        let mut assignment = vec![false; self.n_vars];
        for mask in 0..(1u64 << self.n_vars) {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = mask & (1 << i) != 0;
            }
            if self.eval(&assignment) {
                return true;
            }
        }
        self.clauses.is_empty() && self.n_vars == 0
    }

    /// Tseitin transform: an equisatisfiable CNF with one fresh variable
    /// per connective. The original variables keep their indices, so a
    /// satisfying assignment restricted to `0..n_original` satisfies `f`.
    pub fn tseitin(f: &Formula, n_original: usize) -> Cnf {
        let mut cnf = Cnf {
            n_vars: n_original.max(f.num_vars()),
            clauses: Vec::new(),
        };
        let root = encode(f, &mut cnf);
        cnf.clauses.push(vec![root]);
        cnf
    }

    /// A random 3-CNF with the given clause count.
    pub fn random_3cnf<R: Rng>(rng: &mut R, n_vars: usize, n_clauses: usize) -> Cnf {
        assert!(n_vars >= 3);
        let mut clauses = Vec::with_capacity(n_clauses);
        for _ in 0..n_clauses {
            let mut vars = [0usize; 3];
            vars[0] = rng.gen_range(0..n_vars);
            loop {
                vars[1] = rng.gen_range(0..n_vars);
                if vars[1] != vars[0] {
                    break;
                }
            }
            loop {
                vars[2] = rng.gen_range(0..n_vars);
                if vars[2] != vars[0] && vars[2] != vars[1] {
                    break;
                }
            }
            let clause = vars
                .iter()
                .map(|&v| if rng.gen() { lit(v) } else { neg(v) })
                .collect();
            clauses.push(clause);
        }
        Cnf { n_vars, clauses }
    }
}

/// Returns the literal representing `f`'s truth value, adding defining
/// clauses to `cnf`.
fn encode(f: &Formula, cnf: &mut Cnf) -> i32 {
    match f {
        Formula::Var(v) => lit(*v as usize),
        Formula::Not(g) => -encode(g, cnf),
        Formula::And(gs) => {
            let ls: Vec<i32> = gs.iter().map(|g| encode(g, cnf)).collect();
            let x = fresh(cnf);
            // x ↔ ⋀ ls
            for &l in &ls {
                cnf.clauses.push(vec![-x, l]);
            }
            let mut big: Vec<i32> = ls.iter().map(|&l| -l).collect();
            big.push(x);
            cnf.clauses.push(big);
            x
        }
        Formula::Or(gs) => {
            let ls: Vec<i32> = gs.iter().map(|g| encode(g, cnf)).collect();
            let x = fresh(cnf);
            // x ↔ ⋁ ls
            for &l in &ls {
                cnf.clauses.push(vec![x, -l]);
            }
            let mut big = ls;
            big.push(-x);
            cnf.clauses.push(big);
            x
        }
    }
}

fn fresh(cnf: &mut Cnf) -> i32 {
    let v = cnf.n_vars;
    cnf.n_vars += 1;
    lit(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn literal_encoding_round_trips() {
        assert_eq!(var_of(lit(5)), 5);
        assert_eq!(var_of(neg(5)), 5);
        assert!(lit(0) > 0 && neg(0) < 0);
    }

    #[test]
    fn eval_and_brute() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1): xor-ish, satisfiable.
        let cnf = Cnf {
            n_vars: 2,
            clauses: vec![vec![lit(0), lit(1)], vec![neg(0), neg(1)]],
        };
        assert!(cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[true, true]));
        assert!(cnf.satisfiable_brute());
        // x0 ∧ ¬x0
        let cnf = Cnf {
            n_vars: 1,
            clauses: vec![vec![lit(0)], vec![neg(0)]],
        };
        assert!(!cnf.satisfiable_brute());
    }

    #[test]
    fn tseitin_is_equisatisfiable() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let f = Formula::random(&mut rng, 4, 3);
            let direct = f.satisfiable_brute(4);
            let ts = Cnf::tseitin(&f, 4);
            assert_eq!(ts.satisfiable_brute(), direct, "formula {f:?}");
        }
    }

    #[test]
    fn tseitin_preserves_models_on_originals() {
        // If the Tseitin CNF is satisfied, the restriction to original
        // variables satisfies the formula.
        let f = Formula::Or(vec![
            Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
            Formula::Not(Box::new(Formula::Var(2))),
        ]);
        let ts = Cnf::tseitin(&f, 3);
        let mut assignment = vec![false; ts.n_vars];
        'outer: for mask in 0..(1u64 << ts.n_vars) {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = mask & (1 << i) != 0;
            }
            if ts.eval(&assignment) {
                assert!(f.eval(&assignment[..3]));
                break 'outer;
            }
        }
    }

    #[test]
    fn random_3cnf_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let cnf = Cnf::random_3cnf(&mut rng, 6, 10);
        assert_eq!(cnf.clauses.len(), 10);
        for c in &cnf.clauses {
            assert_eq!(c.len(), 3);
            let mut vs: Vec<usize> = c.iter().map(|&l| var_of(l)).collect();
            vs.sort_unstable();
            vs.dedup();
            assert_eq!(vs.len(), 3, "distinct variables per clause");
        }
    }
}
