//! Graph 3-colourability (the complete problem used by Theorem 7.1).

use rand::Rng;

/// An undirected graph on vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges (stored once per pair).
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph, normalizing and deduplicating the edge list.
    pub fn new(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut es: Vec<(u32, u32)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        es.sort_unstable();
        es.dedup();
        for &(a, b) in &es {
            assert!((a as usize) < n && (b as usize) < n, "edge out of range");
        }
        Graph { n, edges: es }
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        adj
    }

    /// Decides `k`-colourability by backtracking with symmetry breaking
    /// (vertex 0 gets colour 0); returns a colouring when one exists.
    pub fn colorable(&self, k: usize) -> Option<Vec<usize>> {
        if self.n == 0 {
            return Some(Vec::new());
        }
        let adj = self.adjacency();
        let mut colors = vec![usize::MAX; self.n];
        fn go(v: usize, k: usize, adj: &[Vec<usize>], colors: &mut Vec<usize>) -> bool {
            if v == adj.len() {
                return true;
            }
            let limit = if v == 0 { 1 } else { k };
            for c in 0..limit {
                if adj[v].iter().all(|&w| colors[w] != c) {
                    colors[v] = c;
                    if go(v + 1, k, adj, colors) {
                        return true;
                    }
                    colors[v] = usize::MAX;
                }
            }
            false
        }
        go(0, k, &adj, &mut colors).then_some(colors)
    }

    /// 3-colourability.
    pub fn three_colorable(&self) -> bool {
        self.colorable(3).is_some()
    }

    /// Validates a colouring.
    pub fn is_proper_coloring(&self, colors: &[usize]) -> bool {
        colors.len() == self.n
            && self
                .edges
                .iter()
                .all(|&(a, b)| colors[a as usize] != colors[b as usize])
    }

    /// A random G(n, p) graph.
    pub fn random<R: Rng>(rng: &mut R, n: usize, p: f64) -> Graph {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((a as u32, b as u32));
                }
            }
        }
        Graph::new(n, &edges)
    }

    /// The complete graph `K_n` (not 3-colourable for `n ≥ 4`).
    pub fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a as u32, b as u32));
            }
        }
        Graph::new(n, &edges)
    }

    /// The cycle `C_n` (3-colourable for every `n ≠ 0`, 2-colourable iff
    /// even).
    pub fn cycle(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
        Graph::new(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_classics() {
        assert!(Graph::complete(3).three_colorable());
        assert!(!Graph::complete(4).three_colorable());
        assert!(Graph::cycle(5).three_colorable());
        assert!(Graph::cycle(5).colorable(2).is_none());
        assert!(Graph::cycle(6).colorable(2).is_some());
    }

    #[test]
    fn colorings_are_proper() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let g = Graph::random(&mut rng, 8, 0.4);
            if let Some(c) = g.colorable(3) {
                assert!(g.is_proper_coloring(&c));
            }
        }
    }

    #[test]
    fn edge_normalization() {
        let g = Graph::new(3, &[(1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.edges, vec![(0, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, &[]);
        assert!(g.three_colorable());
        let g1 = Graph::new(5, &[]);
        assert!(g1.colorable(1).is_some());
    }

    #[test]
    fn petersen_graph_is_3_colorable() {
        // Outer C5 (0-4), inner pentagram (5-9), spokes.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5));
            edges.push((i + 5, ((i + 2) % 5) + 5));
            edges.push((i, i + 5));
        }
        let g = Graph::new(10, &edges);
        assert!(g.three_colorable());
        assert!(g.colorable(2).is_none());
    }
}
