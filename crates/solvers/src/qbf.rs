//! Π₂ quantified boolean formulas: `∀p₁…pₙ ∃q₁…qₘ α` (the complete problem
//! for Π₂ᵖ used by Theorem 3.3).
//!
//! Evaluation enumerates the `2ⁿ` universal assignments; for each, the
//! existential part is decided by the DPLL solver on a Tseitin encoding of
//! α with the universals substituted. A brute-force evaluator cross-checks.

use crate::cnf::Cnf;
use crate::dpll;
use crate::formula::Formula;
use rand::Rng;

/// A Π₂ sentence. Variables `0..n_universal` are universally quantified;
/// `n_universal..n_universal+n_existential` existentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pi2 {
    /// Number of universal variables (the `p` block).
    pub n_universal: usize,
    /// Number of existential variables (the `q` block).
    pub n_existential: usize,
    /// The matrix α over all `n_universal + n_existential` variables.
    pub matrix: Formula,
}

impl Pi2 {
    /// Total variable count.
    pub fn n_vars(&self) -> usize {
        self.n_universal + self.n_existential
    }

    /// Evaluates the sentence (DPLL-backed).
    pub fn is_true(&self) -> bool {
        assert!(self.n_universal < 26, "universal block capped at 25");
        let mut universals = vec![false; self.n_universal];
        for mask in 0..(1u64 << self.n_universal) {
            for (i, u) in universals.iter_mut().enumerate() {
                *u = mask & (1 << i) != 0;
            }
            if !self.exists_extension(&universals) {
                return false;
            }
        }
        true
    }

    /// Does some existential assignment extend the given universals?
    fn exists_extension(&self, universals: &[bool]) -> bool {
        let substituted = substitute(&self.matrix, universals);
        match substituted {
            Sub::Const(b) => b,
            Sub::Formula(f) => {
                let cnf = Cnf::tseitin(&f, self.n_vars());
                dpll::satisfiable(&cnf)
            }
        }
    }

    /// Brute-force evaluation over both blocks (oracle).
    pub fn is_true_brute(&self) -> bool {
        let n = self.n_vars();
        assert!(n < 26, "brute force capped at 25 variables");
        let mut assignment = vec![false; n];
        'outer: for umask in 0..(1u64 << self.n_universal) {
            for (i, a) in assignment.iter_mut().take(self.n_universal).enumerate() {
                *a = umask & (1 << i) != 0;
            }
            for emask in 0..(1u64 << self.n_existential) {
                for i in 0..self.n_existential {
                    assignment[self.n_universal + i] = emask & (1 << i) != 0;
                }
                if self.matrix.eval(&assignment) {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// A random Π₂ sentence.
    pub fn random<R: Rng>(rng: &mut R, n_universal: usize, n_existential: usize) -> Pi2 {
        let matrix = Formula::random(rng, (n_universal + n_existential) as u32, 4);
        Pi2 {
            n_universal,
            n_existential,
            matrix,
        }
    }
}

enum Sub {
    Const(bool),
    Formula(Formula),
}

/// Substitutes the universal prefix, simplifying constants away.
fn substitute(f: &Formula, universals: &[bool]) -> Sub {
    match f {
        Formula::Var(v) => {
            let v = *v as usize;
            if v < universals.len() {
                Sub::Const(universals[v])
            } else {
                Sub::Formula(Formula::Var(v as u32))
            }
        }
        Formula::Not(g) => match substitute(g, universals) {
            Sub::Const(b) => Sub::Const(!b),
            Sub::Formula(g) => Sub::Formula(Formula::Not(Box::new(g))),
        },
        Formula::And(gs) => {
            let mut parts = Vec::new();
            for g in gs {
                match substitute(g, universals) {
                    Sub::Const(false) => return Sub::Const(false),
                    Sub::Const(true) => {}
                    Sub::Formula(g) => parts.push(g),
                }
            }
            if parts.is_empty() {
                Sub::Const(true)
            } else {
                Sub::Formula(Formula::And(parts))
            }
        }
        Formula::Or(gs) => {
            let mut parts = Vec::new();
            for g in gs {
                match substitute(g, universals) {
                    Sub::Const(true) => return Sub::Const(true),
                    Sub::Const(false) => {}
                    Sub::Formula(g) => parts.push(g),
                }
            }
            if parts.is_empty() {
                Sub::Const(false)
            } else {
                Sub::Formula(Formula::Or(parts))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tautology_forall_exists_equal() {
        // ∀p ∃q (p ↔ q): true.
        let iff = Formula::Or(vec![
            Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
            Formula::And(vec![
                Formula::Not(Box::new(Formula::Var(0))),
                Formula::Not(Box::new(Formula::Var(1))),
            ]),
        ]);
        let f = Pi2 {
            n_universal: 1,
            n_existential: 1,
            matrix: iff,
        };
        assert!(f.is_true());
        assert!(f.is_true_brute());
    }

    #[test]
    fn false_when_existential_cannot_track() {
        // ∀p ∃q (p ∧ q): false (p = false kills it).
        let f = Pi2 {
            n_universal: 1,
            n_existential: 1,
            matrix: Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
        };
        assert!(!f.is_true());
        assert!(!f.is_true_brute());
    }

    #[test]
    fn no_universals_reduces_to_sat() {
        let f = Pi2 {
            n_universal: 0,
            n_existential: 2,
            matrix: Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
        };
        assert!(f.is_true());
    }

    #[test]
    fn no_existentials_reduces_to_validity() {
        // ∀p (p ∨ ¬p): true. ∀p p: false.
        let f = Pi2 {
            n_universal: 1,
            n_existential: 0,
            matrix: Formula::Or(vec![
                Formula::Var(0),
                Formula::Not(Box::new(Formula::Var(0))),
            ]),
        };
        assert!(f.is_true());
        let g = Pi2 {
            n_universal: 1,
            n_existential: 0,
            matrix: Formula::Var(0),
        };
        assert!(!g.is_true());
    }

    #[test]
    fn dpll_backed_agrees_with_brute() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..100 {
            let f = Pi2::random(&mut rng, 3, 3);
            assert_eq!(f.is_true(), f.is_true_brute(), "{f:?}");
        }
    }
}
