//! Monotone 3-SAT instances (the complete problem used by Theorem 3.2).
//!
//! In monotone 3-SAT every clause is either all-positive or all-negative
//! [Garey & Johnson, LO2]. The Theorem 3.2 reduction builds one database
//! component per positive clause and one per negative clause, so the
//! instance type keeps the two clause families separate.

use crate::cnf::{lit, neg, Cnf};
use crate::dpll;
use rand::Rng;

/// A monotone 3-SAT instance over variables `0..n_vars`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mono3Sat {
    /// Number of propositional variables.
    pub n_vars: usize,
    /// All-positive clauses `l₁ ∨ l₂ ∨ l₃`.
    pub pos_clauses: Vec<[u32; 3]>,
    /// All-negative clauses `¬l₁ ∨ ¬l₂ ∨ ¬l₃`.
    pub neg_clauses: Vec<[u32; 3]>,
}

impl Mono3Sat {
    /// Converts to plain CNF.
    pub fn to_cnf(&self) -> Cnf {
        let mut clauses = Vec::with_capacity(self.pos_clauses.len() + self.neg_clauses.len());
        for c in &self.pos_clauses {
            clauses.push(c.iter().map(|&v| lit(v as usize)).collect());
        }
        for c in &self.neg_clauses {
            clauses.push(c.iter().map(|&v| neg(v as usize)).collect());
        }
        Cnf {
            n_vars: self.n_vars,
            clauses,
        }
    }

    /// Satisfiability via DPLL.
    pub fn satisfiable(&self) -> bool {
        dpll::satisfiable(&self.to_cnf())
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.to_cnf().eval(assignment)
    }

    /// Total clause count.
    pub fn n_clauses(&self) -> usize {
        self.pos_clauses.len() + self.neg_clauses.len()
    }

    /// Random instance with the given clause counts; all clauses use three
    /// distinct variables.
    pub fn random<R: Rng>(rng: &mut R, n_vars: usize, n_pos: usize, n_neg: usize) -> Mono3Sat {
        assert!(n_vars >= 3);
        let pick3 = |rng: &mut R| -> [u32; 3] {
            let mut vs = [0u32; 3];
            vs[0] = rng.gen_range(0..n_vars) as u32;
            loop {
                vs[1] = rng.gen_range(0..n_vars) as u32;
                if vs[1] != vs[0] {
                    break;
                }
            }
            loop {
                vs[2] = rng.gen_range(0..n_vars) as u32;
                if vs[2] != vs[0] && vs[2] != vs[1] {
                    break;
                }
            }
            vs
        };
        Mono3Sat {
            n_vars,
            pos_clauses: (0..n_pos).map(|_| pick3(rng)).collect(),
            neg_clauses: (0..n_neg).map(|_| pick3(rng)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pure_positive_always_satisfiable() {
        let inst = Mono3Sat {
            n_vars: 4,
            pos_clauses: vec![[0, 1, 2], [1, 2, 3]],
            neg_clauses: vec![],
        };
        assert!(inst.satisfiable());
        assert!(inst.eval(&[true; 4]));
    }

    #[test]
    fn all_triples_instance_is_unsat() {
        // Over 6 variables, taking every 3-subset both positively and
        // negatively demands ≤2 false vars and ≤2 true vars — impossible.
        let mut pos = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    pos.push([a, b, c]);
                }
            }
        }
        let inst = Mono3Sat {
            n_vars: 6,
            pos_clauses: pos.clone(),
            neg_clauses: pos,
        };
        assert!(!inst.satisfiable());
    }

    #[test]
    fn dpll_agrees_with_brute_randomized() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let inst = Mono3Sat::random(&mut rng, 6, 12, 12);
            assert_eq!(
                inst.satisfiable(),
                inst.to_cnf().satisfiable_brute(),
                "{inst:?}"
            );
        }
    }

    #[test]
    fn monotone_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        let inst = Mono3Sat::random(&mut rng, 5, 4, 3);
        assert_eq!(inst.n_clauses(), 7);
        let cnf = inst.to_cnf();
        for (i, c) in cnf.clauses.iter().enumerate() {
            if i < 4 {
                assert!(c.iter().all(|&l| l > 0));
            } else {
                assert!(c.iter().all(|&l| l < 0));
            }
        }
    }
}
