//! Propositional formulas.
//!
//! The Theorem 3.3 reduction builds its `Val(α, z⃗, x)` query by structural
//! recursion over an arbitrary propositional formula α, so formulas are
//! kept as a tree rather than eagerly clausified.

use rand::Rng;

/// A propositional formula over variables `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// A variable.
    Var(u32),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
}

impl Formula {
    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Formula::Var(v) => assignment[*v as usize],
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
        }
    }

    /// Largest variable index + 1 (0 for variable-free formulas).
    pub fn num_vars(&self) -> usize {
        match self {
            Formula::Var(v) => *v as usize + 1,
            Formula::Not(f) => f.num_vars(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::num_vars).max().unwrap_or(0)
            }
        }
    }

    /// Number of connectives + leaves (the size measure for reductions).
    pub fn size(&self) -> usize {
        match self {
            Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
        }
    }

    /// Satisfiability by brute force over all assignments of `n_vars`
    /// variables; the oracle for small instances.
    pub fn satisfiable_brute(&self, n_vars: usize) -> bool {
        assert!(n_vars < 26, "brute force capped at 25 variables");
        let mut assignment = vec![false; n_vars];
        for mask in 0..(1u64 << n_vars) {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = mask & (1 << i) != 0;
            }
            if self.eval(&assignment) {
                return true;
            }
        }
        false
    }

    /// A random formula of the given depth over `n_vars` variables.
    pub fn random<R: Rng>(rng: &mut R, n_vars: u32, depth: usize) -> Formula {
        assert!(n_vars > 0);
        if depth == 0 || rng.gen_ratio(1, 4) {
            return Formula::Var(rng.gen_range(0..n_vars));
        }
        match rng.gen_range(0..3) {
            0 => Formula::Not(Box::new(Formula::random(rng, n_vars, depth - 1))),
            1 => {
                let k = rng.gen_range(2..=3);
                Formula::And(
                    (0..k)
                        .map(|_| Formula::random(rng, n_vars, depth - 1))
                        .collect(),
                )
            }
            _ => {
                let k = rng.gen_range(2..=3);
                Formula::Or(
                    (0..k)
                        .map(|_| Formula::random(rng, n_vars, depth - 1))
                        .collect(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![
            Formula::And(vec![a.clone(), Formula::Not(Box::new(b.clone()))]),
            Formula::And(vec![Formula::Not(Box::new(a)), b]),
        ])
    }

    #[test]
    fn evaluation() {
        let f = xor(Formula::Var(0), Formula::Var(1));
        assert!(!f.eval(&[false, false]));
        assert!(f.eval(&[true, false]));
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, true]));
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn empty_connectives() {
        assert!(Formula::And(vec![]).eval(&[]));
        assert!(!Formula::Or(vec![]).eval(&[]));
    }

    #[test]
    fn brute_force_satisfiability() {
        let f = Formula::And(vec![
            Formula::Var(0),
            Formula::Not(Box::new(Formula::Var(0))),
        ]);
        assert!(!f.satisfiable_brute(1));
        let g = xor(Formula::Var(0), Formula::Var(1));
        assert!(g.satisfiable_brute(2));
    }

    #[test]
    fn random_formulas_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let f = Formula::random(&mut rng, 4, 3);
            assert!(f.num_vars() <= 4);
            assert!(f.size() >= 1);
            let _ = f.eval(&[true, false, true, false]);
        }
    }
}
