//! A DPLL satisfiability solver.
//!
//! Classic recursive DPLL with unit propagation and pure-literal
//! elimination; branching picks the variable occurring most often. Entirely
//! adequate for the instance sizes the reductions produce (tens of
//! variables), and cross-checked against brute force.

use crate::cnf::{var_of, Cnf};

/// Solves a CNF; returns a satisfying assignment of the first
/// `cnf.n_vars` variables, or `None` when unsatisfiable.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.n_vars];
    if dpll(&cnf.clauses, &mut assignment) {
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Convenience: satisfiability only.
pub fn satisfiable(cnf: &Cnf) -> bool {
    solve(cnf).is_some()
}

#[derive(PartialEq)]
enum Simplified {
    Sat,
    Conflict,
    Continue(Vec<Vec<i32>>),
}

fn value_of(l: i32, assignment: &[Option<bool>]) -> Option<bool> {
    assignment[var_of(l)].map(|b| if l > 0 { b } else { !b })
}

/// Removes satisfied clauses and false literals under the assignment.
fn simplify(clauses: &[Vec<i32>], assignment: &[Option<bool>]) -> Simplified {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        let mut reduced = Vec::with_capacity(c.len());
        let mut satisfied = false;
        for &l in c {
            match value_of(l, assignment) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                Some(false) => {}
                None => reduced.push(l),
            }
        }
        if satisfied {
            continue;
        }
        if reduced.is_empty() {
            return Simplified::Conflict;
        }
        out.push(reduced);
    }
    if out.is_empty() {
        Simplified::Sat
    } else {
        Simplified::Continue(out)
    }
}

fn dpll(clauses: &[Vec<i32>], assignment: &mut Vec<Option<bool>>) -> bool {
    let mut clauses = match simplify(clauses, assignment) {
        Simplified::Sat => return true,
        Simplified::Conflict => return false,
        Simplified::Continue(c) => c,
    };

    // Unit propagation to fixpoint.
    loop {
        let unit = clauses.iter().find(|c| c.len() == 1).map(|c| c[0]);
        let Some(l) = unit else { break };
        assignment[var_of(l)] = Some(l > 0);
        match simplify(&clauses, assignment) {
            Simplified::Sat => return true,
            Simplified::Conflict => {
                assignment[var_of(l)] = None;
                return false;
            }
            Simplified::Continue(c) => clauses = c,
        }
    }

    // Pure literal elimination.
    {
        let mut pos = vec![false; assignment.len()];
        let mut negv = vec![false; assignment.len()];
        for c in &clauses {
            for &l in c {
                if l > 0 {
                    pos[var_of(l)] = true;
                } else {
                    negv[var_of(l)] = true;
                }
            }
        }
        let mut changed = false;
        for v in 0..assignment.len() {
            if assignment[v].is_none() && pos[v] != negv[v] && (pos[v] || negv[v]) {
                assignment[v] = Some(pos[v]);
                changed = true;
            }
        }
        if changed {
            match simplify(&clauses, assignment) {
                Simplified::Sat => return true,
                Simplified::Conflict => unreachable!("pure literals cannot conflict"),
                Simplified::Continue(c) => clauses = c,
            }
        }
    }

    // Branch on the most frequent unassigned variable.
    let mut count = vec![0usize; assignment.len()];
    for c in &clauses {
        for &l in c {
            count[var_of(l)] += 1;
        }
    }
    let Some(v) = (0..assignment.len())
        .filter(|&v| assignment[v].is_none() && count[v] > 0)
        .max_by_key(|&v| count[v])
    else {
        return true; // no clauses mention unassigned variables
    };

    let undo: Vec<Option<bool>> = assignment.clone();
    for b in [true, false] {
        assignment[v] = Some(b);
        if dpll(&clauses, assignment) {
            return true;
        }
        assignment.clone_from(&undo);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{lit, neg};
    use crate::formula::Formula;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn trivial_cases() {
        assert!(satisfiable(&Cnf {
            n_vars: 0,
            clauses: vec![]
        }));
        assert!(!satisfiable(&Cnf {
            n_vars: 1,
            clauses: vec![vec![lit(0)], vec![neg(0)]]
        }));
        let m = solve(&Cnf {
            n_vars: 1,
            clauses: vec![vec![lit(0)]],
        })
        .unwrap();
        assert!(m[0]);
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0 ∧ p1 ∧ ¬(p0 ∧ p1).
        let cnf = Cnf {
            n_vars: 2,
            clauses: vec![vec![lit(0)], vec![lit(1)], vec![neg(0), neg(1)]],
        };
        assert!(!satisfiable(&cnf));
    }

    #[test]
    fn agrees_with_brute_force_on_random_3cnf() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let n = rng.gen_range(3..8);
            let m = rng.gen_range(1..20);
            let cnf = Cnf::random_3cnf(&mut rng, n, m);
            assert_eq!(satisfiable(&cnf), cnf.satisfiable_brute(), "{cnf:?}");
        }
    }

    #[test]
    fn models_returned_are_genuine() {
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..100 {
            let cnf = Cnf::random_3cnf(&mut rng, 8, 20);
            if let Some(m) = solve(&cnf) {
                assert!(cnf.eval(&m), "returned model does not satisfy: {cnf:?}");
            }
        }
    }

    #[test]
    fn tseitin_pipeline_agrees_with_formula_brute() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let f = Formula::random(&mut rng, 5, 3);
            let ts = Cnf::tseitin(&f, 5);
            assert_eq!(satisfiable(&ts), f.satisfiable_brute(5), "{f:?}");
        }
    }
}
