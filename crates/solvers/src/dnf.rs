//! DNF formulas and tautology checking (the complete problem for co-NP
//! used by Theorem 4.6).
//!
//! A DNF formula is a disjunction of *terms* (conjunctions of literals).
//! Tautology is decided by refuting the complement with DPLL (negating a
//! DNF yields a CNF clause per term), and by brute force for
//! cross-checking.

use crate::cnf::{lit, neg, var_of, Cnf};
use crate::dpll;
use rand::Rng;

/// A DNF formula. Terms use the same `±(v+1)` literal encoding as
/// [`crate::cnf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnf {
    /// Number of variables.
    pub n_vars: usize,
    /// The disjuncts (terms); each a conjunction of literals.
    pub terms: Vec<Vec<i32>>,
}

impl Dnf {
    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.terms.iter().any(|t| {
            t.iter().all(|&l| {
                let v = var_of(l);
                if l > 0 {
                    assignment[v]
                } else {
                    !assignment[v]
                }
            })
        })
    }

    /// Tautology via DPLL on the complement: ¬(⋁ tᵢ) = ⋀ ¬tᵢ, each `¬tᵢ` a
    /// clause of negated literals. The DNF is a tautology iff the
    /// complement is unsatisfiable.
    pub fn is_tautology(&self) -> bool {
        let clauses: Vec<Vec<i32>> = self
            .terms
            .iter()
            .map(|t| t.iter().map(|&l| -l).collect())
            .collect();
        !dpll::satisfiable(&Cnf {
            n_vars: self.n_vars,
            clauses,
        })
    }

    /// Brute-force tautology check (oracle).
    pub fn is_tautology_brute(&self) -> bool {
        assert!(self.n_vars < 26, "brute force capped at 25 variables");
        let mut assignment = vec![false; self.n_vars];
        for mask in 0..(1u64 << self.n_vars) {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = mask & (1 << i) != 0;
            }
            if !self.eval(&assignment) {
                return false;
            }
        }
        true
    }

    /// A random DNF with terms of 1–3 distinct literals. With `taut_bias`,
    /// half of the instances are seeded with a complementary singleton pair
    /// (`x`, `¬x`), guaranteeing a tautology — so reduction tests exercise
    /// both outcomes.
    pub fn random<R: Rng>(rng: &mut R, n_vars: usize, n_terms: usize, taut_bias: bool) -> Dnf {
        let mut terms = Vec::with_capacity(n_terms);
        if taut_bias && n_terms >= 2 && rng.gen_bool(0.5) {
            let v = rng.gen_range(0..n_vars);
            terms.push(vec![lit(v)]);
            terms.push(vec![neg(v)]);
        }
        while terms.len() < n_terms {
            let k = rng.gen_range(1..=3usize.min(n_vars));
            let mut vars: Vec<usize> = Vec::with_capacity(k);
            while vars.len() < k {
                let v = rng.gen_range(0..n_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            terms.push(
                vars.iter()
                    .map(|&v| if rng.gen() { lit(v) } else { neg(v) })
                    .collect(),
            );
        }
        Dnf { n_vars, terms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn excluded_middle_is_tautology() {
        let d = Dnf {
            n_vars: 1,
            terms: vec![vec![lit(0)], vec![neg(0)]],
        };
        assert!(d.is_tautology());
        assert!(d.is_tautology_brute());
    }

    #[test]
    fn single_term_is_not() {
        let d = Dnf {
            n_vars: 2,
            terms: vec![vec![lit(0), lit(1)]],
        };
        assert!(!d.is_tautology());
        assert!(!d.is_tautology_brute());
    }

    #[test]
    fn all_sign_patterns_of_two_vars() {
        // x∧y ∨ x∧¬y ∨ ¬x∧y ∨ ¬x∧¬y covers everything.
        let d = Dnf {
            n_vars: 2,
            terms: vec![
                vec![lit(0), lit(1)],
                vec![lit(0), neg(1)],
                vec![neg(0), lit(1)],
                vec![neg(0), neg(1)],
            ],
        };
        assert!(d.is_tautology());
        // dropping one pattern breaks it
        let d2 = Dnf {
            n_vars: 2,
            terms: d.terms[..3].to_vec(),
        };
        assert!(!d2.is_tautology());
    }

    #[test]
    fn dpll_agrees_with_brute_randomized() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut tautologies = 0;
        for _ in 0..300 {
            let d = Dnf::random(&mut rng, 4, 6, true);
            let fast = d.is_tautology();
            assert_eq!(fast, d.is_tautology_brute(), "{d:?}");
            tautologies += usize::from(fast);
        }
        assert!(
            tautologies > 10,
            "generator should produce some tautologies"
        );
        assert!(
            tautologies < 290,
            "generator should produce some non-tautologies"
        );
    }

    #[test]
    fn empty_dnf_is_not_tautology() {
        let d = Dnf {
            n_vars: 1,
            terms: vec![],
        };
        assert!(!d.is_tautology());
    }
}
