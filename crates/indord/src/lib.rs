//! # indord — querying indefinite data about linearly ordered domains
//!
//! A Rust implementation of the theory and algorithms of:
//!
//! > Ron van der Meyden, *"The Complexity of Querying Indefinite Data
//! > about Linearly Ordered Domains"*, PODS 1992; JCSS 54:113–135, 1997.
//!
//! An **indefinite order database** stores ground facts plus partial-order
//! constraints `u < v`, `u <= v` over unknown points of a linearly ordered
//! domain (time, positions, depths). Query answering is *certain-answer*:
//! `D |= Φ` holds when Φ is true in **every** linear order compatible with
//! the constraints.
//!
//! ```
//! use indord::prelude::*;
//!
//! let mut voc = Vocabulary::new();
//! // The embassy investigation of the paper's Example 1.1, in miniature:
//! // the guard saw A enter then leave before B entered; agent A claims
//! // B arrived while A was still inside.
//! let db = parse_database(&mut voc, "
//!     Enter(z1, A); Leave(z2, A); Enter(z3, B);
//!     z1 < z2 < z3;
//! ").unwrap();
//! let q = parse_query(&mut voc, "
//!     exists s t x. Enter(s, x) & s < t & Leave(t, x)
//! ").unwrap();
//! let engine = Engine::new(&voc);
//! assert!(engine.entails(&db, &q).unwrap().holds());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | `core` | databases, queries, order dags, models, flexi-words, parser |
//! | `entail` | all entailment engines (`SEQ`, paths, Thm 4.7, Thm 5.3, naive) |
//! | `semantics` | `Fin`/`Z`/`Q` order types and reductions (§2) |
//! | `wqo` | well-quasi-orders, compiled queries (§6) |
//! | `solvers` | SAT/QBF/DNF/colouring reference deciders |
//! | `reductions` | the paper's hardness constructions (§3, §4, §7) |
//! | `relalg` | conjunctive-query containment with inequalities (Klug) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use indord_core as core;
pub use indord_entail as entail;
pub use indord_reductions as reductions;
pub use indord_relalg as relalg;
pub use indord_semantics as semantics;
pub use indord_solvers as solvers;
pub use indord_wqo as wqo;

/// One-stop imports for applications.
pub mod prelude {
    pub use indord_core::parse::{parse_query_expr, parse_query_with_db};
    pub use indord_core::prelude::*;
    pub use indord_core::session::Session;
    pub use indord_entail::engine::Verdict;
    pub use indord_entail::{Engine, MonadicVerdict, Plan, PreparedQuery, Strategy};
    pub use indord_semantics::{with_integrity_constraint, OrderType};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_round_trip() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        assert!(Engine::new(&voc).entails(&db, &q).unwrap().holds());
    }

    #[test]
    fn facade_prepared_round_trip() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let engine = Engine::new(&voc);
        let session = Session::new(db);
        let prepared: PreparedQuery = engine.prepare(&q).unwrap();
        assert_eq!(prepared.plan(), Plan::Seq);
        assert!(engine
            .entails_prepared(&session, &prepared)
            .unwrap()
            .holds());
    }
}
