//! # indord-relalg
//!
//! A minimal relational-database substrate and **containment of
//! conjunctive queries with inequalities** — the problem of Klug
//! (JACM 35(1), 1988) that the paper connects to indefinite order
//! databases through Proposition 2.10.
//!
//! A relational database with order is a finite two-sorted structure whose
//! order sort is interpreted in a linear order (here `i64`). `Q₁` is
//! **O-contained** in `Q₂` when `Ans(Q₁,M) ⊆ Ans(Q₂,M)` for every database
//! `M` whose order is of type `O`. Proposition 2.10 makes this
//! *equivalent* (both directions, PTIME) to entailment in indefinite order
//! databases:
//!
//! * containment → entailment: freeze `Q₁`'s body into a database (its
//!   variables become fresh constants) and ask whether it entails `Q₂`'s
//!   body with `Q₂`'s head variables bound to the frozen head constants;
//! * entailment → containment: `D |= Φ` iff
//!   `[() : ⋀D] ⊆ [() : Φ]`.
//!
//! Combining with Theorem 3.3 settles Klug's open problem: containment of
//! conjunctive queries with inequalities is Π₂ᵖ-complete (see
//! `examples/containment.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use indord_core::atom::{OrderAtom, OrderRel, ProperAtom, Term};
use indord_core::database::Database;
use indord_core::error::{CoreError, Result};
use indord_core::query::{ConjunctiveQuery, DnfQuery, QArg};
use indord_core::sym::{ObjSym, PredSym, Sort, Vocabulary};
use indord_semantics::OrderType;
use std::collections::HashMap;

/// A value of a relational tuple: an object constant or an order-sort
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelVal {
    /// Object-sorted value.
    Obj(ObjSym),
    /// Order-sorted value (interpreted in the `i64` line).
    Num(i64),
}

/// A ground relational fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelFact {
    /// The relation.
    pub pred: PredSym,
    /// The tuple.
    pub args: Vec<RelVal>,
}

/// A finite relational instance.
#[derive(Debug, Clone, Default)]
pub struct RelInstance {
    /// The facts.
    pub facts: Vec<RelFact>,
}

impl RelInstance {
    /// Adds a fact, validating sorts against the vocabulary.
    pub fn insert(&mut self, voc: &Vocabulary, pred: PredSym, args: Vec<RelVal>) -> Result<()> {
        let sig = voc.signature(pred);
        if sig.arity() != args.len() {
            return Err(CoreError::ArityMismatch {
                pred: voc.pred_name(pred).to_string(),
                expected: sig.arity(),
                found: args.len(),
            });
        }
        for (i, (v, &s)) in args.iter().zip(&sig.arg_sorts).enumerate() {
            let ok = matches!(
                (v, s),
                (RelVal::Obj(_), Sort::Object) | (RelVal::Num(_), Sort::Order)
            );
            if !ok {
                return Err(CoreError::SortMismatch {
                    pred: voc.pred_name(pred).to_string(),
                    position: i,
                    expected: s,
                });
            }
        }
        self.facts.push(RelFact { pred, args });
        Ok(())
    }
}

/// A relational conjunctive query with inequalities
/// `[x⃗ : ∃y⃗ φ(x⃗, y⃗)]`: a body (over dense variables) plus the head
/// projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelQuery {
    /// Head: object-variable indices of the body, in output order.
    pub head_obj: Vec<u32>,
    /// Head: order-variable indices of the body, in output order.
    pub head_ord: Vec<u32>,
    /// The body.
    pub body: ConjunctiveQuery,
}

impl RelQuery {
    /// A boolean query (empty head).
    pub fn boolean(body: ConjunctiveQuery) -> RelQuery {
        RelQuery {
            head_obj: Vec::new(),
            head_ord: Vec::new(),
            body,
        }
    }

    /// Evaluates the answer set `Ans(Q, M)` by backtracking join.
    pub fn answers(&self, inst: &RelInstance) -> Vec<Vec<RelVal>> {
        let mut by_pred: HashMap<PredSym, Vec<&RelFact>> = HashMap::new();
        for f in &inst.facts {
            by_pred.entry(f.pred).or_default().push(f);
        }
        let mut obj = vec![None; self.body.n_obj_vars];
        let mut ord = vec![None; self.body.n_ord_vars];
        let mut out = Vec::new();
        self.join(&by_pred, 0, &mut obj, &mut ord, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn order_ok(&self, ord: &[Option<i64>]) -> bool {
        self.body
            .order
            .iter()
            .all(|&(l, rel, r)| match (ord[l as usize], ord[r as usize]) {
                (Some(a), Some(b)) => match rel {
                    OrderRel::Lt => a < b,
                    OrderRel::Le => a <= b,
                    OrderRel::Ne => a != b,
                },
                _ => true,
            })
    }

    fn join(
        &self,
        by_pred: &HashMap<PredSym, Vec<&RelFact>>,
        atom_idx: usize,
        obj: &mut Vec<Option<ObjSym>>,
        ord: &mut Vec<Option<i64>>,
        out: &mut Vec<Vec<RelVal>>,
    ) {
        if atom_idx == self.body.proper.len() {
            if !self.order_ok(ord) {
                return;
            }
            // Head variables must be bound (safe queries): unbound head
            // variables make the query unsafe; we skip such assignments.
            let mut tuple = Vec::with_capacity(self.head_obj.len() + self.head_ord.len());
            for &i in &self.head_obj {
                match obj[i as usize] {
                    Some(o) => tuple.push(RelVal::Obj(o)),
                    None => return,
                }
            }
            for &i in &self.head_ord {
                match ord[i as usize] {
                    Some(n) => tuple.push(RelVal::Num(n)),
                    None => return,
                }
            }
            out.push(tuple);
            return;
        }
        let atom = &self.body.proper[atom_idx];
        let Some(facts) = by_pred.get(&atom.pred) else {
            return;
        };
        'facts: for f in facts {
            let mut bound_obj = Vec::new();
            let mut bound_ord = Vec::new();
            for (qa, v) in atom.args.iter().zip(&f.args) {
                let ok = match (qa, v) {
                    (QArg::Obj(i), RelVal::Obj(o)) => {
                        let i = *i as usize;
                        match obj[i] {
                            Some(prev) => prev == *o,
                            None => {
                                obj[i] = Some(*o);
                                bound_obj.push(i);
                                true
                            }
                        }
                    }
                    (QArg::Ord(i), RelVal::Num(n)) => {
                        let i = *i as usize;
                        match ord[i] {
                            Some(prev) => prev == *n,
                            None => {
                                ord[i] = Some(*n);
                                bound_ord.push(i);
                                true
                            }
                        }
                    }
                    _ => false,
                };
                if !ok {
                    for &i in &bound_obj {
                        obj[i] = None;
                    }
                    for &i in &bound_ord {
                        ord[i] = None;
                    }
                    continue 'facts;
                }
            }
            if self.order_ok(ord) {
                self.join(by_pred, atom_idx + 1, obj, ord, out);
            }
            for &i in &bound_obj {
                obj[i] = None;
            }
            for &i in &bound_ord {
                ord[i] = None;
            }
        }
    }
}

/// Decides `Q₁ ⊆_O Q₂` via Proposition 2.10: freeze `Q₁`'s body into an
/// indefinite order database and test entailment of `Q₂`'s body with heads
/// identified.
///
/// Requires matching head signatures. `!=` atoms are supported in both
/// queries (entailment handles them through the §7 machinery).
pub fn contained_in(
    voc: &mut Vocabulary,
    q1: &RelQuery,
    q2: &RelQuery,
    order_type: OrderType,
) -> Result<bool> {
    if q1.head_obj.len() != q2.head_obj.len() || q1.head_ord.len() != q2.head_ord.len() {
        return Err(CoreError::Parse {
            span: indord_core::error::Span::NONE,
            message: "containment requires equal head signatures".to_string(),
        });
    }
    // Freeze Q1's variables into fresh constants.
    let objs: Vec<ObjSym> = (0..q1.body.n_obj_vars)
        .map(|i| {
            let name = format!("frz_o{i}");
            let _ = name;
            voc.fresh_obj_for_freeze(i)
        })
        .collect();
    let ords: Vec<_> = (0..q1.body.n_ord_vars)
        .map(|i| voc.fresh_ord(&format!("frz{i}_")))
        .collect();
    let mut db = Database::new();
    for a in &q1.body.proper {
        let args = a
            .args
            .iter()
            .map(|qa| match *qa {
                QArg::Obj(i) => Term::Obj(objs[i as usize]),
                QArg::Ord(i) => Term::Ord(ords[i as usize]),
            })
            .collect();
        db.push_proper(ProperAtom { pred: a.pred, args });
    }
    for &(l, rel, r) in &q1.body.order {
        db.order_push_rel(rel, ords[l as usize], ords[r as usize]);
    }

    // Q2's body with head variables replaced by the frozen constants of
    // Q1's head. Guard predicates pin the constants (the §2 trick).
    let mut head_obj_guard: HashMap<u32, PredSym> = HashMap::new();
    let mut head_ord_guard: HashMap<u32, PredSym> = HashMap::new();
    for (k, &i2) in q2.head_obj.iter().enumerate() {
        let g = voc.fresh_pred(&format!("hguard_o{k}_"), &[Sort::Object]);
        head_obj_guard.insert(i2, g);
        db.push_proper(ProperAtom {
            pred: g,
            args: vec![Term::Obj(objs[q1.head_obj[k] as usize])],
        });
    }
    for (k, &i2) in q2.head_ord.iter().enumerate() {
        let g = voc.fresh_pred(&format!("hguard_t{k}_"), &[Sort::Order]);
        head_ord_guard.insert(i2, g);
        db.push_proper(ProperAtom {
            pred: g,
            args: vec![Term::Ord(ords[q1.head_ord[k] as usize])],
        });
    }
    let mut body2 = q2.body.clone();
    for (&var, &g) in &head_obj_guard {
        body2.proper.push(indord_core::query::QueryAtom {
            pred: g,
            args: vec![QArg::Obj(var)],
        });
    }
    for (&var, &g) in &head_ord_guard {
        body2.proper.push(indord_core::query::QueryAtom {
            pred: g,
            args: vec![QArg::Ord(var)],
        });
    }
    let query = DnfQuery::conjunctive(body2);
    Ok(indord_semantics::entails(voc, &db, &query, order_type)?.holds())
}

/// Reduction in the other direction (Prop. 2.10): an entailment instance
/// `(D, Φ)` becomes the containment `[() : ⋀D] ⊆ [() : Φ]` of boolean
/// queries. Returns the two queries (per disjunct of `Φ` when disjunctive:
/// callers test containment in the union — for conjunctive `Φ` a single
/// pair).
pub fn entailment_as_containment(
    voc: &mut Vocabulary,
    db: &Database,
    query: &ConjunctiveQuery,
) -> Result<(RelQuery, RelQuery)> {
    // Q1's body: the database atoms with constants turned into variables.
    let mut obj_index: HashMap<ObjSym, u32> = HashMap::new();
    let mut ord_index: HashMap<indord_core::sym::OrdSym, u32> = HashMap::new();
    let mut proper = Vec::new();
    for a in db.proper_atoms() {
        let args = a
            .args
            .iter()
            .map(|t| match *t {
                Term::Obj(o) => {
                    let n = obj_index.len() as u32;
                    QArg::Obj(*obj_index.entry(o).or_insert(n))
                }
                Term::Ord(u) => {
                    let n = ord_index.len() as u32;
                    QArg::Ord(*ord_index.entry(u).or_insert(n))
                }
            })
            .collect();
        proper.push(indord_core::query::QueryAtom { pred: a.pred, args });
    }
    let mut order = Vec::new();
    for &OrderAtom { lhs, rel, rhs } in db.order_atoms() {
        let nl = ord_index.len() as u32;
        let l = *ord_index.entry(lhs).or_insert(nl);
        let nr = ord_index.len() as u32;
        let r = *ord_index.entry(rhs).or_insert(nr);
        order.push((l, rel, r));
    }
    let body1 = ConjunctiveQuery {
        n_obj_vars: obj_index.len(),
        n_ord_vars: ord_index.len(),
        proper,
        order,
    };
    let _ = voc;
    Ok((RelQuery::boolean(body1), RelQuery::boolean(query.clone())))
}

/// Conjunctive-query **minimization** via containment — the optimization
/// use-case Klug (and §2 of the paper) give for the containment problem:
/// repeatedly drop a proper atom whose removal leaves the query equivalent
/// (mutual containment over the chosen order type), until no atom is
/// redundant. The result is an equivalent query with a minimal atom set
/// among those reachable by single-atom deletions.
///
/// Order atoms are also pruned when they are implied by the remainder
/// (the *fullness* closure in reverse).
pub fn minimize(voc: &mut Vocabulary, q: &RelQuery, order_type: OrderType) -> Result<RelQuery> {
    let mut current = q.clone();
    // 1. Drop redundant proper atoms.
    loop {
        let mut dropped = false;
        for i in 0..current.body.proper.len() {
            let mut candidate = current.clone();
            candidate.body.proper.remove(i);
            if heads_still_bound(&candidate)
                && contained_in(voc, &candidate, &current, order_type)?
                && contained_in(voc, &current, &candidate, order_type)?
            {
                current = candidate;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }
    // 2. Drop order atoms implied by the rest.
    loop {
        let mut dropped = false;
        for i in 0..current.body.order.len() {
            let mut candidate = current.clone();
            candidate.body.order.remove(i);
            if contained_in(voc, &candidate, &current, order_type)? {
                // candidate ⊆ current always needs checking; the converse
                // holds syntactically (fewer conjuncts = weaker).
                current = candidate;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }
    Ok(current)
}

/// A head variable must keep at least one binding occurrence in the body;
/// otherwise the projection is unsafe.
fn heads_still_bound(q: &RelQuery) -> bool {
    let mut obj_bound = vec![false; q.body.n_obj_vars];
    let mut ord_bound = vec![false; q.body.n_ord_vars];
    for a in &q.body.proper {
        for arg in &a.args {
            match *arg {
                QArg::Obj(i) => obj_bound[i as usize] = true,
                QArg::Ord(i) => ord_bound[i as usize] = true,
            }
        }
    }
    q.head_obj.iter().all(|&i| obj_bound[i as usize])
        && q.head_ord.iter().all(|&i| ord_bound[i as usize])
}

/// Searches for a containment counterexample among given instances: an
/// instance where some `Q₁`-answer is not a `Q₂`-answer. Used as an
/// independent soundness check on [`contained_in`].
pub fn find_counterexample<'a>(
    q1: &RelQuery,
    q2: &RelQuery,
    instances: &'a [RelInstance],
) -> Option<(&'a RelInstance, Vec<RelVal>)> {
    for inst in instances {
        let a2 = q2.answers(inst);
        for t in q1.answers(inst) {
            if !a2.contains(&t) {
                return Some((inst, t));
            }
        }
    }
    None
}

/// Helper trait additions for the vocabulary (freeze-constant naming).
trait FreezeExt {
    fn fresh_obj_for_freeze(&mut self, i: usize) -> ObjSym;
}

impl FreezeExt for Vocabulary {
    fn fresh_obj_for_freeze(&mut self, i: usize) -> ObjSym {
        // fresh per call: include a counter via fresh_pred-like loop
        let mut k = 0usize;
        loop {
            let name = format!("$frz_o{i}_{k}");
            if self.find_obj(&name).is_none() {
                return self.obj(&name);
            }
            k += 1;
        }
    }
}

/// Database extension used by the freezing construction.
trait OrderPushExt {
    fn order_push_rel(
        &mut self,
        rel: OrderRel,
        l: indord_core::sym::OrdSym,
        r: indord_core::sym::OrdSym,
    );
}

impl OrderPushExt for Database {
    fn order_push_rel(
        &mut self,
        rel: OrderRel,
        l: indord_core::sym::OrdSym,
        r: indord_core::sym::OrdSym,
    ) {
        match rel {
            OrderRel::Lt => self.assert_lt(l, r),
            OrderRel::Le => self.assert_le(l, r),
            OrderRel::Ne => self.assert_ne(l, r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::parse::parse_query;

    fn setup() -> Vocabulary {
        let mut voc = Vocabulary::new();
        voc.pred("R", &[Sort::Object, Sort::Order]).unwrap();
        voc.pred("S", &[Sort::Order, Sort::Order]).unwrap();
        voc
    }

    fn cq(voc: &mut Vocabulary, text: &str) -> ConjunctiveQuery {
        parse_query(voc, text).unwrap().disjuncts[0].clone()
    }

    #[test]
    fn evaluation_with_inequalities() {
        let mut voc = setup();
        let r = voc.find_pred("R").unwrap();
        let a = voc.obj("a");
        let b = voc.obj("b");
        let mut inst = RelInstance::default();
        inst.insert(&voc, r, vec![RelVal::Obj(a), RelVal::Num(1)])
            .unwrap();
        inst.insert(&voc, r, vec![RelVal::Obj(b), RelVal::Num(5)])
            .unwrap();
        // boolean: ∃x s t y. R(x,s) & s < t & R(y,t)
        let body = cq(&mut voc, "exists x s t y. R(x, s) & s < t & R(y, t)");
        let q = RelQuery::boolean(body);
        assert_eq!(q.answers(&inst).len(), 1); // the null tuple
                                               // with head: [x : ∃s. R(x,s) & exists t y. R(y,t) & s < t]
        let body = cq(&mut voc, "exists x s t y. R(x, s) & s < t & R(y, t)");
        let q = RelQuery {
            head_obj: vec![0],
            head_ord: vec![],
            body,
        };
        let ans = q.answers(&inst);
        assert_eq!(ans, vec![vec![RelVal::Obj(a)]]);
    }

    #[test]
    fn trivial_containments() {
        let mut voc = setup();
        // Q ⊆ Q for a couple of bodies.
        for text in [
            "exists x s. R(x, s)",
            "exists x s t. R(x, s) & s < t",
            "exists s t. S(s, t) & s <= t",
        ] {
            let b = cq(&mut voc, text);
            let q = RelQuery::boolean(b);
            assert!(
                contained_in(&mut voc, &q, &q, OrderType::Fin).unwrap(),
                "{text}"
            );
        }
    }

    #[test]
    fn strict_containment_direction() {
        let mut voc = setup();
        // Q1 = ∃x s t. R(x,s) ∧ s<t ∧ S(s,t) is contained in
        // Q2 = ∃x s t. R(x,s) ∧ s<=t ∧ S(s,t) but not conversely.
        let q1 = RelQuery::boolean(cq(&mut voc, "exists x s t. R(x, s) & s < t & S(s, t)"));
        let q2 = RelQuery::boolean(cq(&mut voc, "exists x s t. R(x, s) & s <= t & S(s, t)"));
        assert!(contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
        assert!(!contained_in(&mut voc, &q2, &q1, OrderType::Fin).unwrap());
    }

    #[test]
    fn containment_disagrees_with_counterexample_search_never() {
        // Soundness: when contained_in says yes, no sampled instance may
        // be a counterexample; when it says no, the frozen database itself
        // is one (checked implicitly by the reduction's correctness).
        let mut voc = setup();
        let r = voc.find_pred("R").unwrap();
        let s = voc.find_pred("S").unwrap();
        let a = voc.obj("a");
        let q1 = RelQuery::boolean(cq(&mut voc, "exists x s t. R(x, s) & S(s, t) & s < t"));
        let q2 = RelQuery::boolean(cq(&mut voc, "exists x s t. R(x, s) & S(s, t) & s <= t"));
        assert!(contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
        let mut insts = Vec::new();
        for (n1, n2) in [(1i64, 2i64), (2, 1), (1, 1), (0, 5)] {
            let mut inst = RelInstance::default();
            inst.insert(&voc, r, vec![RelVal::Obj(a), RelVal::Num(n1)])
                .unwrap();
            inst.insert(&voc, s, vec![RelVal::Num(n1), RelVal::Num(n2)])
                .unwrap();
            insts.push(inst);
        }
        assert!(find_counterexample(&q1, &q2, &insts).is_none());
        // The reverse direction must admit a counterexample among samples
        // (an instance with s = t).
        assert!(find_counterexample(&q2, &q1, &insts).is_some());
    }

    #[test]
    fn head_variables_constrain_containment() {
        let mut voc = setup();
        // [x : R(x,s)] vs [x : R(x,s) & s < t & S(s,t)]: the latter is
        // contained in the former, not conversely.
        let b1 = cq(&mut voc, "exists x s. R(x, s)");
        let b2 = cq(&mut voc, "exists x s t. R(x, s) & s < t & S(s, t)");
        let q1 = RelQuery {
            head_obj: vec![0],
            head_ord: vec![],
            body: b1,
        };
        let q2 = RelQuery {
            head_obj: vec![0],
            head_ord: vec![],
            body: b2,
        };
        assert!(contained_in(&mut voc, &q2, &q1, OrderType::Fin).unwrap());
        assert!(!contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
    }

    #[test]
    fn entailment_round_trips_through_containment() {
        let mut voc = Vocabulary::new();
        let db = indord_core::parse::parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let phi = cq(&mut voc, "exists s t. P(s) & s < t & Q(t)");
        let (q1, q2) = entailment_as_containment(&mut voc, &db, &phi).unwrap();
        assert!(contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
        let phi_bad = cq(&mut voc, "exists s t. Q(s) & s < t & P(t)");
        let (q1, q2) = entailment_as_containment(&mut voc, &db, &phi_bad).unwrap();
        assert!(!contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
    }

    #[test]
    fn minimization_removes_duplicate_atoms() {
        let mut voc = setup();
        // R(x,s) ∧ R(y,t) ∧ s <= t ∧ s <= t … with a genuinely redundant
        // second R-atom: ∃x s y t. R(x,s) ∧ R(y,t) ∧ s <= s — the atom
        // R(y,t) is redundant for the boolean query (map y,t onto x,s).
        let q = RelQuery::boolean(cq(&mut voc, "exists x s y t. R(x, s) & R(y, t) & s <= s"));
        let m = minimize(&mut voc, &q, OrderType::Fin).unwrap();
        assert_eq!(m.body.proper.len(), 1, "one R-atom suffices: {m:?}");
        // Equivalence is preserved.
        assert!(contained_in(&mut voc, &q, &m, OrderType::Fin).unwrap());
        assert!(contained_in(&mut voc, &m, &q, OrderType::Fin).unwrap());
    }

    #[test]
    fn minimization_keeps_necessary_atoms() {
        let mut voc = setup();
        // R(x,s) ∧ s < t ∧ S(s,t): nothing can go — the S-atom and the
        // order atom genuinely constrain.
        let q = RelQuery::boolean(cq(&mut voc, "exists x s t. R(x, s) & s < t & S(s, t)"));
        let m = minimize(&mut voc, &q, OrderType::Fin).unwrap();
        assert_eq!(m.body.proper.len(), 2);
        assert_eq!(m.body.order.len(), 1);
    }

    #[test]
    fn minimization_prunes_implied_order_atoms() {
        let mut voc = setup();
        // s < t is implied by S(s,t) ∧ s < w ∧ w < t? No — implied order
        // atoms come from transitivity: s < w ∧ w < t ⟹ s < t… but w, t
        // are bound through S-atoms to keep the query safe.
        let q = RelQuery::boolean(cq(
            &mut voc,
            "exists s w t. S(s, w) & S(w, t) & s < w & w < t & s < t",
        ));
        let m = minimize(&mut voc, &q, OrderType::Fin).unwrap();
        assert!(
            m.body.order.len() < 3,
            "the transitive s < t must be pruned: {m:?}"
        );
        assert!(contained_in(&mut voc, &m, &q, OrderType::Fin).unwrap());
        assert!(contained_in(&mut voc, &q, &m, OrderType::Fin).unwrap());
    }

    #[test]
    fn minimization_respects_heads() {
        let mut voc = setup();
        // [x : R(x,s) ∧ R(y,t)]: the R(y,t) atom is redundant but R(x,s)
        // binds the head and must stay.
        let b = cq(&mut voc, "exists x s y t. R(x, s) & R(y, t)");
        let q = RelQuery {
            head_obj: vec![0],
            head_ord: vec![],
            body: b,
        };
        let m = minimize(&mut voc, &q, OrderType::Fin).unwrap();
        assert_eq!(m.body.proper.len(), 1);
        assert_eq!(m.head_obj, vec![0]);
    }

    #[test]
    fn containment_over_q_semantics_differs_on_density() {
        let mut voc = setup();
        // Q1 = ∃s t. S(s,t) ∧ s<t ; Q2 = ∃s w t. S(s,t) ∧ s<w ∧ w<t.
        // Over Q (dense), Q1 ⊆ Q2 (a midpoint always exists); over Fin/Z
        // it fails (adjacent points).
        let q1 = RelQuery::boolean(cq(&mut voc, "exists s t. S(s, t) & s < t"));
        let q2 = RelQuery::boolean(cq(&mut voc, "exists s w t. S(s, t) & s < w & w < t"));
        assert!(contained_in(&mut voc, &q1, &q2, OrderType::Q).unwrap());
        assert!(!contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap());
        assert!(!contained_in(&mut voc, &q1, &q2, OrderType::Z).unwrap());
    }
}
