//! # indord-semantics
//!
//! The three order-type semantics of §2 of the paper and the reductions
//! between them.
//!
//! A model interprets `<` over a linear order; restricting the order type
//! gives three consequence relations:
//!
//! * `|=_Fin` — all **finite** linear orders;
//! * `|=_Z`   — orders isomorphic to the **integers**;
//! * `|=_Q`   — dense orders isomorphic to the **rationals**.
//!
//! Proposition 2.1 gives `|=_Fin ⊆ |=_Z ⊆ |=_Q`, with strict inclusions
//! witnessed by non-*tight* queries (order variables occurring in no proper
//! atom). For tight queries the three coincide (Prop. 2.2). The paper
//! reduces both `|=_Z` and `|=_Q` to `|=_Fin`:
//!
//! * **Prop. 2.3**: `D |=_Z Φ` iff `D' |=_Fin Φ` where `D'` adds sentinel
//!   chains `l₁<…<lₙ` below and `r₁<…<rₙ` above every order constant of
//!   `D` (`n` = number of variables of `Φ`);
//! * **Lemma 2.5 / Cor. 2.6**: `D |=_Q Φ` iff `D |=_Fin Φ'` where `Φ'`
//!   deletes from each *full* disjunct its order-only variables.
//!
//! [`entails`] exposes all three relations through one entry point, and
//! is decided by the `indord-entail` engines after reduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use indord_core::database::Database;
use indord_core::error::Result;
use indord_core::query::{ConjunctiveQuery, DnfQuery};
use indord_core::sym::Vocabulary;
use indord_entail::engine::Verdict;
use indord_entail::{Engine, Strategy};

/// The order type over which `<` is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderType {
    /// Finite linear orders.
    #[default]
    Fin,
    /// Orders isomorphic to the integers.
    Z,
    /// Dense orders isomorphic to the rationals.
    Q,
}

/// Decides `D |=_O Φ` by reducing to the finite semantics and running the
/// auto-strategy engine.
pub fn entails(
    voc: &mut Vocabulary,
    db: &Database,
    query: &DnfQuery,
    order_type: OrderType,
) -> Result<Verdict> {
    entails_with(voc, db, query, order_type, Strategy::Auto)
}

/// As [`entails`] with a pinned engine strategy.
pub fn entails_with(
    voc: &mut Vocabulary,
    db: &Database,
    query: &DnfQuery,
    order_type: OrderType,
    strategy: Strategy,
) -> Result<Verdict> {
    match order_type {
        OrderType::Fin => Engine::new(voc).with_strategy(strategy).entails(db, query),
        OrderType::Z => {
            let reduced = reduce_z(voc, db, query);
            Engine::new(voc)
                .with_strategy(strategy)
                .entails(&reduced, query)
        }
        OrderType::Q => {
            let reduced_q = reduce_q(query);
            Engine::new(voc)
                .with_strategy(strategy)
                .entails(db, &reduced_q)
        }
    }
}

/// The Prop. 2.3 database transform for the integer semantics: adds
/// sentinel chains `l₁<…<lₙ < (every order constant) < r₁<…<rₙ` where `n`
/// is the number of order variables in the query.
pub fn reduce_z(voc: &mut Vocabulary, db: &Database, query: &DnfQuery) -> Database {
    let n = query
        .disjuncts
        .iter()
        .map(|cq| cq.n_ord_vars)
        .max()
        .unwrap_or(0);
    let mut out = db.clone();
    if n == 0 {
        return out;
    }
    let ls: Vec<_> = (0..n).map(|i| voc.fresh_ord(&format!("zl{i}_"))).collect();
    let rs: Vec<_> = (0..n).map(|i| voc.fresh_ord(&format!("zr{i}_"))).collect();
    out.assert_chain(indord_core::atom::OrderRel::Lt, &ls);
    out.assert_chain(indord_core::atom::OrderRel::Lt, &rs);
    let last_l = *ls.last().expect("n > 0");
    let first_r = rs[0];
    for u in db.order_constants() {
        out.assert_lt(last_l, u);
        out.assert_lt(u, first_r);
    }
    // With no order constants in D, the two chains still must sit on one
    // line in the right mutual order.
    out.assert_lt(last_l, first_r);
    out
}

/// The Cor. 2.6 query transform for the rational semantics: close each
/// disjunct under the derived-atom rules (*fullness*), then delete order
/// variables that occur in no proper atom. The result is tight, so
/// `D |=_Q Φ` iff `D |=_Fin Φ'`.
pub fn reduce_q(query: &DnfQuery) -> DnfQuery {
    DnfQuery {
        disjuncts: query
            .disjuncts
            .iter()
            .map(|cq| cq.to_full().drop_order_only_vars())
            .filter_map(|cq| cq.normalized())
            .collect(),
    }
}

/// Tightness of a query (Prop. 2.2): if tight, all three semantics agree.
pub fn is_tight(query: &DnfQuery) -> bool {
    query.is_tight()
}

/// Decides the query under all three semantics: returns `(fin, z, q)`,
/// which Prop. 2.1 guarantees to be monotonically weaker.
pub fn all_semantics(
    voc: &mut Vocabulary,
    db: &Database,
    query: &DnfQuery,
) -> Result<(bool, bool, bool)> {
    let fin = entails(voc, db, query, OrderType::Fin)?.holds();
    let z = entails(voc, db, query, OrderType::Z)?.holds();
    let q = entails(voc, db, query, OrderType::Q)?.holds();
    Ok((fin, z, q))
}

/// Integrity-constraint composition (Example 1.1): querying `Φ` under the
/// constraint `¬Ψ` is `D ∧ ¬Ψ |= Φ` iff `D |= Ψ ∨ Φ`; this helper builds
/// the modified query.
pub fn with_integrity_constraint(violation: &DnfQuery, query: &DnfQuery) -> DnfQuery {
    violation.clone().or(query.clone())
}

/// Number of order variables of a conjunctive query (used by callers
/// sizing the Z-reduction).
pub fn ord_var_count(cq: &ConjunctiveQuery) -> usize {
    cq.n_ord_vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::parse::{parse_database, parse_query};

    /// `|=_Z ∃t₁t₂ (t₁<t₂)` but not `|=_Fin` (single-point order exists).
    #[test]
    fn paper_separating_example_fin_vs_z() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let q = parse_query(&mut voc, "exists t1 t2. t1 < t2").unwrap();
        assert!(!q.is_tight());
        let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
        assert!(!fin, "a one-point finite model refutes it");
        assert!(z, "Z always has two ordered points");
        assert!(qq, "Q always has two ordered points");
    }

    /// `D = {P(u), P(v), u<v}`, `Φ = ∃t₁t₂t₃ (P(t₁) ∧ t₁<t₂<t₃ ∧ P(t₃))`:
    /// `|=_Q` (density) but not `|=_Z` (u, v may be adjacent integers).
    #[test]
    fn paper_separating_example_z_vs_q() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); P(v); u < v;").unwrap();
        let q = parse_query(
            &mut voc,
            "exists t1 t2 t3. P(t1) & t1 < t2 & t2 < t3 & P(t3)",
        )
        .unwrap();
        assert!(!q.is_tight());
        let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
        assert!(!fin);
        assert!(!z, "adjacent integers leave no room for t2");
        assert!(qq, "density provides the midpoint");
    }

    #[test]
    fn tight_queries_agree_across_semantics() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred R(ord); P(u); Q(v); u < v; R(w);").unwrap();
        for qtext in [
            "exists s t. P(s) & s < t & Q(t)",
            "exists s t. Q(s) & s < t & P(t)",
            "(exists s t. P(s) & Q(t) & s < t) | exists s. R(s)",
            "exists s t. P(s) & s <= t & R(t)",
        ] {
            let q = parse_query(&mut voc, qtext).unwrap();
            assert!(q.is_tight(), "{qtext}");
            let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
            assert_eq!(fin, z, "{qtext}");
            assert_eq!(z, qq, "{qtext}");
        }
    }

    #[test]
    fn containments_hold_prop21() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); P(v); u <= v;").unwrap();
        for qtext in [
            "exists t1 t2. t1 < t2",
            "exists s t. P(s) & s < t",
            "exists s w t. P(s) & s < w & w < t & P(t)",
            "exists s. P(s)",
        ] {
            let q = parse_query(&mut voc, qtext).unwrap();
            let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
            assert!(!fin || z, "Fin ⊆ Z violated on {qtext}");
            assert!(!z || qq, "Z ⊆ Q violated on {qtext}");
        }
    }

    #[test]
    fn q_reduction_produces_tight_query() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let q = parse_query(&mut voc, "exists s w t. P(s) & s < w & w < t & P(t)").unwrap();
        assert!(!q.is_tight());
        let reduced = reduce_q(&q);
        assert!(reduced.is_tight());
        // s < w < t collapses to the derived s < t.
        assert_eq!(reduced.disjuncts[0].n_ord_vars, 2);
    }

    #[test]
    fn z_reduction_adds_sentinels() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let q = parse_query(&mut voc, "exists t1 t2 t3. t1 < t2 & t2 < t3").unwrap();
        let reduced = reduce_z(&mut voc, &db, &q);
        // 3 variables → 3 sentinels on each side.
        assert_eq!(reduced.order_constant_count(), 1 + 3 + 3);
    }

    #[test]
    fn integrity_constraint_composition() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let violation = parse_query(&mut voc, "exists t. P(t) & Q(t)").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let combined = with_integrity_constraint(&violation, &q);
        assert_eq!(combined.disjuncts.len(), 2);
        // u, v unordered: the v<u model satisfies neither disjunct, so the
        // combined query is still not certain.
        let eng = Engine::new(&voc);
        assert!(!eng.entails(&db, &combined).unwrap().holds());
        // But it is weaker than the plain query: entailment is monotone in
        // added disjuncts (sanity check via direct evaluation).
        assert!(!eng.entails(&db, &q).unwrap().holds());
    }

    #[test]
    fn empty_query_z_reduction_is_identity() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let q = DnfQuery::default();
        let reduced = reduce_z(&mut voc, &db, &q);
        assert_eq!(reduced, db);
    }
}
