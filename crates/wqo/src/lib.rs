//! # indord-wqo
//!
//! The well-quasi-order machinery of §6 of the paper, which proves —
//! *nonconstructively* — that disjunctive monadic queries have linear-time
//! data complexity (Theorem 6.5).
//!
//! The chain of ideas, all implemented here:
//!
//! 1. flexi-words are quasi-ordered by `p ⊑ q ⟺ q |= p` (Lemma 6.3 shows
//!    this is a wqo — a generalization of Higman's subword lemma);
//! 2. finite sets lift pointwise: `S₁ ⪯ S₂` iff every element of `S₁` is
//!    below some element of `S₂`;
//! 3. databases are quasi-ordered by `D₁ ⊑ D₂ ⟺ Paths(D₁) ⪯ Paths(D₂)`,
//!    and query satisfaction `S(Φ) = {D : D |= Φ}` is **upward closed**
//!    (Lemma 6.4);
//! 4. therefore `S(Φ)` has a finite basis of minimal elements, and
//!    `D |= Φ` iff some basis element sits below `D` — a fixed number of
//!    `SEQ` runs, each linear in `|D|`.
//!
//! For conjunctive `Φ` the basis is the single database `D_Φ` (the query
//! read as a database), making compilation constructive
//! ([`compile_conjunctive`]). For disjunctive queries no general algorithm
//! is known (the paper's footnote 5 reports one for the `[<]`-only case);
//! [`bounded_basis_search`] implements a size-capped search over
//! chain-union candidates that is exact when the true basis fits the caps,
//! and is validated probabilistically against the Theorem 5.3 engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use indord_core::atom::OrderRel;
use indord_core::bitset::PredSet;
use indord_core::error::Result;
use indord_core::flexi::FlexiWord;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::ordgraph::OrderGraph;
use indord_entail::{disjunctive, seq};

/// The flexi-word quasi-order `p ⊑ q ⟺ q |= p` (Lemma 6.3).
pub fn flexi_le(p: &FlexiWord, q: &FlexiWord) -> bool {
    seq::entails(&q.to_database(), p)
}

/// The finite-powerset lifting: `S₁ ⪯ S₂` iff each `p ∈ S₁` has `q ∈ S₂`
/// with `p ⊑ q`.
pub fn set_le(s1: &[FlexiWord], s2: &[FlexiWord]) -> bool {
    s1.iter().all(|p| s2.iter().any(|q| flexi_le(p, q)))
}

/// The database quasi-order `D₁ ⊑ D₂ ⟺ Paths(D₁) ⪯ Paths(D₂)`.
///
/// By Lemma 4.2, `p` is below some path of `D₂` iff `D₂ |= p`, so the test
/// runs `SEQ(D₂, p)` once per path of `D₁` — linear in `|D₂|` for fixed
/// `D₁`. This is exactly how compiled queries evaluate.
pub fn db_le(d1: &MonadicDatabase, d2: &MonadicDatabase) -> bool {
    d1.paths().all(|p| seq::entails(d2, &p))
}

/// Is `x` minimal within `set` under `le` (quasi-order minimality:
/// everything below it is also above it)?
pub fn is_minimal<T>(x: &T, set: &[T], le: impl Fn(&T, &T) -> bool) -> bool {
    set.iter().all(|y| !le(y, x) || le(x, y))
}

/// Extracts a minimal basis from a finite set under a quasi-order: keeps
/// one representative of each minimal equivalence class.
pub fn minimal_basis<T: Clone>(set: &[T], le: impl Fn(&T, &T) -> bool) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for x in set {
        if !is_minimal(x, set, &le) {
            continue;
        }
        if out.iter().any(|y| le(x, y) && le(y, x)) {
            continue; // already represented
        }
        out.push(x.clone());
    }
    out
}

/// Is the sequence *bad* — no `i < j` with `xᵢ ⊑ xⱼ`? A wqo admits no
/// infinite bad sequence; finite prefixes can be bad, which tests use to
/// probe the order's structure.
pub fn is_bad_sequence<T>(seq: &[T], le: impl Fn(&T, &T) -> bool) -> bool {
    for i in 0..seq.len() {
        for j in (i + 1)..seq.len() {
            if le(&seq[i], &seq[j]) {
                return false;
            }
        }
    }
    true
}

/// A compiled query: the finite basis of `S(Φ)`. Evaluation is a fixed
/// number of `SEQ` runs, i.e. **linear-time data complexity**
/// (Theorem 6.5).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The basis elements (minimal databases entailing the query).
    pub basis: Vec<MonadicDatabase>,
}

impl CompiledQuery {
    /// Evaluates `D |= Φ` through the basis: true iff some basis element
    /// is `⊑ D`.
    pub fn entails(&self, db: &MonadicDatabase) -> bool {
        self.basis.iter().any(|b| db_le(b, db))
    }

    /// Total size of the basis (for reporting).
    pub fn size(&self) -> usize {
        self.basis.iter().map(MonadicDatabase::size).sum()
    }
}

/// Compiles a conjunctive monadic query: the basis is the single database
/// `D_Φ` with the query's labelled graph (discussion after Theorem 6.5).
pub fn compile_conjunctive(q: &MonadicQuery) -> CompiledQuery {
    assert!(q.ne.is_empty(), "compilation is defined for [<,<=] queries");
    let db = MonadicDatabase::new(q.graph.clone(), q.labels.clone());
    CompiledQuery { basis: vec![db] }
}

/// Limits for [`bounded_basis_search`].
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of chains per candidate database.
    pub max_chains: usize,
    /// Maximum total letters per candidate database.
    pub max_letters: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_chains: 2,
            max_letters: 4,
        }
    }
}

/// Size-capped basis search for disjunctive `[<]`-queries (experimental;
/// see module docs). Candidates are disjoint unions of *words* over the
/// label alphabet generated by the predicates occurring in the query —
/// sufficient because every database is `⊑`-equivalent to the disjoint
/// union of its paths.
///
/// The result is sound (every basis element entails the query and is
/// minimal among candidates); it is complete exactly when the true basis
/// fits within the limits, which callers should validate against the
/// Theorem 5.3 engine on sample databases.
pub fn bounded_basis_search(
    disjuncts: &[MonadicQuery],
    limits: SearchLimits,
) -> Result<CompiledQuery> {
    // Alphabet: all unions of label sets occurring in the query.
    let mut letters: Vec<PredSet> = vec![PredSet::new()];
    for q in disjuncts {
        for l in &q.labels {
            let mut next = Vec::new();
            for existing in &letters {
                let mut u = existing.clone();
                u.union_with(l);
                next.push(u);
            }
            letters.extend(next);
            letters.sort();
            letters.dedup();
        }
    }

    // Enumerate words of length 1..=max_letters over the alphabet.
    let mut frontier: Vec<Vec<PredSet>> = vec![Vec::new()];
    let mut all_words: Vec<Vec<PredSet>> = Vec::new();
    for _ in 0..limits.max_letters {
        let mut next = Vec::new();
        for w in &frontier {
            for l in &letters {
                let mut w2 = w.clone();
                w2.push(l.clone());
                next.push(w2);
            }
        }
        all_words.extend(next.iter().cloned());
        frontier = next;
    }

    let mut entailing: Vec<MonadicDatabase> = Vec::new();
    for w in &all_words {
        let db = FlexiWord::word(w.clone()).to_database();
        if disjunctive::entails(&db, disjuncts)? {
            entailing.push(db);
        }
    }
    if limits.max_chains >= 2 {
        for (i, w1) in all_words.iter().enumerate() {
            for w2 in all_words.iter().skip(i) {
                if w1.len() + w2.len() > limits.max_letters {
                    continue;
                }
                let db = union_of_words(&[w1.clone(), w2.clone()]);
                if disjunctive::entails(&db, disjuncts)? {
                    entailing.push(db);
                }
            }
        }
    }
    let basis = minimal_basis(&entailing, db_le);
    Ok(CompiledQuery { basis })
}

/// The disjoint union of chains as one monadic database.
pub fn union_of_words(words: &[Vec<PredSet>]) -> MonadicDatabase {
    let total: usize = words.iter().map(Vec::len).sum();
    let mut labels = Vec::with_capacity(total);
    let mut edges = Vec::new();
    for w in words {
        let base = labels.len();
        for (i, l) in w.iter().enumerate() {
            labels.push(l.clone());
            if i > 0 {
                edges.push((base + i - 1, base + i, OrderRel::Lt));
            }
        }
    }
    let graph = OrderGraph::from_dag_edges(total, &edges).expect("chains are acyclic");
    MonadicDatabase::new(graph, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::sym::PredSym;
    use indord_entail::paths;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn word(labels: &[&[usize]]) -> FlexiWord {
        FlexiWord::word(labels.iter().map(|l| ps(l)).collect())
    }

    #[test]
    fn flexi_le_is_reflexive_and_transitive() {
        let ws = [
            word(&[&[0]]),
            word(&[&[0], &[1]]),
            word(&[&[0, 1]]),
            word(&[&[1], &[0], &[1]]),
            FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![OrderRel::Le]),
        ];
        for a in &ws {
            assert!(flexi_le(a, a), "reflexivity on {a:?}");
            for b in &ws {
                for c in &ws {
                    if flexi_le(a, b) && flexi_le(b, c) {
                        assert!(flexi_le(a, c), "transitivity {a:?} {b:?} {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn flexi_le_matches_subword_on_words() {
        let a = word(&[&[0], &[1]]);
        let b = word(&[&[0], &[2], &[1]]);
        assert!(flexi_le(&a, &b));
        assert!(a.is_subword_of(&b));
        assert!(!flexi_le(&b, &a));
        assert!(set_le(
            &[a.clone(), word(&[&[2]])],
            std::slice::from_ref(&b)
        ));
    }

    #[test]
    fn upward_closure_lemma_6_4() {
        // If D1 ⊑ D2 and D1 |= Φ then D2 |= Φ, exercised on a family.
        let d1 = word(&[&[0], &[1]]).to_database();
        let d2 = word(&[&[0, 2], &[2], &[1, 2]]).to_database();
        assert!(db_le(&d1, &d2));
        let q = MonadicQuery::from_flexiword(&word(&[&[0], &[1]]));
        assert!(paths::entails(&d1, &q));
        assert!(paths::entails(&d2, &q));
    }

    #[test]
    fn conjunctive_compilation_agrees_with_paths_engine() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let rand_labels = |n: usize, rng: &mut dyn FnMut() -> u64| -> Vec<PredSet> {
            (0..n)
                .map(|_| {
                    let bits = rng() % 8;
                    (0..3)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(PredSym::from_index)
                        .collect()
                })
                .collect()
        };
        let rand_dag = |n: usize, rng: &mut dyn FnMut() -> u64| -> OrderGraph {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    match rng() % 4 {
                        0 => edges.push((i, j, OrderRel::Lt)),
                        1 => edges.push((i, j, OrderRel::Le)),
                        _ => {}
                    }
                }
            }
            OrderGraph::from_dag_edges(n, &edges).unwrap()
        };
        for round in 0..150 {
            let qn = (rng() % 3 + 1) as usize;
            let q = MonadicQuery::new(rand_dag(qn, &mut rng), rand_labels(qn, &mut rng));
            let compiled = compile_conjunctive(&q);
            let dn = (rng() % 4 + 1) as usize;
            let db = MonadicDatabase::new(rand_dag(dn, &mut rng), rand_labels(dn, &mut rng));
            assert_eq!(
                compiled.entails(&db),
                paths::entails(&db, &q),
                "round {round}: q={q:?} db={db:?}"
            );
        }
    }

    #[test]
    fn minimal_basis_extraction() {
        let xs = vec![word(&[&[0]]), word(&[&[0], &[0]]), word(&[&[1]])];
        let basis = minimal_basis(&xs, flexi_le);
        // [0] ⊑ [0][0], so the two-letter word is not minimal.
        assert_eq!(basis.len(), 2);
        assert!(basis.contains(&word(&[&[0]])));
        assert!(basis.contains(&word(&[&[1]])));
    }

    #[test]
    fn bad_sequence_detection() {
        let good = vec![word(&[&[0]]), word(&[&[0], &[1]])];
        assert!(!is_bad_sequence(&good, flexi_le));
        let bad = vec![word(&[&[0], &[0]]), word(&[&[1]])];
        assert!(is_bad_sequence(&bad, flexi_le));
    }

    #[test]
    fn basis_search_on_simple_disjunction() {
        // Φ = (P < Q) ∨ (Q < P).
        let q1 = MonadicQuery::from_flexiword(&word(&[&[0], &[1]]));
        let q2 = MonadicQuery::from_flexiword(&word(&[&[1], &[0]]));
        let disjuncts = vec![q1, q2];
        let compiled = bounded_basis_search(
            &disjuncts,
            SearchLimits {
                max_chains: 2,
                max_letters: 3,
            },
        )
        .unwrap();
        assert!(!compiled.basis.is_empty());
        // Validate against the Theorem 5.3 engine on sample databases.
        let samples = vec![
            word(&[&[0], &[1]]).to_database(),
            word(&[&[1], &[0]]).to_database(),
            word(&[&[0]]).to_database(),
            word(&[&[0, 1]]).to_database(),
            word(&[&[1], &[2], &[0]]).to_database(),
            union_of_words(&[vec![ps(&[0])], vec![ps(&[1])]]),
        ];
        for db in &samples {
            assert_eq!(
                compiled.entails(db),
                disjunctive::entails(db, &disjuncts).unwrap(),
                "db={db:?}"
            );
        }
    }

    #[test]
    fn basis_search_finds_multichain_minimal_element() {
        // Φ = (P<Q) ∨ (Q<P) ∨ (PQ together): the two-chain {[P], [Q]}
        // entails Φ and sits strictly below the word [P][Q].
        let q1 = MonadicQuery::from_flexiword(&word(&[&[0], &[1]]));
        let q2 = MonadicQuery::from_flexiword(&word(&[&[1], &[0]]));
        let q3 = MonadicQuery::from_flexiword(&word(&[&[0, 1]]));
        let disjuncts = vec![q1, q2, q3];
        let compiled = bounded_basis_search(
            &disjuncts,
            SearchLimits {
                max_chains: 2,
                max_letters: 2,
            },
        )
        .unwrap();
        let two_chain = union_of_words(&[vec![ps(&[0])], vec![ps(&[1])]]);
        assert!(
            compiled
                .basis
                .iter()
                .any(|b| db_le(b, &two_chain) && db_le(&two_chain, b)),
            "the two-chain minimal element must be in the basis: {:?}",
            compiled.basis
        );
        for db in [
            word(&[&[0], &[1]]).to_database(),
            word(&[&[2]]).to_database(),
            two_chain,
        ] {
            assert_eq!(
                compiled.entails(&db),
                disjunctive::entails(&db, &disjuncts).unwrap()
            );
        }
    }
}
