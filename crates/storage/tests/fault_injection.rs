//! Fault-injection and torn-tail suites for the storage crate.
//!
//! The contract under test: whatever bytes actually reach stable
//! storage — cut short by an I/O error, a short write, a panic
//! mid-append, or byte corruption after the fact — recovery yields the
//! longest checksum-valid prefix of appended records, reports where
//! the tail tore, and never surfaces a record that was not appended.

use std::panic::{catch_unwind, AssertUnwindSafe};

use indord_storage::wal::{self, encode_record, scan, TornReason};
use indord_storage::{DbDir, Fault, FaultIo, FaultKind, FsyncPolicy, Wal};
use proptest::prelude::*;

fn tempdir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "indord-fault-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Appends `payloads` through a [`FaultIo`] dying at `fault`, then
/// scans the persisted bytes. Returns (acked count, recovered records).
fn run_with_fault(payloads: &[Vec<u8>], fault: Fault) -> (usize, Vec<(u64, Vec<u8>)>) {
    let (io, persisted) = FaultIo::new(fault);
    let mut wal = Wal::new(Box::new(io), FsyncPolicy::Group, 1);
    let mut acked = 0usize;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for p in payloads {
            if wal.append(p).is_err() {
                return;
            }
            acked += 1;
        }
        let _ = wal.commit();
    }));
    if outcome.is_err() {
        // The Panic fault unwound mid-append: that append never acked.
    }
    let bytes = persisted.lock().unwrap_or_else(|p| p.into_inner()).clone();
    (acked, scan(&bytes).records)
}

#[test]
fn error_fault_loses_nothing_acked() {
    let payloads: Vec<Vec<u8>> = (0..8).map(|i| format!("record {i}").into_bytes()).collect();
    // A clean error persists nothing of the faulting call, so the
    // recovered set is exactly the acked set.
    for at_byte in [0u64, 1, 20, 41, 100, 1000] {
        let (acked, recovered) = run_with_fault(
            &payloads,
            Fault {
                at_byte,
                kind: FaultKind::Error,
            },
        );
        // Error faults persist only whole frames before the fault;
        // every recovered record was acked, in order.
        assert!(recovered.len() <= acked, "at_byte {at_byte}");
        for (i, (id, payload)) in recovered.iter().enumerate() {
            assert_eq!(*id, i as u64 + 1);
            assert_eq!(payload, &payloads[i]);
        }
    }
}

#[test]
fn short_write_fault_recovers_whole_frame_prefix() {
    let payloads: Vec<Vec<u8>> = (0..6).map(|i| vec![b'a' + i as u8; 5 + i]).collect();
    let total: usize = payloads
        .iter()
        .map(|p| wal::HEADER_LEN + p.len())
        .sum::<usize>();
    for at_byte in 0..=total as u64 {
        let (acked, recovered) = run_with_fault(
            &payloads,
            Fault {
                at_byte,
                kind: FaultKind::ShortWrite,
            },
        );
        // Whole frames below the fault line survive; the torn frame
        // never appears.
        let whole = payloads
            .iter()
            .scan(0u64, |acc, p| {
                *acc += (wal::HEADER_LEN + p.len()) as u64;
                Some(*acc)
            })
            .take_while(|&end| end <= at_byte)
            .count();
        assert_eq!(recovered.len(), whole, "at_byte {at_byte}");
        assert!(acked <= whole.max(acked), "acked {acked} at {at_byte}");
        for (i, (id, payload)) in recovered.iter().enumerate() {
            assert_eq!(*id, i as u64 + 1);
            assert_eq!(payload, &payloads[i]);
        }
    }
}

#[test]
fn panic_fault_unwinds_and_recovers_prefix() {
    let payloads: Vec<Vec<u8>> = (0..5)
        .map(|i| format!("panic case {i}").into_bytes())
        .collect();
    let frame_len = wal::HEADER_LEN + payloads[0].len();
    // Die halfway through the third frame.
    let at_byte = (2 * frame_len + frame_len / 2) as u64;
    let (acked, recovered) = run_with_fault(
        &payloads,
        Fault {
            at_byte,
            kind: FaultKind::Panic,
        },
    );
    assert_eq!(acked, 2, "third append panicked before acking");
    assert_eq!(recovered.len(), 2);
    assert_eq!(recovered[1].1, payloads[1]);
}

#[test]
fn dead_io_stays_dead() {
    let (io, _persisted) = FaultIo::new(Fault {
        at_byte: 0,
        kind: FaultKind::Error,
    });
    let mut wal = Wal::new(Box::new(io), FsyncPolicy::Always, 1);
    assert!(wal.append(b"x").is_err());
    assert!(wal.append(b"y").is_err());
    // Nothing was appended, so there is nothing to sync — the elision
    // means a dead io does not even get asked.
    assert!(wal.sync().is_ok());
    assert_eq!(wal.counters().appends, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Torn-tail property: truncating a valid log at ANY byte recovers
    /// exactly the whole-frame prefix, and reports the tear iff the
    /// cut is not on a frame boundary.
    #[test]
    fn truncation_recovers_whole_frame_prefix(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..40), 1..12),
        cut_frac in 0usize..1000,
    ) {
        let mut log = Vec::new();
        let mut ends = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, p));
            ends.push(log.len());
        }
        let cut = log.len() * cut_frac / 1000;
        let s = scan(&log[..cut]);
        let whole = ends.iter().take_while(|&&e| e <= cut).count();
        prop_assert_eq!(s.records.len(), whole);
        prop_assert_eq!(s.valid_len, ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0) as u64);
        for (i, (id, payload)) in s.records.iter().enumerate() {
            prop_assert_eq!(*id, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        let on_boundary = cut == 0 || ends.contains(&cut);
        prop_assert_eq!(s.torn.is_none(), on_boundary);
        if let Some(torn) = s.torn {
            prop_assert_eq!(torn.offset, s.valid_len);
        }
    }

    /// Corruption property: flipping any byte of a valid log yields a
    /// scan whose records are a (possibly shorter) prefix of the
    /// original, never garbage.
    #[test]
    fn corruption_never_yields_garbage(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..32), 1..10),
        flip_frac in 0usize..1000,
        flip_bit in 0u8..8,
    ) {
        let mut log = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, p));
        }
        let at = (log.len() - 1) * flip_frac / 1000;
        log[at] ^= 1 << flip_bit;
        let s = scan(&log);
        // Every surviving record must be byte-identical to an original
        // prefix record (a corrupt length field may also truncate the
        // scan early, which is fine — it must just never invent data).
        for (i, (id, payload)) in s.records.iter().enumerate() {
            prop_assert_eq!(*id, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
    }

    /// End-to-end through `DbDir`: a fault-free write run, a torn tail
    /// appended on disk, and recovery truncates it exactly once.
    #[test]
    fn dbdir_recovery_truncates_torn_tail(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..=255, 1..24), 1..8),
        garbage in proptest::collection::vec(0u8..=255, 1..20),
    ) {
        let dir = DbDir::open(tempdir("prop")).unwrap();
        {
            let mut wal = dir.open_wal(FsyncPolicy::Group, 1).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.commit().unwrap();
        }
        // Corrupt the tail: raw garbage that cannot be a valid frame
        // start in general; recovery may keep a prefix of it only if
        // it happens to checksum (astronomically unlikely but allowed).
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.wal_path())
                .unwrap();
            f.write_all(&garbage).unwrap();
        }
        let rec = dir.recover().unwrap();
        prop_assert!(rec.records.len() >= payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(&rec.records[i].1, p);
        }
        // Second recovery must be clean: the tail was truncated away.
        let rec2 = dir.recover().unwrap();
        prop_assert_eq!(rec2.truncated_bytes, 0);
        prop_assert!(rec2.torn.is_none());
        prop_assert_eq!(rec2.records.len(), rec.records.len());
        std::fs::remove_dir_all(dir.path()).unwrap();
    }

    /// Kill-at-any-byte through the real `Wal`: for an arbitrary fault
    /// offset and kind, recovery yields a whole-frame prefix of the
    /// appended sequence and every fully-acked-and-synced record below
    /// the fault line survives.
    #[test]
    fn kill_at_any_byte_recovers_durable_prefix(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..24), 1..10),
        fault_frac in 0usize..1200,
        kind_sel in 0u8..3,
    ) {
        let total: usize = payloads.iter().map(|p| wal::HEADER_LEN + p.len()).sum();
        let at_byte = (total * fault_frac / 1000) as u64;
        let kind = match kind_sel {
            0 => FaultKind::Error,
            1 => FaultKind::ShortWrite,
            _ => FaultKind::Panic,
        };
        let (_acked, recovered) = run_with_fault(&payloads, Fault { at_byte, kind });
        // Prefix property.
        for (i, (id, payload)) in recovered.iter().enumerate() {
            prop_assert_eq!(*id, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        // Every whole frame strictly below the fault line survives.
        let mut end = 0u64;
        let mut whole_below = 0usize;
        for p in &payloads {
            end += (wal::HEADER_LEN + p.len()) as u64;
            if end <= at_byte {
                whole_below += 1;
            }
        }
        prop_assert!(recovered.len() >= whole_below.min(payloads.len()));
    }
}

#[test]
fn torn_reason_display_is_typed() {
    // The recovery log line carries a typed reason; pin the variants.
    assert_eq!(
        TornReason::TruncatedHeader.to_string(),
        "record header cut short"
    );
    assert_eq!(
        TornReason::BadChecksum.to_string(),
        "record checksum mismatch"
    );
}
