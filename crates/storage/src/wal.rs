//! The append-only write-ahead log: length-prefixed, checksummed
//! records over an injectable I/O layer.
//!
//! ## Record framing
//!
//! ```text
//! [len: u32 LE] [id: u64 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `len` is the payload length, `id` a strictly increasing record id
//! (never reset, even across compactions — replay uses it to skip
//! records already folded into a snapshot), and `crc` a CRC-32 (IEEE)
//! over the id bytes followed by the payload. A record is *durable*
//! exactly when its full frame is on stable storage and its checksum
//! verifies; [`scan`] recovers the longest durable prefix of a log and
//! reports where (and why) the tail stops being one.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] decides when [`Wal`] pushes appended frames to
//! stable storage: `Always` syncs after every record, `Group` once per
//! [`Wal::commit`] (the group-commit boundary), `Os` never — the OS
//! flushes on its own schedule and the acked⇒durable contract weakens
//! to acked⇒written.
//!
//! ## Fault injection
//!
//! All file traffic goes through the [`WalIo`] trait. Production uses
//! [`FileIo`]; the recovery test suites use [`FaultIo`], which persists
//! bytes into a shared in-memory buffer and dies — clean error, short
//! write, or panic — at a configured byte offset, so a crash can be
//! placed at *any* byte of the log and recovery checked against the
//! bytes that actually made it down.

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::sync::{Arc, Mutex, OnceLock};

/// Frame header size: `len (4) + id (8) + crc (4)`.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a record payload (a defense against interpreting a
/// corrupt length field as a multi-gigabyte allocation during scan).
pub const MAX_PAYLOAD: usize = 1 << 28;

/// CRC-32 (IEEE 802.3) over `bytes`.
pub fn crc32(chunks: &[&[u8]]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// When appended WAL bytes are pushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended record: an `OK` reply implies the
    /// record is durable, at one sync per write.
    Always,
    /// fsync once per group commit, before the group's replies are
    /// released: acked⇒durable at one sync per *group* (the default).
    #[default]
    Group,
    /// Never fsync; the OS flushes on its own schedule. Fastest, and
    /// the contract weakens to acked⇒written-to-OS (a power loss can
    /// drop acked tail writes; an orderly process crash cannot).
    Os,
}

impl FsyncPolicy {
    /// The canonical token (`always` / `group` / `os`).
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Group => "group",
            FsyncPolicy::Os => "os",
        }
    }

    /// Parses the canonical token.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        Some(match s {
            "always" => FsyncPolicy::Always,
            "group" => FsyncPolicy::Group,
            "os" => FsyncPolicy::Os,
            _ => return None,
        })
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The byte sink a [`Wal`] appends to. Production is a real file
/// ([`FileIo`]); tests inject faults ([`FaultIo`]).
pub trait WalIo: Send {
    /// Appends `buf` whole, or fails. A failure may leave a *prefix*
    /// of `buf` persisted (a short write) — scan-time checksums are
    /// what make that safe.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Pushes everything appended so far to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The production [`WalIo`]: an append-mode file handle.
#[derive(Debug)]
pub struct FileIo(pub File);

impl WalIo for FileIo {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

/// How an injected fault manifests at its byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The append fails cleanly: nothing of the faulting call persists.
    Error,
    /// A short write: the prefix of the faulting call up to the fault
    /// offset persists, then the call fails — a torn record.
    ShortWrite,
    /// A short write followed by a panic — the mid-group process-kill
    /// stand-in (the panic unwinds through the appending thread).
    Panic,
}

/// A byte-addressed fault plan for [`FaultIo`].
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// The log grows normally until it would cross this offset.
    pub at_byte: u64,
    /// What happens at the crossing.
    pub kind: FaultKind,
}

/// A fault-injected [`WalIo`]: persists into a shared in-memory buffer
/// and dies at the configured byte. After the fault every later call
/// fails — the process is "dead"; the buffer holds exactly the bytes
/// that reached "disk".
#[derive(Debug)]
pub struct FaultIo {
    persisted: Arc<Mutex<Vec<u8>>>,
    fault: Fault,
    dead: bool,
}

impl FaultIo {
    /// A fault-injected sink; read the persisted bytes back through the
    /// returned handle after the "crash".
    pub fn new(fault: Fault) -> (FaultIo, Arc<Mutex<Vec<u8>>>) {
        let persisted = Arc::new(Mutex::new(Vec::new()));
        (
            FaultIo {
                persisted: Arc::clone(&persisted),
                fault,
                dead: false,
            },
            persisted,
        )
    }

    fn die(&mut self) -> io::Error {
        self.dead = true;
        io::Error::other(format!(
            "injected {:?} fault at byte {}",
            self.fault.kind, self.fault.at_byte
        ))
    }
}

impl WalIo for FaultIo {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("wal io is dead after injected fault"));
        }
        let persisted = Arc::clone(&self.persisted);
        let mut persisted = persisted.lock().unwrap_or_else(|p| p.into_inner());
        let len = persisted.len() as u64;
        if len + buf.len() as u64 <= self.fault.at_byte {
            persisted.extend_from_slice(buf);
            return Ok(());
        }
        // The call crosses the fault offset.
        match self.fault.kind {
            FaultKind::Error => Err(self.die()),
            FaultKind::ShortWrite => {
                let keep = (self.fault.at_byte - len) as usize;
                persisted.extend_from_slice(&buf[..keep]);
                Err(self.die())
            }
            FaultKind::Panic => {
                let keep = (self.fault.at_byte - len) as usize;
                persisted.extend_from_slice(&buf[..keep]);
                self.dead = true;
                drop(persisted);
                panic!(
                    "injected panic fault at byte {} of the wal",
                    self.fault.at_byte
                );
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("wal io is dead after injected fault"));
        }
        Ok(())
    }
}

/// Encodes one record frame.
pub fn encode_record(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let id_bytes = id.to_le_bytes();
    frame.extend_from_slice(&id_bytes);
    frame.extend_from_slice(&crc32(&[&id_bytes, payload]).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Why a scan stopped treating the log tail as durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`HEADER_LEN`] bytes remain: a header was cut mid-write.
    TruncatedHeader,
    /// The header's length field runs past the end of the log (or past
    /// [`MAX_PAYLOAD`]): a payload was cut mid-write or the length is
    /// garbage.
    TruncatedPayload,
    /// The frame is complete but its checksum does not verify.
    BadChecksum,
    /// The record id does not increase over its predecessor — frames
    /// from different log generations interleaved (should be impossible
    /// with compaction-by-truncate; treated as corruption).
    NonMonotonicId,
}

impl fmt::Display for TornReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TornReason::TruncatedHeader => "record header cut short",
            TornReason::TruncatedPayload => "record payload cut short",
            TornReason::BadChecksum => "record checksum mismatch",
            TornReason::NonMonotonicId => "record id not increasing",
        })
    }
}

/// A torn tail found by [`scan`]: everything before `offset` is the
/// durable prefix; the bytes at `offset` and after are not a valid
/// record and should be truncated away before appending resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the durable prefix ends.
    pub offset: u64,
    /// Why the next frame is invalid.
    pub reason: TornReason,
}

/// The result of scanning a log image: the decoded durable prefix plus
/// the torn tail, if any.
#[derive(Debug)]
pub struct Scan {
    /// The records of the longest durable prefix, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte length of that prefix (a valid truncation point).
    pub valid_len: u64,
    /// `Some` when trailing bytes had to be discarded.
    pub torn: Option<TornTail>,
}

/// Scans a log image for its longest durable prefix: whole,
/// checksum-valid, id-monotone records from the start. Never fails —
/// corruption shortens the prefix instead.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut last_id = 0u64;
    let torn = loop {
        let rest = bytes.len() - at;
        if rest == 0 {
            break None;
        }
        if rest < HEADER_LEN {
            break Some(TornReason::TruncatedHeader);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD || rest - HEADER_LEN < len {
            break Some(TornReason::TruncatedPayload);
        }
        let id_bytes: [u8; 8] = bytes[at + 4..at + 12].try_into().expect("8 bytes");
        let id = u64::from_le_bytes(id_bytes);
        let crc = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4 bytes"));
        let payload = &bytes[at + HEADER_LEN..at + HEADER_LEN + len];
        if crc32(&[&id_bytes, payload]) != crc {
            break Some(TornReason::BadChecksum);
        }
        if id <= last_id {
            break Some(TornReason::NonMonotonicId);
        }
        last_id = id;
        records.push((id, payload.to_vec()));
        at += HEADER_LEN + len;
    };
    Scan {
        records,
        valid_len: at as u64,
        torn: torn.map(|reason| TornTail {
            offset: at as u64,
            reason,
        }),
    }
}

/// Lifetime I/O counters of one [`Wal`] (mirrored into the serving
/// layer's `STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Records appended.
    pub appends: u64,
    /// Frame bytes appended (headers included).
    pub bytes: u64,
    /// fsyncs issued.
    pub fsyncs: u64,
}

/// The append side of a write-ahead log: frames payloads, assigns ids,
/// and syncs per [`FsyncPolicy`].
pub struct Wal {
    io: Box<dyn WalIo>,
    policy: FsyncPolicy,
    next_id: u64,
    /// Bytes appended since the last sync (sync elision when clean).
    dirty: bool,
    counters: WalCounters,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("policy", &self.policy)
            .field("next_id", &self.next_id)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// A log appending through `io`. `next_id` is one past the highest
    /// id already durable (1 for a fresh log).
    pub fn new(io: Box<dyn WalIo>, policy: FsyncPolicy, next_id: u64) -> Wal {
        Wal {
            io,
            policy,
            next_id: next_id.max(1),
            dirty: false,
            counters: WalCounters::default(),
        }
    }

    /// The fsync policy appends run under.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The id the next appended record will get.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Lifetime append/sync counters.
    pub fn counters(&self) -> WalCounters {
        self.counters
    }

    /// Appends one record, returning its id. Under `Always` the record
    /// is durable when this returns; under `Group`/`Os` durability
    /// waits for [`Wal::commit`] / the OS.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let id = self.next_id;
        let frame = encode_record(id, payload);
        self.io.append(&frame)?;
        self.next_id += 1;
        self.dirty = true;
        self.counters.appends += 1;
        self.counters.bytes += frame.len() as u64;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(id)
    }

    /// The group-commit boundary: under `Group`, syncs everything
    /// appended since the last sync. No-op under `Always` (already
    /// synced) and `Os` (never syncs).
    pub fn commit(&mut self) -> io::Result<()> {
        if self.policy == FsyncPolicy::Group && self.dirty {
            self.sync()?;
        }
        Ok(())
    }

    /// Unconditionally syncs appended bytes (shutdown, explicit FLUSH)
    /// regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.io.sync()?;
            self.dirty = false;
            self.counters.fsyncs += 1;
        }
        Ok(())
    }

    /// Notes that the underlying file was truncated to empty by a
    /// compaction: ids keep increasing, only the byte stream restarts.
    pub fn note_compacted(&mut self) {
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
    }

    #[test]
    fn encode_scan_round_trip() {
        let mut log = Vec::new();
        for (id, payload) in [(1u64, &b"FACT P(u);"[..]), (2, b""), (7, b"PREPARE q: x")] {
            log.extend_from_slice(&encode_record(id, payload));
        }
        let scan = scan(&log);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len, log.len() as u64);
        assert_eq!(
            scan.records,
            vec![
                (1, b"FACT P(u);".to_vec()),
                (2, Vec::new()),
                (7, b"PREPARE q: x".to_vec())
            ]
        );
    }

    #[test]
    fn truncated_tail_recovers_prefix() {
        let r1 = encode_record(1, b"first record");
        let r2 = encode_record(2, b"second record");
        let mut log = r1.clone();
        log.extend_from_slice(&r2);
        // A clean cut at the frame boundary is not torn at all.
        let s = scan(&log[..r1.len()]);
        assert_eq!(s.records.len(), 1);
        assert!(s.torn.is_none());
        // Every strict prefix of the second frame recovers exactly the
        // first record and points at the cut.
        for cut in 1..r2.len() {
            let s = scan(&log[..r1.len() + cut]);
            assert_eq!(s.records.len(), 1, "cut at {cut}");
            assert_eq!(s.valid_len, r1.len() as u64);
            let torn = s.torn.expect("partial frame is torn");
            assert_eq!(torn.offset, r1.len() as u64);
            assert_eq!(
                torn.reason,
                if cut < HEADER_LEN {
                    TornReason::TruncatedHeader
                } else {
                    TornReason::TruncatedPayload
                },
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_byte_stops_the_prefix() {
        let mut log = encode_record(1, b"aaaa");
        log.extend_from_slice(&encode_record(2, b"bbbb"));
        let clean_first = encode_record(1, b"aaaa").len();
        // Flip one payload byte of the second record.
        let mut bad = log.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        let s = scan(&bad);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len, clean_first as u64);
        assert_eq!(s.torn.unwrap().reason, TornReason::BadChecksum);
    }

    #[test]
    fn non_monotonic_ids_are_rejected() {
        let mut log = encode_record(5, b"x");
        log.extend_from_slice(&encode_record(5, b"y"));
        let s = scan(&log);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.torn.unwrap().reason, TornReason::NonMonotonicId);
    }

    #[test]
    fn fault_io_persists_exactly_up_to_the_fault() {
        let (mut io, persisted) = FaultIo::new(Fault {
            at_byte: 10,
            kind: FaultKind::ShortWrite,
        });
        io.append(b"01234567").unwrap();
        let err = io.append(b"89abcdef").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(&*persisted.lock().unwrap(), b"0123456789");
        // Dead after the fault.
        assert!(io.append(b"zz").is_err());
        assert!(io.sync().is_err());
    }

    #[test]
    fn wal_append_assigns_increasing_ids_and_counts() {
        let (io, persisted) = FaultIo::new(Fault {
            at_byte: u64::MAX,
            kind: FaultKind::Error,
        });
        let mut wal = Wal::new(Box::new(io), FsyncPolicy::Group, 1);
        assert_eq!(wal.append(b"a").unwrap(), 1);
        assert_eq!(wal.append(b"bb").unwrap(), 2);
        wal.commit().unwrap();
        let c = wal.counters();
        assert_eq!(c.appends, 2);
        assert_eq!(c.bytes, (2 * HEADER_LEN + 3) as u64);
        assert_eq!(c.fsyncs, 1);
        let s = scan(&persisted.lock().unwrap());
        assert!(s.torn.is_none());
        assert_eq!(s.records.len(), 2);
    }
}
