//! Atomic snapshot files.
//!
//! A snapshot is one opaque payload (the serving layer serializes a
//! published `DbSnapshot` into it) stamped with the id of the last WAL
//! record it folds in:
//!
//! ```text
//! [magic: b"INDSNAP1"] [id: u64 LE] [len: u32 LE] [crc: u32 LE] [payload]
//! ```
//!
//! Writes are atomic — tmp file, fsync, rename, directory fsync — so a
//! crash mid-snapshot leaves either the previous snapshot set intact or
//! a garbage tmp/partial file that [`load_latest`] skips by checksum.
//! Snapshot files are named `snap-<id, zero padded>.snap`; the loader
//! picks the *newest valid* one, which is exactly the kill-mid-snapshot
//! fallback: a torn `snap-9` loses its checksum and the loader falls
//! back to `snap-7` plus the (not yet compacted) WAL tail.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::crc32;

/// Snapshot file magic.
pub const MAGIC: &[u8; 8] = b"INDSNAP1";

/// Header size: magic (8) + id (8) + len (4) + crc (4).
pub const HEADER_LEN: usize = 24;

/// Upper bound on a snapshot payload (corruption guard, as for WAL
/// records).
pub const MAX_PAYLOAD: usize = 1 << 30;

/// The snapshot filename for WAL id `id`.
pub fn file_name(id: u64) -> String {
    format!("snap-{id:020}.snap")
}

/// Parses `snap-<id>.snap` back to its id.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let id = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if id.len() != 20 || !id.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    id.parse().ok()
}

/// Encodes a snapshot image.
pub fn encode(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut image = Vec::with_capacity(HEADER_LEN + payload.len());
    image.extend_from_slice(MAGIC);
    let id_bytes = id.to_le_bytes();
    image.extend_from_slice(&id_bytes);
    image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    image.extend_from_slice(&crc32(&[&id_bytes, payload]).to_le_bytes());
    image.extend_from_slice(payload);
    image
}

/// Decodes a snapshot image, verifying magic, length, and checksum.
pub fn decode(bytes: &[u8]) -> Option<(u64, &[u8])> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let id_bytes: [u8; 8] = bytes[8..16].try_into().ok()?;
    let id = u64::from_le_bytes(id_bytes);
    let len = u32::from_le_bytes(bytes[16..20].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    if len > MAX_PAYLOAD || bytes.len() - HEADER_LEN != len {
        return None;
    }
    let payload = &bytes[HEADER_LEN..];
    if crc32(&[&id_bytes, payload]) != crc {
        return None;
    }
    Some((id, payload))
}

/// Atomically writes the snapshot for WAL id `id` into `dir`.
pub fn write(dir: &Path, id: u64, payload: &[u8]) -> io::Result<PathBuf> {
    let image = encode(id, payload);
    let tmp = dir.join(format!("snap-{id:020}.tmp"));
    let dst = dir.join(file_name(id));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &dst)?;
    // Persist the rename itself.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(dst)
}

/// A snapshot successfully loaded from disk.
#[derive(Debug)]
pub struct Loaded {
    /// Id of the last WAL record the payload folds in.
    pub id: u64,
    /// The opaque snapshot payload.
    pub payload: Vec<u8>,
    /// Snapshot files that failed magic/checksum and were skipped
    /// (e.g. a kill mid-snapshot-write).
    pub skipped_corrupt: u64,
}

/// Loads the newest valid snapshot in `dir`, skipping corrupt ones.
/// `Ok(None)` when the directory holds no valid snapshot.
pub fn load_latest(dir: &Path) -> io::Result<Option<Loaded>> {
    let mut ids: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_file_name) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    let mut skipped_corrupt = 0u64;
    for id in ids.into_iter().rev() {
        let path = dir.join(file_name(id));
        let mut bytes = Vec::new();
        match fs::File::open(&path).and_then(|mut f| f.read_to_end(&mut bytes)) {
            Ok(_) => {}
            Err(_) => {
                skipped_corrupt += 1;
                continue;
            }
        }
        match decode(&bytes) {
            Some((decoded_id, payload)) if decoded_id == id => {
                return Ok(Some(Loaded {
                    id,
                    payload: payload.to_vec(),
                    skipped_corrupt,
                }));
            }
            _ => skipped_corrupt += 1,
        }
    }
    Ok(None)
}

/// Removes every snapshot file in `dir` except the one for `keep_id`,
/// plus any leftover tmp files. Returns how many files were removed.
pub fn prune(dir: &Path, keep_id: u64) -> io::Result<u64> {
    let mut removed = 0u64;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_snap = parse_file_name(name).is_some_and(|id| id != keep_id);
        let stale_tmp = name.starts_with("snap-") && name.ends_with(".tmp");
        if (stale_snap || stale_tmp) && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "indord-snap-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(parse_file_name(&file_name(0)), Some(0));
        assert_eq!(parse_file_name(&file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_file_name("snap-12.snap"), None); // not padded
        assert_eq!(parse_file_name("snap-00000000000000000012.tmp"), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let image = encode(42, b"payload bytes");
        assert_eq!(decode(&image), Some((42, &b"payload bytes"[..])));
        // A flipped byte anywhere kills it.
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x01;
            assert_eq!(decode(&bad), None, "flip at {i}");
        }
        assert_eq!(decode(&image[..image.len() - 1]), None);
    }

    #[test]
    fn load_latest_skips_corrupt_newest() {
        let dir = tempdir("skip");
        write(&dir, 3, b"three").unwrap();
        write(&dir, 9, b"nine").unwrap();
        // Corrupt the newest in place (as a kill mid-write would).
        let nine = dir.join(file_name(9));
        let mut bytes = fs::read(&nine).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&nine, &bytes).unwrap();

        let loaded = load_latest(&dir).unwrap().expect("snap-3 is valid");
        assert_eq!(loaded.id, 3);
        assert_eq!(loaded.payload, b"three");
        assert_eq!(loaded.skipped_corrupt, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_only_the_survivor() {
        let dir = tempdir("prune");
        write(&dir, 1, b"one").unwrap();
        write(&dir, 2, b"two").unwrap();
        write(&dir, 5, b"five").unwrap();
        fs::write(dir.join("snap-00000000000000000009.tmp"), b"junk").unwrap();
        let removed = prune(&dir, 5).unwrap();
        assert_eq!(removed, 3);
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.id, 5);
        fs::remove_dir_all(&dir).unwrap();
    }
}
