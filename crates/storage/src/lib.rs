//! # indord-storage
//!
//! Durable storage for the indord serving layer: a per-database
//! append-only [write-ahead log](wal) of opaque payloads plus an
//! [atomic snapshot store](snapshot), tied together by [`DbDir`] — the
//! on-disk layout of one database.
//!
//! The crate is deliberately content-agnostic. Payloads are byte
//! strings; the serving layer decides that WAL payloads are protocol
//! request lines and snapshot payloads are a vocabulary + database
//! text image. What lives here is everything that has to be *right*
//! about durability mechanics:
//!
//! - record framing with lengths and CRC-32 checksums ([`wal`]),
//! - torn-tail scanning that recovers the longest durable prefix
//!   ([`wal::scan`]),
//! - fsync policy and group-commit sync boundaries ([`wal::Wal`]),
//! - injectable I/O with byte-addressed faults ([`wal::FaultIo`]),
//! - atomic snapshot write / newest-valid load / pruning
//!   ([`snapshot`]),
//! - the directory layout and compaction protocol ([`DbDir`]).
//!
//! ## On-disk layout
//!
//! ```text
//! <data-dir>/<db-name>/
//!   wal.log                      append-only record frames
//!   snap-<id>.snap               snapshot folding WAL ids <= id
//! ```
//!
//! ## Compaction protocol
//!
//! Record ids increase monotonically and *never reset*. A snapshot is
//! stamped with the last id it folds in; compaction then truncates
//! `wal.log` to empty and prunes older snapshots. Recovery loads the
//! newest valid snapshot and replays only WAL records with ids greater
//! than the snapshot's — so a crash at any point between "snapshot
//! durable" and "WAL truncated" is safe: leftover records are skipped
//! by id, never applied twice.

pub mod snapshot;
pub mod wal;

pub use wal::{Fault, FaultIo, FaultKind, FileIo, FsyncPolicy, Wal, WalCounters, WalIo};

use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Name of the WAL file inside a [`DbDir`].
pub const WAL_FILE: &str = "wal.log";

/// The on-disk home of one database: its WAL file and snapshot set.
#[derive(Debug, Clone)]
pub struct DbDir {
    path: PathBuf,
}

/// Everything [`DbDir::recover`] found on disk: the newest valid
/// snapshot (if any), the WAL records to replay after it, and what had
/// to be discarded to get there.
#[derive(Debug)]
pub struct Recovery {
    /// Newest valid snapshot payload, if one exists.
    pub snapshot: Option<snapshot::Loaded>,
    /// Durable WAL records with ids greater than the snapshot's, in
    /// log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// One past the highest durable id seen (snapshot or WAL): the id
    /// the reopened [`Wal`] must continue from.
    pub next_id: u64,
    /// Torn tail found (and truncated) at the end of the WAL, if any.
    pub torn: Option<wal::TornTail>,
    /// Bytes truncated off the WAL tail.
    pub truncated_bytes: u64,
    /// WAL records skipped because a snapshot already folds them in.
    pub skipped_by_snapshot: u64,
}

impl DbDir {
    /// Opens (creating if needed) the directory for one database.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<DbDir> {
        let path = path.into();
        fs::create_dir_all(&path)?;
        Ok(DbDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The WAL file path.
    pub fn wal_path(&self) -> PathBuf {
        self.path.join(WAL_FILE)
    }

    /// Reads the raw WAL image (empty if the file does not exist).
    pub fn read_wal(&self) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        match fs::File::open(self.wal_path()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
                Ok(bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(bytes),
            Err(e) => Err(e),
        }
    }

    /// Scans snapshot + WAL into a [`Recovery`], truncating any torn
    /// WAL tail so appends can resume at a clean frame boundary.
    pub fn recover(&self) -> io::Result<Recovery> {
        let snapshot = snapshot::load_latest(&self.path)?;
        let snap_id = snapshot.as_ref().map_or(0, |s| s.id);
        let image = self.read_wal()?;
        let scan = wal::scan(&image);
        let truncated_bytes = image.len() as u64 - scan.valid_len;
        if truncated_bytes > 0 {
            let f = fs::OpenOptions::new().write(true).open(self.wal_path())?;
            f.set_len(scan.valid_len)?;
            f.sync_all()?;
        }
        let mut last_id = snap_id;
        let mut skipped_by_snapshot = 0u64;
        let mut records = Vec::with_capacity(scan.records.len());
        for (id, payload) in scan.records {
            if id <= snap_id {
                skipped_by_snapshot += 1;
            } else {
                records.push((id, payload));
            }
            last_id = last_id.max(id);
        }
        Ok(Recovery {
            snapshot,
            records,
            next_id: last_id + 1,
            torn: scan.torn,
            truncated_bytes,
            skipped_by_snapshot,
        })
    }

    /// Opens the WAL for appending under `policy`, continuing ids from
    /// `next_id` (take it from [`Recovery::next_id`]).
    pub fn open_wal(&self, policy: FsyncPolicy, next_id: u64) -> io::Result<Wal> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())?;
        Ok(Wal::new(Box::new(FileIo(file)), policy, next_id))
    }

    /// Atomically writes the snapshot folding WAL ids `<= id`.
    pub fn write_snapshot(&self, id: u64, payload: &[u8]) -> io::Result<()> {
        snapshot::write(&self.path, id, payload)?;
        Ok(())
    }

    /// Compacts after a durable snapshot at `keep_id`: truncates the
    /// WAL to empty and prunes all other snapshot files. The open
    /// [`Wal`] handle (if any) must be told via [`Wal::note_compacted`].
    pub fn compact(&self, keep_id: u64) -> io::Result<()> {
        match fs::OpenOptions::new().write(true).open(self.wal_path()) {
            Ok(f) => {
                f.set_len(0)?;
                f.sync_all()?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        snapshot::prune(&self.path, keep_id)?;
        Ok(())
    }

    /// Wipes the directory back to empty (a fresh `INSTALL` over an
    /// existing on-disk db discards its history).
    pub fn reset(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "indord-dbdir-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        dir
    }

    #[test]
    fn fresh_dir_recovers_empty() {
        let dir = DbDir::open(tempdir("fresh")).unwrap();
        let rec = dir.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.next_id, 1);
        assert!(rec.torn.is_none());
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn append_close_recover_round_trip() {
        let dir = DbDir::open(tempdir("rt")).unwrap();
        {
            let mut wal = dir.open_wal(FsyncPolicy::Group, 1).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.commit().unwrap();
        }
        let rec = dir.recover().unwrap();
        assert_eq!(
            rec.records,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
        assert_eq!(rec.next_id, 3);
        // Reopen and continue the id sequence.
        {
            let mut wal = dir.open_wal(FsyncPolicy::Always, rec.next_id).unwrap();
            assert_eq!(wal.append(b"three").unwrap(), 3);
        }
        let rec = dir.recover().unwrap();
        assert_eq!(rec.records.len(), 3);
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn snapshot_skips_folded_records_and_compaction_prunes() {
        let dir = DbDir::open(tempdir("snap")).unwrap();
        {
            let mut wal = dir.open_wal(FsyncPolicy::Group, 1).unwrap();
            for payload in [b"a" as &[u8], b"b", b"c"] {
                wal.append(payload).unwrap();
            }
            wal.commit().unwrap();
        }
        dir.write_snapshot(2, b"state after b").unwrap();
        // Crash window: snapshot durable, WAL not yet truncated.
        let rec = dir.recover().unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().id, 2);
        assert_eq!(rec.records, vec![(3, b"c".to_vec())]);
        assert_eq!(rec.skipped_by_snapshot, 2);
        assert_eq!(rec.next_id, 4);
        // Compaction empties the WAL; the snapshot carries the state.
        dir.compact(2).unwrap();
        let rec = dir.recover().unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().id, 2);
        assert!(rec.records.is_empty());
        assert_eq!(rec.next_id, 3);
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_once() {
        let dir = DbDir::open(tempdir("torn")).unwrap();
        {
            let mut wal = dir.open_wal(FsyncPolicy::Group, 1).unwrap();
            wal.append(b"keep me").unwrap();
            wal.commit().unwrap();
        }
        // Simulate a crash mid-append: raw garbage after the record.
        {
            use std::io::Write;
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.wal_path())
                .unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let rec = dir.recover().unwrap();
        assert_eq!(rec.records, vec![(1, b"keep me".to_vec())]);
        assert_eq!(rec.truncated_bytes, 3);
        assert!(rec.torn.is_some());
        // Second recovery is clean — the tail is gone from disk.
        let rec = dir.recover().unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert!(rec.torn.is_none());
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn reset_wipes_history() {
        let dir = DbDir::open(tempdir("reset")).unwrap();
        {
            let mut wal = dir.open_wal(FsyncPolicy::Group, 1).unwrap();
            wal.append(b"old world").unwrap();
            wal.commit().unwrap();
        }
        dir.write_snapshot(1, b"old snapshot").unwrap();
        dir.reset().unwrap();
        let rec = dir.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        fs::remove_dir_all(dir.path()).unwrap();
    }
}
