//! The naive reference engines: exhaustive minimal-model enumeration.
//!
//! By Corollary 2.9, `D |= Φ` iff every **minimal model** of `D` — every
//! generalized topological sort of its order dag — satisfies `Φ`. These
//! engines enumerate the sorts outright. They are exponential (the number
//! of sorts of `n` unrelated constants is the ordered Bell number `a(n)`),
//! exist as the ground-truth oracle against which the polynomial engines
//! are validated, and realize the upper-bound arguments of §3
//! (Proposition 3.1: data complexity in co-NP, a countermodel being the
//! certificate).

use crate::modelcheck;
use crate::verdict::{MonadicVerdict, NaryVerdict};
use indord_core::bitset::PredSet;
use indord_core::database::NormalDatabase;
use indord_core::error::Result;
use indord_core::model::MonadicModel;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::query::DnfQuery;
use indord_core::toposort;

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ` for monadic databases/queries by enumerating
/// every minimal model. Handles `!=` constraints in the database (models
/// merging a `!=` pair are excluded) and in queries (via the backtracking
/// model checker).
pub fn monadic_check(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<MonadicVerdict> {
    let mut verdict = MonadicVerdict::Entailed;
    toposort::for_each_sort(&db.graph, &mut |stage_of, n_stages| {
        // != constraints: vertices mapped to one stage violate them.
        if !db.ne.iter().all(|&(a, b)| stage_of[a] != stage_of[b]) {
            return true;
        }
        let mut labels = vec![PredSet::new(); n_stages];
        for (v, &s) in stage_of.iter().enumerate() {
            labels[s].union_with(&db.labels[v]);
        }
        let m = MonadicModel::new(labels);
        if modelcheck::satisfies(&m, disjuncts) {
            true
        } else {
            verdict = MonadicVerdict::Countermodel(m);
            false
        }
    })?;
    Ok(verdict)
}

/// Counts the minimal models of a monadic database (respecting `!=`).
pub fn count_minimal_models(db: &MonadicDatabase) -> Result<u64> {
    let mut count = 0u64;
    toposort::for_each_sort(&db.graph, &mut |stage_of, _| {
        if db.ne.iter().all(|&(a, b)| stage_of[a] != stage_of[b]) {
            count += 1;
        }
        true
    })?;
    Ok(count)
}

/// Decides `D |= Φ` for arbitrary (n-ary) databases and positive
/// existential queries by enumerating minimal models (Cor. 2.9) and
/// model-checking each (backtracking homomorphism search).
pub fn nary_check(db: &NormalDatabase, query: &DnfQuery) -> Result<NaryVerdict> {
    let mut verdict = NaryVerdict::Entailed;
    toposort::for_each_minimal_model(db, &mut |m| {
        if m.satisfies(query) {
            true
        } else {
            verdict = NaryVerdict::Countermodel(Box::new(m.clone()));
            false
        }
    })?;
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::flexi::FlexiWord;
    use indord_core::ordgraph::OrderGraph;
    use indord_core::parse::{parse_database, parse_query};
    use indord_core::sym::{PredSym, Vocabulary};

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    #[test]
    fn counts_ordered_bell_numbers() {
        // n unrelated vertices have a(n) sorts: 1, 3, 13, 75.
        for (n, want) in [(1usize, 1u64), (2, 3), (3, 13), (4, 75)] {
            let g = OrderGraph::from_dag_edges(n, &[]).unwrap();
            let db = MonadicDatabase::new(g, vec![PredSet::new(); n]);
            assert_eq!(count_minimal_models(&db).unwrap(), want);
        }
    }

    #[test]
    fn ne_constraints_exclude_merges() {
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert_eq!(count_minimal_models(&db).unwrap(), 3);
        db.ne.push((0, 1));
        assert_eq!(count_minimal_models(&db).unwrap(), 2);
    }

    #[test]
    fn monadic_agrees_with_seq_randomized() {
        let mut seed = 0xDEADBEEFCAFEF00Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..200 {
            let n = (rng() % 4 + 1) as usize;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    match rng() % 4 {
                        0 => edges.push((i, j, Lt)),
                        1 => edges.push((i, j, Le)),
                        _ => {}
                    }
                }
            }
            let g = OrderGraph::from_dag_edges(n, &edges).unwrap();
            let labels = (0..n)
                .map(|_| {
                    let bits = rng() % 8;
                    (0..3)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(PredSym::from_index)
                        .collect()
                })
                .collect();
            let db = MonadicDatabase::new(g, labels);
            // random sequential query
            let qlen = (rng() % 3 + 1) as usize;
            let mut fw = FlexiWord::empty();
            for _ in 0..qlen {
                let bits = rng() % 8;
                let label: PredSet = (0..3)
                    .filter(|i| bits & (1 << i) != 0)
                    .map(PredSym::from_index)
                    .collect();
                let rel = if rng() % 2 == 0 { Lt } else { Le };
                fw.push(rel, label);
            }
            let q = MonadicQuery::from_flexiword(&fw);
            let naive = monadic_check(&db, &[q]).unwrap().holds();
            let fast = crate::seq::entails(&db, &fw);
            assert_eq!(naive, fast, "round {round}: db={db:?} fw={fw:?}");
        }
    }

    #[test]
    fn nary_example_same_object_twice() {
        // P(a,u), P(a,v), u < v: "a occurs at two strictly ordered times"
        // is certain; "b occurs" is not.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(a, u); P(a, v); u < v;").unwrap();
        let nd = db.normalize().unwrap();
        let q = parse_query(&mut voc, "exists x s t. P(x, s) & s < t & P(x, t)").unwrap();
        assert!(nary_check(&nd, &q).unwrap().holds());
        voc.obj("b"); // `b` exists in the vocabulary but has no facts
        let q2 = parse_query(&mut voc, "exists s t. P(b, s) & s < t & P(b, t)").unwrap();
        // `b` is unknown — constant guard makes it unsatisfiable…
        // (no fact mentions b, so the guarded query fails)
        assert!(!nary_check(&nd, &q2).unwrap().holds());
    }

    #[test]
    fn nary_indefinite_disjunction() {
        // P(a,u), P(b,v) with u,v unordered: "a before-or-equal b, or b
        // before-or-equal a" is certain, while each disjunct alone is not.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(a, u); P(b, v); u <= u;").unwrap();
        let (gdb, either) = indord_core::parse::parse_query_with_db(
            &mut voc,
            &db,
            "(exists s t. P(a, s) & s <= t & P(b, t)) | (exists s t. P(b, s) & s <= t & P(a, t))",
        )
        .unwrap();
        assert!(nary_check(&gdb.normalize().unwrap(), &either)
            .unwrap()
            .holds());

        let (gdb2, first) = indord_core::parse::parse_query_with_db(
            &mut voc,
            &db,
            "exists s t. P(a, s) & s <= t & P(b, t)",
        )
        .unwrap();
        let v = nary_check(&gdb2.normalize().unwrap(), &first).unwrap();
        assert!(!v.holds());
        // the countermodel places b strictly before a
        let m = v.countermodel().unwrap();
        assert!(!m.satisfies(&first));
    }
}
