//! Prepared queries: everything about a query that does not depend on the
//! database contents, compiled once and reused across evaluations.
//!
//! Van der Meyden's algorithms split cleanly into a per-database phase
//! (normalization, the labelled-dag view — cached by
//! [`indord_core::session::Session`]) and a per-query phase: DNF
//! disjuncts, the object/order split of §4, flexi-word conversion of
//! sequential disjuncts, the `Paths(Φ)` decomposition of Lemma 4.1, the
//! `!=` orientation expansion of §7, and the choice of algorithm each
//! disjunct routes to. A [`PreparedQuery`] captures all of that at
//! [`crate::Engine::prepare`] time, so
//! [`crate::Engine::entails_prepared`] does no query recompilation.
//!
//! The only decisions left to evaluation time are genuinely
//! database-dependent: which disjuncts survive their object parts, and
//! how the §7 routes combine the cached `!=` expansions with the
//! session's sub-scaffold (database `!=` constraints restrict the
//! search region; query `!=` atoms run pre-expanded).

use crate::engine::Strategy;
use crate::ineq;
use indord_core::error::Result;
use indord_core::flexi::FlexiWord;
use indord_core::monadic::{split_object_part, MonadicQuery, ObjectPart};
use indord_core::query::DnfQuery;
use indord_core::sym::Vocabulary;

/// A conjunctive disjunct with at most this many decomposition paths
/// routes to Lemma 4.1 (and gets its `Paths(Φ)` precomputed); beyond it
/// the Theorem 4.7 product search wins and no path cache is stored.
pub(crate) const PATHS_THRESHOLD: u128 = 32;

/// Which algorithm a disjunct (or a whole query) routes to under the
/// automatic strategy, ignoring database-dependent diversions (`!=`
/// handling and object-part filtering are resolved per evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// `SEQ` (Fig. 6): the disjunct is a single flexi-word.
    Seq,
    /// Lemma 4.1 path decomposition + `SEQ` per path.
    Paths,
    /// Theorem 4.7 product search (too many paths to enumerate).
    BoundedWidth,
    /// Theorem 5.3 disjunctive product search.
    Disjunctive,
    /// Naive minimal-model enumeration (n-ary or pinned-naive queries).
    Naive,
}

impl Plan {
    /// Stable lowercase label, matching the fired-route labels of
    /// [`crate::route::FiredRoute`] (used by `EXPLAIN` output).
    pub fn as_str(self) -> &'static str {
        match self {
            Plan::Seq => "seq",
            Plan::Paths => "paths",
            Plan::BoundedWidth => "bounded-width",
            Plan::Disjunctive => "disjunctive",
            Plan::Naive => "naive",
        }
    }
}

/// The §7 `!=`-orientation expansion state of one disjunct.
#[derive(Debug, Clone)]
pub(crate) enum NeExpansion {
    /// The disjunct has no `!=` atoms: it is its own expansion, no copy
    /// is stored (the common case).
    Unneeded,
    /// Precomputed `[<,<=]` orientations.
    Expanded(Vec<MonadicQuery>),
    /// The expansion exceeded the cap; the evaluator falls back to naive
    /// enumeration, as the unprepared pipeline would.
    Capped,
}

/// The §7 `!=` expansion artifacts of a whole plan, computed lazily on
/// the first evaluation that actually reaches a `!=` route — either
/// query `!=` atoms (expanded here) or database `!=` constraints (the
/// evaluator then runs these expansions, trivial when no disjunct has
/// `!=` atoms, on the session's sub-scaffold-restricted search).
#[derive(Debug, Clone)]
pub(crate) struct NePlan {
    /// Per-disjunct expansions, parallel to the plan's `orders`.
    pub(crate) per_disjunct: Vec<NeExpansion>,
    /// Concatenation across all disjuncts; `None` when any was capped.
    pub(crate) full: Option<Vec<MonadicQuery>>,
}

impl NePlan {
    fn compute(orders: &[MonadicQuery], cap: usize) -> Self {
        let per_disjunct: Vec<NeExpansion> = orders
            .iter()
            .map(|order| {
                if order.ne.is_empty() {
                    NeExpansion::Unneeded
                } else {
                    match ineq::eliminate_ne(order, cap) {
                        Ok(qs) => NeExpansion::Expanded(qs),
                        Err(_) => NeExpansion::Capped,
                    }
                }
            })
            .collect();
        let mut full = Vec::new();
        let mut capped = false;
        for (e, order) in per_disjunct.iter().zip(orders) {
            match e {
                NeExpansion::Unneeded => full.push(order.clone()),
                NeExpansion::Expanded(qs) => full.extend(qs.iter().cloned()),
                NeExpansion::Capped => {
                    capped = true;
                    break;
                }
            }
        }
        NePlan {
            per_disjunct,
            full: (!capped).then_some(full),
        }
    }
}

/// The compiled artifacts of one disjunct's order part (the order part
/// itself lives in [`MonadicPlan::orders`] at the same index, its object
/// part in [`MonadicPlan::objects`]).
#[derive(Debug, Clone)]
pub struct PreparedDisjunct {
    /// Flexi-word form, when the order part is sequential.
    pub(crate) flexi: Option<FlexiWord>,
    /// `Paths(Φ)`, precomputed for disjuncts routing to Lemma 4.1.
    pub(crate) paths: Option<Vec<FlexiWord>>,
    /// Number of decomposition paths (computed by DP, never enumerated).
    pub(crate) path_count: u128,
    /// Conjunctive route of this disjunct under the automatic strategy.
    pub(crate) plan: Plan,
}

impl PreparedDisjunct {
    /// Compiles the artifacts of one order part.
    pub(crate) fn new(order: &MonadicQuery) -> Self {
        let flexi = if order.is_sequential() {
            order.to_flexiword().ok()
        } else {
            None
        };
        let path_count = order.path_count();
        // Cache the decomposition only where the evaluator reads it:
        // sequential disjuncts use the flexi-word, and beyond the
        // threshold both Auto and the pinned Paths strategy enumerate
        // lazily (respectively use Thm 4.7).
        let paths =
            (flexi.is_none() && path_count <= PATHS_THRESHOLD).then(|| order.paths().collect());
        let plan = if flexi.is_some() {
            Plan::Seq
        } else if path_count <= PATHS_THRESHOLD {
            Plan::Paths
        } else {
            Plan::BoundedWidth
        };
        PreparedDisjunct {
            flexi,
            paths,
            path_count,
            plan,
        }
    }

    /// The algorithm this disjunct routes to.
    pub fn plan(&self) -> Plan {
        self.plan
    }

    /// The number of Lemma 4.1 decomposition paths.
    pub fn path_count(&self) -> u128 {
        self.path_count
    }
}

/// The compiled monadic pipeline of a query. The object/order split is
/// done at prepare time (it validates the query); the per-disjunct
/// artifacts and `!=` expansions are compiled lazily on the first
/// evaluation that actually takes the monadic route — a query evaluated
/// only against n-ary databases never pays for them.
#[derive(Debug, Clone)]
pub(crate) struct MonadicPlan {
    /// The order parts, in disjunct order (evaluated directly off this
    /// slice in the common all-disjuncts-survive case).
    pub(crate) orders: Vec<MonadicQuery>,
    /// Object parts (§4), parallel to `orders`.
    pub(crate) objects: Vec<ObjectPart>,
    /// Cap for `!=` expansions, from the preparing engine.
    cap: usize,
    /// Lazily-compiled per-disjunct artifacts, parallel to `orders`.
    compiled: std::sync::OnceLock<Vec<PreparedDisjunct>>,
    /// Lazily-computed §7 expansion plan (see [`NePlan`]).
    ne: std::sync::OnceLock<NePlan>,
}

impl MonadicPlan {
    pub(crate) fn new(orders: Vec<MonadicQuery>, objects: Vec<ObjectPart>, cap: usize) -> Self {
        assert_eq!(orders.len(), objects.len());
        MonadicPlan {
            orders,
            objects,
            cap,
            compiled: std::sync::OnceLock::new(),
            ne: std::sync::OnceLock::new(),
        }
    }

    /// The per-disjunct artifacts, compiled on first use and cached for
    /// the lifetime of the prepared query.
    pub(crate) fn compiled(&self) -> &[PreparedDisjunct] {
        self.compiled
            .get_or_init(|| self.orders.iter().map(PreparedDisjunct::new).collect())
    }

    pub(crate) fn from_orders(orders: &[MonadicQuery], cap: usize) -> Self {
        let objects = vec![ObjectPart::default(); orders.len()];
        MonadicPlan::new(orders.to_vec(), objects, cap)
    }

    /// The `!=` expansion artifacts, computed on first use and cached for
    /// the lifetime of the prepared query.
    pub(crate) fn ne_plan(&self) -> &NePlan {
        self.ne
            .get_or_init(|| NePlan::compute(&self.orders, self.cap))
    }
}

/// A query compiled against a vocabulary and strategy: reusable across
/// any number of databases/sessions sharing that vocabulary.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The original query (the naive fallback consumes it directly).
    pub(crate) query: DnfQuery,
    /// Strategy pinned at prepare time.
    pub(crate) strategy: Strategy,
    /// The monadic pipeline, when every query predicate is monadic (and
    /// the strategy is not pinned to naive).
    pub(crate) monadic: Option<MonadicPlan>,
}

impl PreparedQuery {
    /// Compiles `query`. Exposed through [`crate::Engine::prepare`].
    pub(crate) fn compile(
        voc: &Vocabulary,
        query: &DnfQuery,
        strategy: Strategy,
        expansion_cap: usize,
    ) -> Result<PreparedQuery> {
        let monadic = if strategy != Strategy::Naive && monadic_applicable(voc, query) {
            let mut orders = Vec::with_capacity(query.disjuncts.len());
            let mut objects = Vec::with_capacity(query.disjuncts.len());
            for cq in &query.disjuncts {
                let (object, order) = split_object_part(voc, cq)?;
                orders.push(order);
                objects.push(object);
            }
            Some(MonadicPlan::new(orders, objects, expansion_cap))
        } else {
            None
        };
        Ok(PreparedQuery {
            query: query.clone(),
            strategy,
            monadic,
        })
    }

    /// The query this was compiled from.
    pub fn query(&self) -> &DnfQuery {
        &self.query
    }

    /// The strategy pinned at prepare time.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The overall static route (per-disjunct routes via
    /// [`PreparedQuery::disjuncts`]); forces the lazy per-disjunct
    /// compilation for single-disjunct monadic queries.
    pub fn plan(&self) -> Plan {
        match &self.monadic {
            None => Plan::Naive,
            Some(p) if p.orders.len() == 1 => p.compiled()[0].plan,
            Some(_) => Plan::Disjunctive,
        }
    }

    /// True when the monadic pipeline applies.
    pub fn is_monadic(&self) -> bool {
        self.monadic.is_some()
    }

    /// The compiled disjuncts of the monadic pipeline (empty for n-ary
    /// queries); forces the lazy per-disjunct compilation.
    pub fn disjuncts(&self) -> &[PreparedDisjunct] {
        self.monadic.as_ref().map(|p| p.compiled()).unwrap_or(&[])
    }

    /// The §7 `!=` expansion cap this query was prepared under (`None`
    /// for n-ary queries — the naive route has no expansions to cap).
    pub fn expansion_cap(&self) -> Option<usize> {
        self.monadic.as_ref().map(|p| p.cap)
    }

    /// Static per-disjunct introspection for `EXPLAIN`: forces the lazy
    /// per-disjunct and `!=` compilation, exactly as the first
    /// evaluation would, but runs nothing against a database.
    pub fn explain_disjuncts(&self) -> Vec<DisjunctExplain> {
        let Some(plan) = &self.monadic else {
            return Vec::new();
        };
        let ne = plan.ne_plan();
        plan.compiled()
            .iter()
            .zip(&plan.orders)
            .zip(&plan.objects)
            .zip(&ne.per_disjunct)
            .map(|(((d, order), object), exp)| DisjunctExplain {
                route: d.plan,
                path_count: d.path_count,
                order_vars: order.labels.len(),
                ne_atoms: order.ne.len(),
                object_vars: object.requirements.len(),
                ne_expansion: match exp {
                    NeExpansion::Unneeded => NeExplain::Unneeded,
                    NeExpansion::Expanded(qs) => NeExplain::Expanded(qs.len()),
                    NeExpansion::Capped => NeExplain::Capped,
                },
            })
            .collect()
    }
}

/// Wire-friendly summary of one compiled disjunct (see
/// [`PreparedQuery::explain_disjuncts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisjunctExplain {
    /// The algorithm this disjunct routes to under the automatic
    /// strategy.
    pub route: Plan,
    /// Lemma 4.1 decomposition paths (computed by DP, never enumerated).
    pub path_count: u128,
    /// Order variables of the disjunct's order part.
    pub order_vars: usize,
    /// `!=` atoms in the order part.
    pub ne_atoms: usize,
    /// Object variables split off by §4.
    pub object_vars: usize,
    /// The §7 `!=` orientation-expansion outcome.
    pub ne_expansion: NeExplain,
}

/// The `!=` expansion outcome of one disjunct, introspectable for
/// `EXPLAIN` (the internal [`NeExpansion`] carries the expansions
/// themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeExplain {
    /// No `!=` atoms: the disjunct is its own expansion.
    Unneeded,
    /// Expanded into this many `[<,<=]` orientations.
    Expanded(usize),
    /// The expansion exceeded the cap; evaluation falls back to naive
    /// enumeration.
    Capped,
}

impl NeExplain {
    /// Stable label for `EXPLAIN` output.
    pub fn describe(self) -> String {
        match self {
            NeExplain::Unneeded => "unneeded".to_string(),
            NeExplain::Expanded(n) => format!("expanded({n})"),
            NeExplain::Capped => "capped".to_string(),
        }
    }
}

/// True when every proper atom of the query is monadic (order- or
/// object-sorted), i.e. the §4 pipeline applies.
pub(crate) fn monadic_applicable(voc: &Vocabulary, query: &DnfQuery) -> bool {
    query.disjuncts.iter().all(|cq| {
        cq.proper.iter().all(|a| {
            let sig = voc.signature(a.pred);
            sig.is_monadic_order() || sig.is_monadic_object()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::parse::{parse_database, parse_query};

    #[test]
    fn sequential_disjunct_compiles_to_seq_plan() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        assert!(pq.is_monadic());
        assert_eq!(pq.plan(), Plan::Seq);
        let d = &pq.disjuncts()[0];
        assert!(d.flexi.is_some());
        assert_eq!(d.path_count(), 1);
        // Sequential disjuncts evaluate off the flexi-word; no redundant
        // path cache is stored.
        assert!(d.paths.is_none());
    }

    #[test]
    fn paths_cache_present_exactly_for_paths_plan() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); Q(v); R(w); u < v; u < w;").unwrap();
        let q = parse_query(&mut voc, "exists a b c. P(a) & a < b & Q(b) & a < c & R(c)").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        let d = &pq.disjuncts()[0];
        assert_eq!(d.plan(), Plan::Paths);
        assert_eq!(d.paths.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn branching_disjunct_routes_to_paths() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); Q(v); R(w); u < v; u < w;").unwrap();
        let q = parse_query(&mut voc, "exists a b c. P(a) & a < b & Q(b) & a < c & R(c)").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        assert_eq!(pq.plan(), Plan::Paths);
        assert_eq!(pq.disjuncts()[0].path_count(), 2);
    }

    #[test]
    fn disjunction_routes_to_disjunctive() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "(exists s. P(s)) | (exists s. Q(s))").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        assert_eq!(pq.plan(), Plan::Disjunctive);
        assert_eq!(pq.disjuncts().len(), 2);
    }

    #[test]
    fn nary_query_routes_to_naive() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "R(u, v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. R(s, t) & s < t").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        assert!(!pq.is_monadic());
        assert_eq!(pq.plan(), Plan::Naive);
        assert!(pq.disjuncts().is_empty());
    }

    #[test]
    fn ne_expansion_computed_lazily_then_cached() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); P(v); u <= v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & P(t) & s != t").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        let plan = pq.monadic.as_ref().unwrap();
        assert!(plan.ne.get().is_none(), "expansion must be lazy");
        let ne = plan.ne_plan();
        match &ne.per_disjunct[0] {
            NeExpansion::Expanded(qs) => assert_eq!(qs.len(), 2),
            other => panic!("expected computed expansion, got {other:?}"),
        }
        assert_eq!(ne.full.as_ref().unwrap().len(), 2);
        assert!(plan.ne.get().is_some(), "expansion cached after first use");
    }

    #[test]
    fn ne_free_disjunct_stores_no_expansion() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let pq = PreparedQuery::compile(&voc, &q, Strategy::Auto, 4096).unwrap();
        let plan = pq.monadic.as_ref().unwrap();
        assert!(matches!(
            plan.ne_plan().per_disjunct[0],
            NeExpansion::Unneeded
        ));
    }

    #[test]
    fn object_facts_keep_monadic_pipeline_reachable() {
        // The §4 split: a database with definite object facts must still
        // be viewable as a monadic order dag (object facts go through
        // the profile side), so the prepared pipeline can fire.
        use indord_core::monadic::MonadicDatabase;
        let mut voc = Vocabulary::new();
        let db = parse_database(
            &mut voc,
            "pred Emp(obj); pred P(ord); pred Q(ord); Emp(alice); P(u); Q(v); u < v;",
        )
        .unwrap();
        let nd = db.normalize().unwrap();
        let mdb = MonadicDatabase::from_normal(&voc, &nd).expect("object facts are skipped");
        assert_eq!(mdb.len(), 2);
    }
}
