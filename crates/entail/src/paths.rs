//! Conjunctive monadic entailment via path decomposition (Lemma 4.1).
//!
//! `D |= Φ` iff `D |= p` for every path `p ∈ Paths(Φ)` — so a conjunctive
//! monadic query is decided by running [`crate::seq`] once per path. For a
//! *fixed* query the path set is fixed, giving **linear-time data
//! complexity** (Corollary 4.4); but the number of paths can be exponential
//! in `|Φ|`, which is why combined complexity needs Theorem 4.7 instead
//! (and why the co-NP lower bound of Theorem 4.6 is consistent with this
//! algorithm).

use crate::seq;
use crate::verdict::MonadicVerdict;
use indord_core::flexi::FlexiWord;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};

/// Decides `D |= Φ` for a conjunctive monadic query by checking every path.
pub fn entails(db: &MonadicDatabase, q: &MonadicQuery) -> bool {
    q.paths().all(|p| seq::entails(db, &p))
}

/// Decides `D |= Φ`, returning the countermodel of the first failing path.
///
/// A model falsifying any single path falsifies `Φ` itself, since every
/// model satisfying `Φ` satisfies each of its paths.
pub fn check(db: &MonadicDatabase, q: &MonadicQuery) -> MonadicVerdict {
    for p in q.paths() {
        if let MonadicVerdict::Countermodel(m) = seq::check(db, &p) {
            return MonadicVerdict::Countermodel(m);
        }
    }
    MonadicVerdict::Entailed
}

/// As [`check`], over a path decomposition computed once at prepare time
/// (the prepared-query pipeline caches `Paths(Φ)` next to the query).
pub fn check_precompiled(db: &MonadicDatabase, paths: &[FlexiWord]) -> MonadicVerdict {
    for p in paths {
        if let MonadicVerdict::Countermodel(m) = seq::check(db, p) {
            return MonadicVerdict::Countermodel(m);
        }
    }
    MonadicVerdict::Entailed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelcheck;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::bitset::PredSet;
    use indord_core::flexi::FlexiWord;
    use indord_core::ordgraph::OrderGraph;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn fig5_query() -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (1, 2, Lt), (1, 3, Le)]).unwrap();
        MonadicQuery::new(g, vec![ps(&[0, 1]), ps(&[0]), ps(&[2]), ps(&[3])])
    }

    #[test]
    fn fig5_query_against_witnessing_database() {
        // A width-one database satisfying both paths of the Fig. 5 query.
        let db = FlexiWord::word(vec![ps(&[0, 1]), ps(&[0]), ps(&[2, 3])]).to_database();
        assert!(entails(&db, &fig5_query()));
        // Remove S from the last point: the <=-path fails.
        let db = FlexiWord::word(vec![ps(&[0, 1]), ps(&[0]), ps(&[2])]).to_database();
        assert!(!entails(&db, &fig5_query()));
    }

    #[test]
    fn branching_query_needs_all_branches() {
        // Query: t0 < t1, t0 < t2 with labels P; Q; R — a fork.
        let g = OrderGraph::from_dag_edges(3, &[(0, 1, Lt), (0, 2, Lt)]).unwrap();
        let q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2])]);
        // D1: P < Q only — missing the R branch.
        let d1 = FlexiWord::word(vec![ps(&[0]), ps(&[1])]).to_database();
        assert!(!entails(&d1, &q));
        // D2: P < {Q,R} satisfies both paths.
        let d2 = FlexiWord::word(vec![ps(&[0]), ps(&[1, 2])]).to_database();
        assert!(entails(&d2, &q));
        // D3: P < Q and P < R on separate chains from a shared root.
        let g3 = OrderGraph::from_dag_edges(3, &[(0, 1, Lt), (0, 2, Lt)]).unwrap();
        let d3 = MonadicDatabase::new(g3, vec![ps(&[0]), ps(&[1]), ps(&[2])]);
        assert!(entails(&d3, &q));
    }

    #[test]
    fn paths_countermodels_verify() {
        let q = fig5_query();
        let db = FlexiWord::word(vec![ps(&[0, 1]), ps(&[0]), ps(&[2])]).to_database();
        match check(&db, &q) {
            MonadicVerdict::Entailed => panic!("expected countermodel"),
            MonadicVerdict::Countermodel(m) => {
                assert!(modelcheck::is_model_of(&m, &db));
                assert!(!modelcheck::satisfies_conjunct(&m, &q));
            }
        }
    }

    #[test]
    fn le_only_diamond() {
        // Query diamond with <= edges collapses onto a single point.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Le), (0, 2, Le), (1, 3, Le), (2, 3, Le)])
            .unwrap();
        let q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[3])]);
        let db = FlexiWord::word(vec![ps(&[0, 1, 2, 3])]).to_database();
        assert!(entails(&db, &q));
        let db2 = FlexiWord::word(vec![ps(&[0, 1]), ps(&[2, 3])]).to_database();
        // Path P <= Q <= S: points 0,0?,.. Q at point 0, S at point 1: ok.
        // Path P <= R <= S: R only at point 1, S at 1: ok.
        assert!(entails(&db2, &q));
        let db3 = FlexiWord::word(vec![ps(&[0, 3]), ps(&[1, 2])]).to_database();
        // Path P <= Q <= S: S only at point 0, Q only at point 1: fails.
        assert!(!entails(&db3, &q));
    }

    #[test]
    fn empty_query_entailed_by_anything() {
        let g = OrderGraph::from_dag_edges(0, &[]).unwrap();
        let q = MonadicQuery::new(g, vec![]);
        let db = FlexiWord::word(vec![ps(&[0])]).to_database();
        assert!(entails(&db, &q));
    }

    use indord_core::monadic::MonadicDatabase;
}
