//! The `SEQ` algorithm (Fig. 6 of the paper): entailment of **sequential**
//! monadic queries by arbitrary monadic databases.
//!
//! `SEQ(D, p)` decides `D |= p` for a flexi-word `p` in time
//! `O(|D|·|p|·|Pred|)` by the three-case recursion of Lemma 4.2:
//!
//! * **Case I** — `p = aσ` and some minimal vertex `u` of `D` has
//!   `a ⊄ D[u]`: then `D |= p` iff `D \ {u} |= p`.
//! * **Case II** — `p = a<p'` and every minimal vertex fits `a`: then
//!   `D |= p` iff `D \ minor(D) |= p'`.
//! * **Case III** — `p = a<=p'` and every minimal vertex fits `a`: then
//!   `D |= p` iff `D |= p'`.
//!
//! When `p` is a single letter fitting every minimal vertex the answer is
//! *yes* (every minimal model's first point contains some minimal vertex's
//! label); when `D` runs out first the answer is *no*, and the sequence of
//! deleted labels, read in deletion order, is a **countermodel** — a model
//! of `D` falsifying `p` (the modification noted after Lemma 4.2).

use crate::verdict::MonadicVerdict;
use indord_core::atom::OrderRel;
use indord_core::bitset::PredSet;
use indord_core::flexi::FlexiWord;
use indord_core::model::MonadicModel;
use indord_core::monadic::MonadicDatabase;

/// Decides `D |= p` (see module docs). Equivalent to
/// `check(db, p).holds()` but skips countermodel bookkeeping.
pub fn entails(db: &MonadicDatabase, p: &FlexiWord) -> bool {
    run(db, p, false).holds()
}

/// Decides `D |= p`, producing a countermodel on failure.
pub fn check(db: &MonadicDatabase, p: &FlexiWord) -> MonadicVerdict {
    run(db, p, true)
}

struct SeqState<'a> {
    db: &'a MonadicDatabase,
    live: Vec<bool>,
    /// Live in-degree of each vertex.
    indeg: Vec<usize>,
    /// Current minimal vertices (lazily pruned: dead entries are skipped).
    min_list: Vec<usize>,
    live_count: usize,
    /// Per-phase mark stamps for the minor-deletion trick (§4, the
    /// implementation discussion after Lemma 4.2).
    stamp: Vec<u32>,
    phase: u32,
}

impl<'a> SeqState<'a> {
    fn new(db: &'a MonadicDatabase) -> Self {
        let n = db.graph.len();
        let indeg: Vec<usize> = (0..n).map(|v| db.graph.predecessors(v).len()).collect();
        let min_list = (0..n).filter(|&v| indeg[v] == 0).collect();
        SeqState {
            db,
            live: vec![true; n],
            indeg,
            min_list,
            live_count: n,
            stamp: vec![0; n],
            phase: 0,
        }
    }

    /// Deletes vertex `u`; newly minimal successors are appended to
    /// `min_list`, and the unmarked ones (minor candidates for the current
    /// phase) are appended to `newly_minor`.
    fn delete(&mut self, u: usize, newly_minor: &mut Vec<usize>) {
        debug_assert!(self.live[u]);
        self.live[u] = false;
        self.live_count -= 1;
        for &(v, rel) in self.db.graph.successors(u) {
            let v = v as usize;
            if !self.live[v] {
                continue;
            }
            if rel == OrderRel::Lt {
                self.stamp[v] = self.phase;
            }
            self.indeg[v] -= 1;
            if self.indeg[v] == 0 {
                self.min_list.push(v);
                if self.stamp[v] != self.phase {
                    newly_minor.push(v);
                }
            }
        }
    }
}

fn run(db: &MonadicDatabase, p: &FlexiWord, want_model: bool) -> MonadicVerdict {
    debug_assert!(db.ne.is_empty(), "SEQ is defined for [<,<=] databases");
    let mut st = SeqState::new(db);
    let mut prefix: Vec<PredSet> = Vec::new();
    let mut pos = 0usize;

    loop {
        if pos == p.len() {
            return MonadicVerdict::Entailed;
        }
        if st.live_count == 0 {
            // Remaining letters cannot be placed: the deleted labels, in
            // order, form a model of D falsifying p.
            return if want_model {
                MonadicVerdict::Countermodel(MonadicModel::new(prefix))
            } else {
                MonadicVerdict::Countermodel(MonadicModel::new(Vec::new()))
            };
        }
        let a = &p.labels()[pos];

        // Case I: delete minimal vertices that do not fit `a`. Scanning with
        // a stable index is safe: vertices already scanned fit `a`, and `a`
        // does not change within this loop.
        st.phase += 1; // fresh marks: deletions here are of minimal vertices
        let mut i = 0;
        let mut deleted_any = false;
        while i < st.min_list.len() {
            let u = st.min_list[i];
            if !st.live[u] {
                st.min_list.swap_remove(i);
                continue;
            }
            if a.is_subset(&st.db.labels[u]) {
                i += 1;
                continue;
            }
            st.min_list.swap_remove(i);
            if want_model {
                prefix.push(st.db.labels[u].clone());
            }
            st.delete(u, &mut Vec::new());
            deleted_any = true;
            // Newly minimal vertices were appended after `i`; do not reset.
        }
        if deleted_any && st.live_count == 0 {
            continue; // loop top handles exhaustion
        }
        // All live minimal vertices (if any) fit `a`.
        if st.live_count == 0 {
            continue;
        }
        if pos + 1 == p.len() {
            // Single remaining letter fitting all minimal vertices.
            return MonadicVerdict::Entailed;
        }
        match p.rels()[pos] {
            OrderRel::Le => {
                // Case III: advance the query only.
                pos += 1;
            }
            OrderRel::Lt => {
                // Case II: delete the minor vertices, all mapping to one
                // point of the countermodel.
                st.phase += 1;
                let mut point = PredSet::new();
                let mut work: Vec<usize> = Vec::new();
                let mut j = 0;
                while j < st.min_list.len() {
                    let u = st.min_list[j];
                    if !st.live[u] {
                        st.min_list.swap_remove(j);
                        continue;
                    }
                    if st.stamp[u] != st.phase {
                        work.push(u);
                    }
                    j += 1;
                }
                while let Some(u) = work.pop() {
                    if !st.live[u] || st.stamp[u] == st.phase {
                        continue;
                    }
                    if want_model {
                        point.union_with(&st.db.labels[u]);
                    }
                    // A deleted vertex leaves min_list lazily (live=false).
                    st.delete(u, &mut work);
                }
                if want_model {
                    prefix.push(point);
                }
                pos += 1;
            }
            OrderRel::Ne => unreachable!("flexi-words never contain !="),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::ordgraph::OrderGraph;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn word_db(labels: &[&[usize]]) -> MonadicDatabase {
        FlexiWord::word(labels.iter().map(|l| ps(l)).collect()).to_database()
    }

    fn word(labels: &[&[usize]]) -> FlexiWord {
        FlexiWord::word(labels.iter().map(|l| ps(l)).collect())
    }

    #[test]
    fn word_entailment_is_subword() {
        let db = word_db(&[&[0, 1], &[2], &[0, 2]]);
        assert!(entails(&db, &word(&[&[0], &[2]])));
        assert!(entails(&db, &word(&[&[0, 1], &[2], &[0]])));
        assert!(!entails(&db, &word(&[&[2], &[1]])));
        assert!(!entails(&db, &word(&[&[0], &[0], &[0]])));
        assert!(entails(&db, &FlexiWord::empty()));
    }

    #[test]
    fn matches_subword_relation_on_random_words() {
        // Prop 4.5: for words, q |= p iff p is a subword of q.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..500 {
            let mk = |rng: &mut dyn FnMut() -> u64| {
                let len = (rng() % 5) as usize;
                let labels: Vec<PredSet> = (0..len)
                    .map(|_| {
                        let bits = rng() % 8;
                        (0..3)
                            .filter(|i| bits & (1 << i) != 0)
                            .map(PredSym::from_index)
                            .collect()
                    })
                    .collect();
                FlexiWord::word(labels)
            };
            let q = mk(&mut rng);
            let p = mk(&mut rng);
            assert_eq!(
                entails(&q.to_database(), &p),
                p.is_subword_of(&q),
                "q={q:?} p={p:?}"
            );
        }
    }

    #[test]
    fn le_in_query_allows_equality() {
        // D: {P} < {Q}; query {P} <= {Q}: needs a model point ≥ P-point
        // carrying Q — holds (the next point). Query {P,Q} fails.
        let db = word_db(&[&[0], &[1]]);
        let q = FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![Le]);
        assert!(entails(&db, &q));
        assert!(!entails(&db, &word(&[&[0, 1]])));
    }

    #[test]
    fn le_in_database_creates_indefiniteness() {
        // D: P(u), Q(v), u <= v. Models: P then Q, or PQ together.
        // Query {P} < {Q} fails (the merged model falsifies it);
        // query {P} <= {Q} holds.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(!entails(&db, &word(&[&[0], &[1]])));
        let q = FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![Le]);
        assert!(entails(&db, &q));
    }

    #[test]
    fn unordered_database_vertices() {
        // D: P(u), Q(v), unordered. Neither {P}<{Q} nor {Q}<{P} holds,
        // but {P} does and {Q} does.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(!entails(&db, &word(&[&[0], &[1]])));
        assert!(!entails(&db, &word(&[&[1], &[0]])));
        assert!(entails(&db, &word(&[&[0]])));
        assert!(entails(&db, &word(&[&[1]])));
        // {P,Q} fails: the model separating u and v has no PQ point.
        assert!(!entails(&db, &word(&[&[0, 1]])));
    }

    #[test]
    fn empty_database_entails_only_empty_query() {
        let g = OrderGraph::from_dag_edges(0, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![]);
        assert!(entails(&db, &FlexiWord::empty()));
        assert!(!entails(&db, &word(&[&[0]])));
    }

    #[test]
    fn countermodels_are_genuine() {
        // Whenever SEQ says "no", the countermodel must (a) falsify the
        // query and (b) be a model of the database.
        let cases: Vec<(MonadicDatabase, FlexiWord)> = vec![
            (word_db(&[&[0], &[1]]), word(&[&[1], &[0]])),
            (word_db(&[&[0, 1], &[2]]), word(&[&[0], &[0]])),
            (
                MonadicDatabase::new(
                    OrderGraph::from_dag_edges(2, &[]).unwrap(),
                    vec![ps(&[0]), ps(&[1])],
                ),
                word(&[&[0], &[1]]),
            ),
            (
                MonadicDatabase::new(
                    OrderGraph::from_dag_edges(3, &[(0, 1, Le), (1, 2, Lt)]).unwrap(),
                    vec![ps(&[0]), ps(&[1]), ps(&[0])],
                ),
                word(&[&[0], &[1], &[0], &[0]]),
            ),
        ];
        for (db, p) in cases {
            match check(&db, &p) {
                MonadicVerdict::Entailed => panic!("expected failure for {p:?}"),
                MonadicVerdict::Countermodel(m) => {
                    let q = p.to_query();
                    assert!(
                        !q.holds_in_naive(&m),
                        "countermodel satisfies the query: {m:?}"
                    );
                    // the database, read as a query, must hold in m
                    let dbq = indord_core::monadic::MonadicQuery::new(
                        db.graph.as_ref().clone(),
                        db.labels.clone(),
                    );
                    assert!(
                        dbq.holds_in_naive(&m),
                        "countermodel is not a model of D: {m:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn example_2_4_database_entailments() {
        // u < v < w, u <= t <= w with labels P,Q,R,S.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (1, 2, Lt), (0, 3, Le), (3, 2, Le)])
            .unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[3])]);
        // P < Q < R holds along the strict chain.
        assert!(entails(&db, &word(&[&[0], &[1], &[2]])));
        // S <= R holds (t <= w).
        let q = FlexiWord::new(vec![ps(&[3]), ps(&[2])], vec![Le]);
        assert!(entails(&db, &q));
        // P < S fails: t may share u's point.
        assert!(!entails(&db, &word(&[&[0], &[3]])));
        // P <= S holds.
        let q = FlexiWord::new(vec![ps(&[0]), ps(&[3])], vec![Le]);
        assert!(entails(&db, &q));
        // S < R fails? t <= w allows t = w. So yes, fails.
        assert!(!entails(&db, &word(&[&[3], &[2]])));
    }

    #[test]
    fn minor_deletion_marks_do_not_leak_across_phases() {
        // Chain 0 <1 with query needing two strict steps over singleton
        // labels; phase marks must reset so the second deletion phase can
        // remove the vertex marked in the first.
        let db = word_db(&[&[0], &[0], &[0]]);
        assert!(entails(&db, &word(&[&[0], &[0], &[0]])));
        assert!(!entails(&db, &word(&[&[0], &[0], &[0], &[0]])));
    }
}
