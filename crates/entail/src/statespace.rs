//! Per-search state arena for the Theorem 5.3 disjunctive engine.
//!
//! A search state `(S, T, u₁…uₙ, x₁…xₙ)` is represented as a fixed-size
//! [`StateKey`] — `(u32, u32, u64, u64)`, `Copy`, 24 bytes:
//!
//! * `S` and `T` are antichain ids from the session's
//!   [`indord_core::scaffold::AntichainArena`];
//! * the pointer tuple `u₁…uₙ` is bit-packed into one `u64` by a
//!   [`PtrCodec`] when `Σᵢ ⌈log₂|Φᵢ|⌉ ≤ 64` (essentially always), and
//!   interned into a side table otherwise;
//! * the `x`-bits were a packed `u64` already.
//!
//! Keys are deduplicated through an [`FxHashMap`] (one multiply per word
//! instead of SipHash rounds), and each state records how it was reached
//! as a compact parent *index* plus the `(S, T)` pair index whose label
//! was committed on the incoming edge — countermodel reconstruction walks
//! `u32`s instead of cloning whole states into a parent map.

use indord_core::error::{CoreError, Result};
use indord_core::fxhash::FxHashMap;
use indord_core::monadic::MonadicQuery;

/// Sentinel index: "no parent" / "no committed label on this edge".
pub const NONE: u32 = u32::MAX;

/// A packed search state. `s`/`t` are interned antichain ids, `ptr` the
/// packed (or interned) pointer tuple, `x` the per-disjunct `<`-bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateKey {
    /// Antichain id of `S`.
    pub s: u32,
    /// Antichain id of `T`.
    pub t: u32,
    /// Pointer tuple, through the search's [`PtrCodec`].
    pub ptr: u64,
    /// `xⱼ = 1` iff pointer `j` was advanced through a `<` edge whose
    /// source maps to the current point.
    pub x: u64,
}

/// Bit-packs a pointer tuple `u₁…uₙ` into one `u64`: `⌈log₂|Φⱼ|⌉` bits
/// per disjunct. When the widths don't fit in 64 bits (only reachable
/// with many large disjuncts), falls back to interning tuples in a side
/// table — the `u64` then carries the tuple's dense id.
#[derive(Debug)]
pub enum PtrCodec {
    /// Direct bit-packing; `bits[j]` is the width of slot `j`.
    Packed {
        /// Bit width per disjunct slot.
        bits: Vec<u8>,
    },
    /// Fallback interner for oversized tuples.
    Interned {
        /// Tuple → dense id.
        ids: FxHashMap<Box<[u32]>, u64>,
        /// Dense id → tuple.
        tuples: Vec<Box<[u32]>>,
    },
}

impl PtrCodec {
    /// Chooses the packing for the given disjuncts.
    pub fn new(disjuncts: &[MonadicQuery]) -> Self {
        let bits: Vec<u8> = disjuncts
            .iter()
            .map(|q| {
                let n = q.graph.len().max(1);
                (usize::BITS - (n - 1).leading_zeros()) as u8
            })
            .collect();
        let total: u32 = bits.iter().map(|&b| u32::from(b)).sum();
        if total <= 64 {
            PtrCodec::Packed { bits }
        } else {
            PtrCodec::Interned {
                ids: FxHashMap::default(),
                tuples: Vec::new(),
            }
        }
    }

    /// Packs a pointer tuple.
    pub fn pack(&mut self, ptrs: &[u32]) -> u64 {
        match self {
            PtrCodec::Packed { bits } => {
                debug_assert_eq!(ptrs.len(), bits.len());
                let mut packed = 0u64;
                let mut shift = 0u32;
                for (&p, &b) in ptrs.iter().zip(bits.iter()) {
                    // Zero-width slots (single-vertex disjuncts) carry no
                    // bits — and must not shift, since `shift` can sit at
                    // 64 once the preceding slots fill the word exactly.
                    if b == 0 {
                        debug_assert_eq!(p, 0, "single-vertex pointer is 0");
                        continue;
                    }
                    debug_assert!(u64::from(p) < (1u64 << b), "pointer fits its slot");
                    packed |= u64::from(p) << shift;
                    shift += u32::from(b);
                }
                packed
            }
            PtrCodec::Interned { ids, tuples } => {
                if let Some(&id) = ids.get(ptrs) {
                    return id;
                }
                let id = tuples.len() as u64;
                let boxed: Box<[u32]> = ptrs.into();
                ids.insert(boxed.clone(), id);
                tuples.push(boxed);
                id
            }
        }
    }

    /// Unpacks a tuple into `out` (cleared first).
    pub fn unpack_into(&self, packed: u64, out: &mut Vec<u32>) {
        out.clear();
        match self {
            PtrCodec::Packed { bits } => {
                let mut rest = packed;
                for &b in bits {
                    if b == 0 {
                        out.push(0);
                    } else {
                        let mask = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
                        out.push((rest & mask) as u32);
                        rest = if b >= 64 { 0 } else { rest >> b };
                    }
                }
            }
            PtrCodec::Interned { tuples, .. } => {
                out.extend_from_slice(&tuples[packed as usize]);
            }
        }
    }
}

/// One deduplicated state: its key plus the incoming edge that first
/// reached it, as compact indices.
#[derive(Debug, Clone, Copy)]
struct Node {
    key: StateKey,
    /// Index of the parent node, [`NONE`] for initial states.
    parent: u32,
    /// Pair index (into the search's pair table) whose label `a(S,T)` was
    /// committed on the incoming edge, [`NONE`] for plain edges.
    commit_pair: u32,
}

/// The deduplicated states of one search run, with parent links.
#[derive(Debug, Default)]
pub struct StateArena {
    index: FxHashMap<StateKey, u32>,
    nodes: Vec<Node>,
}

impl StateArena {
    /// Number of distinct states interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no state has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns `key` reached from `parent` (with `commit_pair` carrying
    /// the committed pair index, or [`NONE`]); returns the new node index,
    /// or `None` if the state was already known (its first-visit parent
    /// wins, as in the pre-interning engine).
    pub fn intern(&mut self, key: StateKey, parent: u32, commit_pair: u32) -> Option<u32> {
        if self.index.contains_key(&key) {
            return None;
        }
        let i = u32::try_from(self.nodes.len()).expect("state arena overflow");
        indord_core::counters::count_state_expanded();
        self.index.insert(key, i);
        self.nodes.push(Node {
            key,
            parent,
            commit_pair,
        });
        Some(i)
    }

    /// Index of an already-interned key.
    pub fn lookup(&self, key: &StateKey) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// The key of node `i`.
    pub fn key(&self, i: u32) -> StateKey {
        self.nodes[i as usize].key
    }

    /// The incoming edge of node `i`: `(parent, commit_pair)`.
    pub fn step(&self, i: u32) -> (u32, u32) {
        let n = &self.nodes[i as usize];
        (n.parent, n.commit_pair)
    }

    /// Errors with the typed cap when more than `cap` states exist.
    pub fn check_cap(&self, cap: usize, what: &str) -> Result<()> {
        if self.nodes.len() > cap {
            return Err(CoreError::CapExceeded {
                what: what.to_string(),
                limit: cap,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::bitset::PredSet;
    use indord_core::ordgraph::OrderGraph;

    fn query_of_size(n: usize) -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(n, &[]).unwrap();
        MonadicQuery::new(g, vec![PredSet::new(); n])
    }

    #[test]
    fn packed_roundtrip() {
        let qs = vec![query_of_size(1), query_of_size(3), query_of_size(8)];
        let mut codec = PtrCodec::new(&qs);
        assert!(matches!(codec, PtrCodec::Packed { .. }));
        let mut out = Vec::new();
        for tuple in [[0u32, 0, 0], [0, 2, 7], [0, 1, 5]] {
            let p = codec.pack(&tuple);
            codec.unpack_into(p, &mut out);
            assert_eq!(out, tuple);
        }
        // Distinct tuples pack distinctly.
        assert_ne!(codec.pack(&[0, 2, 7]), codec.pack(&[0, 1, 7]));
    }

    #[test]
    fn exactly_64_bits_with_trailing_zero_width_slot() {
        // 16 slots × 4 bits fill the word exactly; a trailing
        // single-vertex slot (0 bits) must not shift by 64.
        let mut qs: Vec<MonadicQuery> = (0..16).map(|_| query_of_size(16)).collect();
        qs.push(query_of_size(1));
        let mut codec = PtrCodec::new(&qs);
        assert!(matches!(codec, PtrCodec::Packed { .. }));
        let tuple: Vec<u32> = (0..16).map(|i| (i * 5) % 16).chain([0]).collect();
        let packed = codec.pack(&tuple);
        let mut out = Vec::new();
        codec.unpack_into(packed, &mut out);
        assert_eq!(out, tuple);
    }

    #[test]
    fn oversized_tuples_fall_back_to_interning() {
        // 22 disjuncts × 3 bits = 66 bits > 64.
        let qs: Vec<MonadicQuery> = (0..22).map(|_| query_of_size(5)).collect();
        let mut codec = PtrCodec::new(&qs);
        assert!(matches!(codec, PtrCodec::Interned { .. }));
        let a: Vec<u32> = (0..22).map(|i| i % 5).collect();
        let b: Vec<u32> = (0..22).map(|i| (i + 1) % 5).collect();
        let (pa, pb) = (codec.pack(&a), codec.pack(&b));
        assert_ne!(pa, pb);
        assert_eq!(codec.pack(&a), pa, "interning is stable");
        let mut out = Vec::new();
        codec.unpack_into(pa, &mut out);
        assert_eq!(out, a);
        codec.unpack_into(pb, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn arena_dedups_and_walks_parents() {
        let mut arena = StateArena::default();
        let k0 = StateKey {
            s: 0,
            t: 1,
            ptr: 0,
            x: 0,
        };
        let k1 = StateKey { x: 1, ..k0 };
        let i0 = arena.intern(k0, NONE, NONE).unwrap();
        let i1 = arena.intern(k1, i0, 7).unwrap();
        assert_eq!(arena.intern(k1, i0, NONE), None, "dedup");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.lookup(&k1), Some(i1));
        assert_eq!(arena.step(i1), (i0, 7));
        assert_eq!(arena.step(i0), (NONE, NONE));
        assert!(arena.check_cap(2, "states").is_ok());
        assert!(matches!(
            arena.check_cap(1, "states"),
            Err(CoreError::CapExceeded { limit: 1, .. })
        ));
    }
}
