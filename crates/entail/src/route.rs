//! Route reporting: which decision procedure actually fired.
//!
//! A prepared query's [`Plan`](crate::prepared::Plan) says which route
//! the compiler *chose*; this module records which route an evaluation
//! *took* — the two can differ (object-part filtering prunes disjuncts,
//! `!=` expansions fall back to naive past the Thm 5.3 caps, an n-ary
//! database bypasses the monadic pipeline entirely). The serving layer
//! reads the fired route after each evaluation to label its per-route
//! latency histograms and `TRACE` output.
//!
//! Like [`indord_core::counters`], the mechanism is a thread-local
//! cell: an evaluation runs start-to-finish on one thread, so the
//! executor stores the route as it dispatches and the caller collects
//! it with [`take`] immediately after.

use std::cell::Cell;

/// The decision procedure an evaluation dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FiredRoute {
    /// The empty (false) query — decided by consistency alone.
    Empty,
    /// An object-part-only disjunct held; no order reasoning ran.
    Object,
    /// `SEQ` on a sequential flexi-word (Lemma 4.2).
    Seq,
    /// The `Paths(Φ)` decomposition (Lemma 4.1).
    Paths,
    /// The width-bounded product search (Thm 4.7).
    BoundedWidth,
    /// The Thm 5.3 disjunctive scaffold search.
    Disjunctive,
    /// The §7 `!=` route (expansion + restricted Thm 5.3 search).
    Ne,
    /// Minimal-model enumeration — pinned, `!=` past the expansion
    /// caps, or an n-ary database.
    Naive,
}

impl FiredRoute {
    /// Stable lowercase label, used as the `route` dimension of the
    /// serving metrics and in `TRACE`/`EXPLAIN` output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FiredRoute::Empty => "empty",
            FiredRoute::Object => "object",
            FiredRoute::Seq => "seq",
            FiredRoute::Paths => "paths",
            FiredRoute::BoundedWidth => "bounded-width",
            FiredRoute::Disjunctive => "disjunctive",
            FiredRoute::Ne => "ne",
            FiredRoute::Naive => "naive",
        }
    }

    /// Every route label, in rendering order (the metrics registry
    /// pre-creates one histogram per label so scrapes see stable rows).
    pub const ALL: [FiredRoute; 8] = [
        FiredRoute::Empty,
        FiredRoute::Object,
        FiredRoute::Seq,
        FiredRoute::Paths,
        FiredRoute::BoundedWidth,
        FiredRoute::Disjunctive,
        FiredRoute::Ne,
        FiredRoute::Naive,
    ];
}

thread_local! {
    static LAST_ROUTE: Cell<Option<FiredRoute>> = const { Cell::new(None) };
}

/// Records the route the current evaluation dispatched to. Later
/// records win: a fallback (e.g. `!=` expansion overflowing to naive)
/// overwrites the route that delegated to it.
#[inline]
pub(crate) fn record(route: FiredRoute) {
    LAST_ROUTE.with(|c| c.set(Some(route)));
}

/// Takes the route recorded by the most recent evaluation on this
/// thread, clearing it. `None` when nothing ran since the last take.
#[must_use]
pub fn take() -> Option<FiredRoute> {
    LAST_ROUTE.with(Cell::take)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_records_win_and_take_clears() {
        record(FiredRoute::Disjunctive);
        record(FiredRoute::Naive);
        assert_eq!(take(), Some(FiredRoute::Naive));
        assert_eq!(take(), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            FiredRoute::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(labels.len(), FiredRoute::ALL.len());
    }
}
