//! Verdict types returned by the engines.

use indord_core::model::{FiniteModel, MonadicModel};

/// The outcome of a monadic entailment check: either the query is certain
/// (holds in every model), or a countermodel witnesses failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonadicVerdict {
    /// `D |= Φ`.
    Entailed,
    /// `D |≠ Φ`: the contained model supports `D` and falsifies `Φ`.
    Countermodel(MonadicModel),
}

impl MonadicVerdict {
    /// True when the query is entailed.
    pub fn holds(&self) -> bool {
        matches!(self, MonadicVerdict::Entailed)
    }

    /// The countermodel, when entailment fails.
    pub fn countermodel(&self) -> Option<&MonadicModel> {
        match self {
            MonadicVerdict::Entailed => None,
            MonadicVerdict::Countermodel(m) => Some(m),
        }
    }

    /// Converts to the countermodel, when entailment fails.
    pub fn into_countermodel(self) -> Option<MonadicModel> {
        match self {
            MonadicVerdict::Entailed => None,
            MonadicVerdict::Countermodel(m) => Some(m),
        }
    }
}

/// The outcome of an n-ary entailment check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaryVerdict {
    /// `D |= Φ`.
    Entailed,
    /// `D |≠ Φ` with a witnessing minimal model.
    Countermodel(Box<FiniteModel>),
}

impl NaryVerdict {
    /// True when the query is entailed.
    pub fn holds(&self) -> bool {
        matches!(self, NaryVerdict::Entailed)
    }

    /// The countermodel, when entailment fails.
    pub fn countermodel(&self) -> Option<&FiniteModel> {
        match self {
            NaryVerdict::Entailed => None,
            NaryVerdict::Countermodel(m) => Some(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(MonadicVerdict::Entailed.holds());
        assert!(MonadicVerdict::Entailed.countermodel().is_none());
        let cm = MonadicVerdict::Countermodel(MonadicModel::new(vec![]));
        assert!(!cm.holds());
        assert!(cm.countermodel().is_some());
        assert!(cm.into_countermodel().is_some());
    }
}
