//! Conjunctive monadic entailment on bounded-width databases (Theorem 4.7).
//!
//! The decision `D |= Φ` is reduced to reachability in a directed graph
//! whose vertices are tuples `(S, u)` of an antichain `S` of the database
//! dag and a vertex `u` of the query dag. A tuple represents a possible
//! call `SEQ(D↾S, suffix-of-path-starting-at-u)`; the query path is chosen
//! nondeterministically edge by edge, so one search covers *all* paths of
//! `Φ` without enumerating them. `D |≠ Φ` iff a tuple `(∅, v)` is reachable
//! from an initial tuple `(min(D), u₀)` with `u₀` minimal in `Φ`.
//!
//! With database width `k`, antichains have at most `k` elements and the
//! search runs in `O(|D|^{k+1}·|Φ|)`.

use crate::seq;
use crate::verdict::MonadicVerdict;
use indord_core::atom::OrderRel;
use indord_core::bitset::BitSet;
use indord_core::flexi::FlexiWord;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use std::collections::HashMap;

/// Decides `D |= Φ` for a conjunctive monadic query.
pub fn entails(db: &MonadicDatabase, q: &MonadicQuery) -> bool {
    search(db, q).is_none()
}

/// Decides `D |= Φ`, producing a countermodel on failure.
///
/// The countermodel is obtained by replaying `SEQ` (with countermodel
/// construction) on the failing query path discovered by the search.
pub fn check(db: &MonadicDatabase, q: &MonadicQuery) -> MonadicVerdict {
    match search(db, q) {
        None => MonadicVerdict::Entailed,
        Some(prefix) => {
            // Extend the failing path prefix to a maximal path: once the
            // database side is exhausted, any extension keeps failing.
            let mut path_vertices = prefix;
            loop {
                let last = *path_vertices.last().expect("nonempty prefix");
                match q.graph.successors(last).first() {
                    Some(&(w, _)) => path_vertices.push(w as usize),
                    None => break,
                }
            }
            let mut fw = FlexiWord::empty();
            for (i, &v) in path_vertices.iter().enumerate() {
                let rel = if i == 0 {
                    OrderRel::Lt // ignored for the first letter
                } else {
                    edge_label(q, path_vertices[i - 1], v)
                };
                fw.push(rel, q.labels[v].clone());
            }
            match seq::check(db, &fw) {
                MonadicVerdict::Countermodel(m) => MonadicVerdict::Countermodel(m),
                MonadicVerdict::Entailed => {
                    unreachable!("search found a failing path but SEQ entails it")
                }
            }
        }
    }
}

fn edge_label(q: &MonadicQuery, u: usize, v: usize) -> OrderRel {
    q.graph
        .successors(u)
        .iter()
        .find(|&&(w, _)| w as usize == v)
        .map(|&(_, rel)| rel)
        .expect("consecutive path vertices must share an edge")
}

/// A search state: antichain of the database (sorted) and a query vertex.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    s: Vec<u32>,
    u: u32,
}

/// Runs the reachability search. Returns `None` when `D |= Φ`, otherwise
/// the sequence of query vertices of the failing path prefix (ending at the
/// vertex that could not be satisfied).
fn search(db: &MonadicDatabase, q: &MonadicQuery) -> Option<Vec<usize>> {
    debug_assert!(db.ne.is_empty() && q.ne.is_empty(), "Thm 4.7 is for [<,<=]");
    if q.graph.is_empty() {
        return None; // the empty query is always entailed
    }
    let init_s: Vec<u32> = db
        .graph
        .minimal_vertices()
        .iter()
        .map(|v| v as u32)
        .collect();

    // parent map: state -> predecessor state (for path reconstruction)
    let mut parent: HashMap<State, Option<State>> = HashMap::new();
    let mut stack: Vec<State> = Vec::new();
    for u0 in 0..q.graph.len() {
        if q.graph.predecessors(u0).is_empty() {
            let st = State {
                s: init_s.clone(),
                u: u0 as u32,
            };
            if !parent.contains_key(&st) {
                parent.insert(st.clone(), None);
                stack.push(st);
            }
        }
    }

    while let Some(st) = stack.pop() {
        if st.s.is_empty() {
            // Failure tuple (∅, v): reconstruct the query-vertex prefix.
            let mut prefix: Vec<usize> = vec![st.u as usize];
            let mut cur = st.clone();
            while let Some(Some(p)) = parent.get(&cur).cloned() {
                if p.u != cur.u {
                    prefix.push(p.u as usize);
                }
                cur = p;
            }
            prefix.reverse();
            return Some(prefix);
        }
        let u = st.u as usize;
        let s_bits: BitSet = st.s.iter().map(|&v| v as usize).collect();
        let region = db.graph.up_set(&s_bits);

        // Edge (a): some antichain element fails the label test. One edge
        // suffices (the Remark in the paper); we pick the first.
        if let Some(&bad) =
            st.s.iter()
                .find(|&&v| !q.labels[u].is_subset(&db.labels[v as usize]))
        {
            let mut rest = region.clone();
            rest.remove(bad as usize);
            let s2: Vec<u32> = db
                .graph
                .minimal_within(&rest)
                .iter()
                .map(|v| v as u32)
                .collect();
            push(&mut parent, &mut stack, &st, State { s: s2, u: st.u });
            continue;
        }

        // All elements fit: advance along query edges.
        let succ = q.graph.successors(u);
        if succ.is_empty() {
            continue; // the path ends satisfied: dead end
        }
        // Precompute the `<` target antichain once (edge (b)).
        let mut lt_target: Option<Vec<u32>> = None;
        for &(v, rel) in succ {
            match rel {
                OrderRel::Lt => {
                    let s2 = lt_target
                        .get_or_insert_with(|| {
                            let minors = db.graph.minor_within(&region);
                            let mut rest = region.clone();
                            rest.difference_with(&minors);
                            db.graph
                                .minimal_within(&rest)
                                .iter()
                                .map(|w| w as u32)
                                .collect()
                        })
                        .clone();
                    push(&mut parent, &mut stack, &st, State { s: s2, u: v });
                }
                OrderRel::Le => {
                    push(
                        &mut parent,
                        &mut stack,
                        &st,
                        State {
                            s: st.s.clone(),
                            u: v,
                        },
                    );
                }
                OrderRel::Ne => unreachable!(),
            }
        }
    }
    None
}

fn push(
    parent: &mut HashMap<State, Option<State>>,
    stack: &mut Vec<State>,
    from: &State,
    to: State,
) {
    if !parent.contains_key(&to) {
        parent.insert(to.clone(), Some(from.clone()));
        stack.push(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelcheck;
    use crate::paths;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::bitset::PredSet;
    use indord_core::ordgraph::OrderGraph;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn fig5_query() -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (1, 2, Lt), (1, 3, Le)]).unwrap();
        MonadicQuery::new(g, vec![ps(&[0, 1]), ps(&[0]), ps(&[2]), ps(&[3])])
    }

    #[test]
    fn agrees_with_paths_engine_on_fig5() {
        let q = fig5_query();
        let d1 = FlexiWord::word(vec![ps(&[0, 1]), ps(&[0]), ps(&[2, 3])]).to_database();
        let d2 = FlexiWord::word(vec![ps(&[0, 1]), ps(&[0]), ps(&[2])]).to_database();
        assert!(entails(&d1, &q));
        assert!(!entails(&d2, &q));
        assert_eq!(entails(&d1, &q), paths::entails(&d1, &q));
        assert_eq!(entails(&d2, &q), paths::entails(&d2, &q));
    }

    #[test]
    fn agrees_with_paths_engine_randomized() {
        let mut seed = 0xa076_1d64_78bd_642fu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let rand_labels = |n: usize, rng: &mut dyn FnMut() -> u64| -> Vec<PredSet> {
            (0..n)
                .map(|_| {
                    let bits = rng() % 8;
                    (0..3)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(PredSym::from_index)
                        .collect()
                })
                .collect()
        };
        let rand_dag = |n: usize, rng: &mut dyn FnMut() -> u64| -> OrderGraph {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    match rng() % 5 {
                        0 => edges.push((i, j, Lt)),
                        1 => edges.push((i, j, Le)),
                        _ => {}
                    }
                }
            }
            OrderGraph::from_dag_edges(n, &edges).unwrap()
        };
        for round in 0..250 {
            let dn = (rng() % 5) as usize + 1;
            let qn = (rng() % 4) as usize + 1;
            let db = MonadicDatabase::new(rand_dag(dn, &mut rng), rand_labels(dn, &mut rng));
            let q = MonadicQuery::new(rand_dag(qn, &mut rng), rand_labels(qn, &mut rng));
            let a = entails(&db, &q);
            let b = paths::entails(&db, &q);
            assert_eq!(a, b, "round {round}: db={db:?} q={q:?}");
            if let MonadicVerdict::Countermodel(m) = check(&db, &q) {
                assert!(
                    modelcheck::is_model_of(&m, &db),
                    "round {round}: bad countermodel"
                );
                assert!(
                    !modelcheck::satisfies_conjunct(&m, &q),
                    "round {round}: countermodel satisfies query"
                );
            }
        }
    }

    #[test]
    fn two_chain_database_width_two() {
        // Two observers: P < Q and R < S; query needs P < S — not certain
        // (chains may interleave either way)… actually P<S requires the P
        // point before the S point, which is not forced. Check engines agree.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (2, 3, Lt)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[3])]);
        let qg = OrderGraph::from_dag_edges(2, &[(0, 1, Lt)]).unwrap();
        let q = MonadicQuery::new(qg, vec![ps(&[0]), ps(&[3])]);
        assert!(!entails(&db, &q));
        // Query P (single vertex) is certain.
        let qg = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let q = MonadicQuery::new(qg, vec![ps(&[0])]);
        assert!(entails(&db, &q));
    }

    #[test]
    fn empty_database_fails_everything_nonempty() {
        let g = OrderGraph::from_dag_edges(0, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![]);
        let qg = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let q = MonadicQuery::new(qg, vec![ps(&[0])]);
        assert!(!entails(&db, &q));
        match check(&db, &q) {
            MonadicVerdict::Countermodel(m) => assert!(m.is_empty()),
            MonadicVerdict::Entailed => panic!(),
        }
    }
}
