//! Disjunctive monadic entailment (Theorem 5.3), with countermodel
//! enumeration at polynomial delay.
//!
//! The search explores tuples `(S, T, u₁…uₙ, x₁…xₙ)` where
//!
//! * `S`, `T` are antichains of the database dag: `D↾(S∪T)` is the unsorted
//!   portion of a topological sort under construction, and
//!   `D(S,T) = (D↾S) \ (D↾T)` is the provisional set of vertices mapping to
//!   the *next* point of the model;
//! * `uᵢ` is a vertex of disjunct `Φᵢ`: some path of `Φᵢ` has been
//!   satisfied up to but not including `uᵢ`;
//! * `xᵢ ∈ {0,1}` records that `uᵢ` was reached through a `<` edge whose
//!   source sits at the current point, so `uᵢ` cannot also be placed here.
//!
//! Transitions: **(a)** move a minor vertex `v ∈ T` to the `S` side;
//! **(b)** if the least `j` with `x_j = 0` whose label fits
//! `a(S,T)` (the union of labels of `D(S,T)`) has an out-edge, advance its
//! pointer — greedy earliest placement, which is complete for path
//! satisfaction in words; **(c)** when *no* pointer fits (or all fitting
//! ones have `x = 1`), commit `D(S,T)` as the next point. `D |≠ Φ` iff the
//! all-empty tuple is reachable; the committed labels along the way spell a
//! countermodel.
//!
//! ## State encoding
//!
//! States are packed [`statespace::StateKey`]s — `(u32, u32, u64, u64)`:
//! `S` and `T` are antichain ids interned (with their up-sets) in the
//! database's [`DisjunctiveScaffold`], the pointer tuple is bit-packed
//! into one `u64` by a [`statespace::PtrCodec`], and the `x`-bits ride in
//! the last word. Everything a state's transitions need from `(S, T)`
//! alone — the label `a(S,T)`, whether `D(S,T)` is empty, and the
//! interned targets of the (a)-moves — is memoized per pair in the
//! scaffold's [`PairTable`](indord_core::scaffold::PairTable), so on a
//! session-cached scaffold repeated queries never re-derive it and the
//! per-state cost collapses to a few subset tests plus hash probes.
//! Session-cached scaffolds also *survive writes*: in-place database
//! mutations patch the closure/topo/pair tables selectively instead of
//! dropping them (see the `indord_core::scaffold` module docs), so the
//! warm state this search relies on persists across an interleaved
//! read/write workload. `PairTable::ensure` transparently recomputes
//! anything a write evicted or staled (including lazily-resynced `!=`
//! blocked bits), which is why this module needs no mutation awareness
//! of its own.
//! Parent links for countermodel reconstruction are compact `u32`
//! indices into the per-search [`statespace::StateArena`], not cloned
//! states. The [`reference`] module keeps the pre-interning
//! implementation for ablation benchmarks and parity tests.
//!
//! ## `!=` databases (§7)
//!
//! Every entry point runs the search through a
//! [`SubScaffold`](indord_core::scaffold::SubScaffold) view: for a
//! `[<,<=]` database the view is the identity, and for a database with
//! `!=` constraints it projects the search onto the separating region by
//! blocking the (c)-commits whose committed set `D(S,T)` contains a
//! constrained pair (merging the pair into one model point). The
//! surviving full paths spell exactly the `!=`-respecting minimal
//! models falsifying every disjunct, so verdicts and countermodel
//! enumeration are `!=`-correct with zero overhead on the `[<,<=]` case
//! — the blocked bit is memoized in the parent's pair table. Disjuncts
//! themselves must be `[<,<=]`; query `!=` atoms are expanded first by
//! the [`crate::ineq`] routes.
//!
//! For width-`k` databases the state space is `O(|D|^{2k}·Π|Φᵢ|)`
//! (Theorem 5.3); the same search run on unbounded-width input realizes
//! the co-NP upper bound of Proposition 5.2.

use crate::statespace::{PtrCodec, StateArena, StateKey, NONE};
use crate::verdict::MonadicVerdict;
use indord_core::atom::OrderRel;
use indord_core::bitset::PredSet;
use indord_core::error::{CoreError, Result};
use indord_core::fxhash::FxHashSet;
use indord_core::model::MonadicModel;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::scaffold::{DisjunctiveScaffold, PairsHandle, SubScaffold};

/// Maximum number of disjuncts (pointer `x`-bits are packed in a `u64`).
pub const MAX_DISJUNCTS: usize = 64;

/// Default guard on the number of explored states: the search is
/// exponential in the database width and the number of disjuncts
/// (Theorem 5.3's `O(|D|^{2k}·Π|Φᵢ|)`), so runaway inputs surface as
/// [`CoreError::CapExceeded`] instead of exhausting memory. Configurable
/// per engine through [`crate::engine::EntailOptions`].
pub const STATE_CAP: usize = 4_000_000;

/// Resource limits for the Theorem 5.3 search: the state-count cap plus
/// an optional wall-clock deadline, polled cooperatively inside the
/// search loops so a served request can be cancelled instead of
/// occupying a worker until the state cap trips. A bare `usize`
/// converts to cap-only limits, so existing `state_cap` callers work
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Guard on explored states (see [`STATE_CAP`]).
    pub state_cap: usize,
    /// Abandon the search with [`CoreError::DeadlineExceeded`] once
    /// this instant passes.
    pub deadline: Option<std::time::Instant>,
}

impl SearchLimits {
    /// Cap-only limits (no deadline).
    pub fn new(state_cap: usize) -> Self {
        SearchLimits {
            state_cap,
            deadline: None,
        }
    }

    /// Adds a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Polled every [`DEADLINE_POLL_MASK`]+1 popped states: one
    /// `Instant::now()` per window keeps the overhead invisible while
    /// bounding deadline overshoot to a handful of successor
    /// expansions.
    #[inline]
    fn check_deadline(&self, ticks: u64) -> Result<()> {
        if ticks & DEADLINE_POLL_MASK == 0 {
            if let Some(d) = self.deadline {
                if std::time::Instant::now() >= d {
                    return Err(CoreError::DeadlineExceeded);
                }
            }
        }
        Ok(())
    }
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits::new(STATE_CAP)
    }
}

impl From<usize> for SearchLimits {
    fn from(state_cap: usize) -> Self {
        SearchLimits::new(state_cap)
    }
}

/// The deadline is polled every 64 popped states (mask `0x3F`).
const DEADLINE_POLL_MASK: u64 = 0x3F;

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ`.
pub fn entails(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<bool> {
    Ok(check(db, disjuncts)?.holds())
}

/// Decides entailment, producing a countermodel on failure. Builds a
/// one-shot [`DisjunctiveScaffold`]; repeated-query callers should go
/// through a session and [`check_scaffolded`].
pub fn check(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<MonadicVerdict> {
    check_capped(db, disjuncts, STATE_CAP)
}

/// [`check`] with caller-chosen limits (the `!=` routes thread
/// [`crate::engine::EntailOptions`] through here; a bare `usize` state
/// cap still works via `From`).
pub fn check_capped(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    limits: impl Into<SearchLimits>,
) -> Result<MonadicVerdict> {
    let limits = limits.into();
    // Decide the trivial cases before paying for the scaffold (its
    // reachability closure is O(|D|²) bits).
    if validate(db, disjuncts)? {
        return Ok(MonadicVerdict::Entailed);
    }
    let scaffold = DisjunctiveScaffold::new(db);
    check_scaffolded(db, &scaffold, disjuncts, limits)
}

/// [`check`] against a prebuilt (typically session-cached) scaffold, with
/// configurable limits. The database's own `!=` constraints are
/// enforced by projecting the scaffold (see [`check_restricted`]).
pub fn check_scaffolded(
    db: &MonadicDatabase,
    scaffold: &DisjunctiveScaffold,
    disjuncts: &[MonadicQuery],
    limits: impl Into<SearchLimits>,
) -> Result<MonadicVerdict> {
    check_restricted(
        db,
        &SubScaffold::project(scaffold, db),
        disjuncts,
        limits.into(),
    )
}

/// [`check`] against an explicit [`SubScaffold`] view — the §7 form: the
/// search explores only the models separating the view's `!=` pairs.
pub fn check_restricted(
    db: &MonadicDatabase,
    sub: &SubScaffold<'_>,
    disjuncts: &[MonadicQuery],
    limits: impl Into<SearchLimits>,
) -> Result<MonadicVerdict> {
    let mut found: Option<MonadicModel> = None;
    run(db, sub, disjuncts, limits.into(), &mut |m| {
        found = Some(m);
        false // stop at the first countermodel
    })?;
    Ok(match found {
        Some(m) => MonadicVerdict::Countermodel(m),
        None => MonadicVerdict::Entailed,
    })
}

/// Enumerates countermodels (models of `D` falsifying every disjunct),
/// deduplicated, up to `cap` of them.
///
/// The state graph is a dag (each transition strictly shrinks the unsorted
/// region or advances a query pointer), so after pruning states that cannot
/// reach a final tuple, every maximal path spells a countermodel — walking
/// the pruned graph emits models with polynomial delay, as the paper notes
/// after Theorem 5.3. Distinct paths may spell the same model; results are
/// deduplicated here.
pub fn countermodels(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    cap: usize,
) -> Result<Vec<MonadicModel>> {
    if validate(db, disjuncts)? {
        return Ok(Vec::new()); // trivially entailed (an empty disjunct)
    }
    let scaffold = DisjunctiveScaffold::new(db);
    countermodels_scaffolded(db, &scaffold, disjuncts, cap, STATE_CAP)
}

/// [`countermodels`] against a prebuilt scaffold with configurable
/// limits; the database's `!=` constraints are enforced by
/// projection, as in [`check_scaffolded`].
pub fn countermodels_scaffolded(
    db: &MonadicDatabase,
    scaffold: &DisjunctiveScaffold,
    disjuncts: &[MonadicQuery],
    cap: usize,
    limits: impl Into<SearchLimits>,
) -> Result<Vec<MonadicModel>> {
    countermodels_restricted(
        db,
        &SubScaffold::project(scaffold, db),
        disjuncts,
        cap,
        limits.into(),
    )
}

/// [`countermodels`] against an explicit [`SubScaffold`] view: only
/// models separating the view's `!=` pairs are enumerated.
pub fn countermodels_restricted(
    db: &MonadicDatabase,
    sub: &SubScaffold<'_>,
    disjuncts: &[MonadicQuery],
    cap: usize,
    limits: impl Into<SearchLimits>,
) -> Result<Vec<MonadicModel>> {
    let mut pairs = sub.pairs();
    let graph = explore(db, sub, &mut pairs, disjuncts, limits.into())?;
    let Some(graph) = graph else {
        return Ok(Vec::new()); // trivially entailed (an empty disjunct)
    };
    let n_nodes = graph.arena.len();
    // Backward-prune: keep only states from which a final state is
    // reachable (integer reverse adjacency, no borrowed-state maps).
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    for (from, outs) in graph.edges.iter().enumerate() {
        for &(to, _) in outs {
            rev[to as usize].push(from as u32);
        }
    }
    let mut alive = vec![false; n_nodes];
    let mut work: Vec<u32> = graph.finals.clone();
    while let Some(v) = work.pop() {
        if !alive[v as usize] {
            alive[v as usize] = true;
            work.extend(rev[v as usize].iter().copied());
        }
    }
    let mut is_final = vec![false; n_nodes];
    for &f in &graph.finals {
        is_final[f as usize] = true;
    }
    // Depth-first path enumeration over the pruned dag. `labels` carries
    // one committed pair index (or NONE) per path step.
    let mut out: Vec<MonadicModel> = Vec::new();
    let mut seen: FxHashSet<MonadicModel> = FxHashSet::default();
    for &init in &graph.initials {
        if !alive[init as usize] {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(init, 0)];
        let mut labels: Vec<u32> = vec![NONE];
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if is_final[node as usize] && *idx == 0 {
                let model: Vec<PredSet> = labels
                    .iter()
                    .filter(|&&l| l != NONE)
                    .map(|&l| pairs.info(l).label.clone())
                    .collect();
                let m = MonadicModel::new(model);
                if seen.insert(m.clone()) {
                    out.push(m);
                    if out.len() >= cap {
                        return Ok(out);
                    }
                }
            }
            let outs = &graph.edges[node as usize];
            let mut advanced = false;
            while *idx < outs.len() {
                let (to, commit) = outs[*idx];
                *idx += 1;
                if alive[to as usize] {
                    labels.push(commit);
                    stack.push((to, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
                labels.pop();
            }
        }
    }
    Ok(out)
}

/// Validates the inputs shared by [`run`] and [`explore`]. `Ok(true)`
/// means "trivially entailed, skip the search".
fn validate(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<bool> {
    let _ = db;
    debug_assert!(
        disjuncts.iter().all(|q| q.ne.is_empty()),
        "Thm 5.3 disjuncts are [<,<=]; expand query != first (ineq::eliminate_ne)"
    );
    if disjuncts.len() > MAX_DISJUNCTS {
        return Err(CoreError::CapExceeded {
            what: "disjuncts in Theorem 5.3 search".to_string(),
            limit: MAX_DISJUNCTS,
        });
    }
    Ok(disjuncts.iter().any(|q| q.graph.is_empty()))
}

/// All initial state keys: S = ∅, T = min(D), one pointer combination per
/// choice of minimal query vertices.
fn initial_keys(
    disjuncts: &[MonadicQuery],
    codec: &mut PtrCodec,
    empty: u32,
    init_t: u32,
) -> Vec<StateKey> {
    let n = disjuncts.len();
    let sources: Vec<Vec<u32>> = disjuncts
        .iter()
        .map(|q| {
            (0..q.graph.len())
                .filter(|&v| q.graph.predecessors(v).is_empty())
                .map(|v| v as u32)
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    let mut combo = vec![0usize; n];
    let mut ptrs = vec![0u32; n];
    loop {
        for j in 0..n {
            ptrs[j] = sources[j][combo[j]];
        }
        out.push(StateKey {
            s: empty,
            t: init_t,
            ptr: codec.pack(&ptrs),
            x: 0,
        });
        let mut j = 0;
        loop {
            if j == n {
                break;
            }
            combo[j] += 1;
            if combo[j] < sources[j].len() {
                break;
            }
            combo[j] = 0;
            j += 1;
        }
        if j == n {
            break;
        }
    }
    out
}

/// Generates the outgoing transitions of a non-final state into the
/// reusable `out` buffer as `(key, committed-pair-or-NONE)`, consulting
/// (and lazily extending) the scaffold's pair table through the
/// sub-scaffold view — which suppresses the (c)-commits that would merge
/// a `!=`-constrained pair (§7). `ptrs` is the shared unpack scratch.
#[allow(clippy::too_many_arguments)]
fn successors(
    db: &MonadicDatabase,
    sub: &SubScaffold<'_>,
    pairs: &mut PairsHandle<'_>,
    disjuncts: &[MonadicQuery],
    codec: &mut PtrCodec,
    key: StateKey,
    empty: u32,
    ptrs: &mut Vec<u32>,
    out: &mut Vec<(StateKey, u32)>,
) {
    out.clear();
    let n = disjuncts.len();
    let pidx = pairs.ensure(sub.parent(), db, key.s, key.t);
    codec.unpack_into(key.ptr, ptrs);
    let info = pairs.info(pidx);

    // Edge (b): the least pointer with x=0 that fits must advance first.
    let mut advanced = false;
    for j in 0..n {
        if key.x & (1 << j) != 0 {
            continue;
        }
        if !disjuncts[j].labels[ptrs[j] as usize].is_subset(&info.label) {
            continue;
        }
        let u = ptrs[j] as usize;
        for &(w, rel) in disjuncts[j].graph.successors(u) {
            let saved = ptrs[j];
            ptrs[j] = w;
            let ptr = codec.pack(ptrs);
            ptrs[j] = saved;
            let x = match rel {
                OrderRel::Lt => key.x | (1 << j),
                OrderRel::Le => key.x & !(1 << j),
                OrderRel::Ne => unreachable!(),
            };
            out.push((
                StateKey {
                    s: key.s,
                    t: key.t,
                    ptr,
                    x,
                },
                NONE,
            ));
        }
        advanced = true;
        break;
    }
    if !advanced && !info.dst_empty && !sub.blocks(info) {
        // Edge (c): commit the provisional point D(S,T).
        out.push((
            StateKey {
                s: empty,
                t: key.t,
                ptr: key.ptr,
                x: 0,
            },
            pidx,
        ));
    }

    // Edge (a): move a minor unsorted vertex from T to the S side — the
    // targets are memoized per (S, T) pair.
    for &(s2, t2) in &info.moves {
        out.push((
            StateKey {
                s: s2,
                t: t2,
                ptr: key.ptr,
                x: key.x,
            },
            NONE,
        ));
    }
}

/// Core search for the *first* countermodel. Invokes `on_model` on it;
/// `on_model` returns `false` to stop (which [`check_scaffolded`] always
/// does).
fn run(
    db: &MonadicDatabase,
    sub: &SubScaffold<'_>,
    disjuncts: &[MonadicQuery],
    limits: SearchLimits,
    on_model: &mut dyn FnMut(MonadicModel) -> bool,
) -> Result<()> {
    if validate(db, disjuncts)? {
        return Ok(());
    }
    let mut pairs = sub.pairs();
    let empty = pairs.empty_id();
    let init_t = pairs.initial_id();
    let mut codec = PtrCodec::new(disjuncts);
    let mut arena = StateArena::default();
    let mut stack: Vec<u32> = Vec::new();
    for key in initial_keys(disjuncts, &mut codec, empty, init_t) {
        if let Some(i) = arena.intern(key, NONE, NONE) {
            stack.push(i);
        }
    }
    let mut ptrs: Vec<u32> = Vec::new();
    let mut succ: Vec<(StateKey, u32)> = Vec::new();
    let mut ticks: u64 = 0;
    while let Some(i) = stack.pop() {
        arena.check_cap(limits.state_cap, "states in Theorem 5.3 search")?;
        limits.check_deadline(ticks)?;
        ticks += 1;
        let key = arena.key(i);
        if key.s == empty && key.t == empty {
            // Final tuple: walk the compact parent indices, collecting
            // the committed pair labels.
            if !on_model(reconstruct(&arena, &pairs, i)) {
                return Ok(());
            }
            continue;
        }
        successors(
            db, sub, &mut pairs, disjuncts, &mut codec, key, empty, &mut ptrs, &mut succ,
        );
        for &(k, commit) in &succ {
            if let Some(j) = arena.intern(k, i, commit) {
                stack.push(j);
            }
        }
    }
    Ok(())
}

/// Spells the countermodel of a final state from its parent chain.
fn reconstruct(arena: &StateArena, pairs: &PairsHandle<'_>, mut i: u32) -> MonadicModel {
    let mut labels: Vec<PredSet> = Vec::new();
    loop {
        let (parent, commit) = arena.step(i);
        if commit != NONE {
            labels.push(pairs.info(commit).label.clone());
        }
        if parent == NONE {
            break;
        }
        i = parent;
    }
    labels.reverse();
    MonadicModel::new(labels)
}

/// The fully explored state graph, integer-indexed.
struct Explored {
    arena: StateArena,
    /// `edges[i]` lists `(target node, committed-pair-or-NONE)`.
    edges: Vec<Vec<(u32, u32)>>,
    initials: Vec<u32>,
    finals: Vec<u32>,
}

/// Explores all reachable states, recording edges. Returns `None` when the
/// query is trivially entailed (some disjunct is empty).
fn explore(
    db: &MonadicDatabase,
    sub: &SubScaffold<'_>,
    pairs: &mut PairsHandle<'_>,
    disjuncts: &[MonadicQuery],
    limits: SearchLimits,
) -> Result<Option<Explored>> {
    if validate(db, disjuncts)? {
        return Ok(None);
    }
    let empty = pairs.empty_id();
    let init_t = pairs.initial_id();
    let mut codec = PtrCodec::new(disjuncts);
    let mut arena = StateArena::default();
    let mut edges: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut finals: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut initials: Vec<u32> = Vec::new();
    for key in initial_keys(disjuncts, &mut codec, empty, init_t) {
        match arena.intern(key, NONE, NONE) {
            Some(i) => {
                stack.push(i);
                initials.push(i);
            }
            None => initials.push(arena.lookup(&key).expect("just interned")),
        }
    }
    let mut ptrs: Vec<u32> = Vec::new();
    let mut succ: Vec<(StateKey, u32)> = Vec::new();
    let mut ticks: u64 = 0;
    while let Some(i) = stack.pop() {
        arena.check_cap(limits.state_cap, "states in Theorem 5.3 exploration")?;
        limits.check_deadline(ticks)?;
        ticks += 1;
        let key = arena.key(i);
        edges.resize_with(arena.len(), Vec::new);
        if key.s == empty && key.t == empty {
            finals.push(i);
            continue;
        }
        successors(
            db, sub, pairs, disjuncts, &mut codec, key, empty, &mut ptrs, &mut succ,
        );
        let mut outs = Vec::with_capacity(succ.len());
        for &(k, commit) in &succ {
            let j = match arena.intern(k, i, commit) {
                Some(j) => {
                    stack.push(j);
                    j
                }
                None => arena.lookup(&k).expect("interned earlier"),
            };
            outs.push((j, commit));
        }
        edges.resize_with(arena.len(), Vec::new);
        edges[i as usize] = outs;
    }
    edges.resize_with(arena.len(), Vec::new);
    Ok(Some(Explored {
        arena,
        edges,
        initials,
        finals,
    }))
}

/// The pre-interning Theorem 5.3 implementation, kept as a semantic
/// reference: states are plain `(Vec, Vec, Vec, u64)` tuples in SipHash
/// maps, and every transition re-derives its up-sets and minor vertices
/// from the dag. The `thm53_ablation` bench compares it against the
/// interned engine, and the property suites assert verdict and
/// countermodel-set parity.
pub mod reference {
    use super::{MAX_DISJUNCTS, STATE_CAP};
    use crate::verdict::MonadicVerdict;
    use indord_core::atom::OrderRel;
    use indord_core::bitset::{BitSet, PredSet};
    use indord_core::error::{CoreError, Result};
    use indord_core::model::MonadicModel;
    use indord_core::monadic::{MonadicDatabase, MonadicQuery};
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct State {
        s: Vec<u32>,
        t: Vec<u32>,
        ptr: Vec<u32>,
        x: u64,
    }

    /// How a state was reached — needed to reconstruct countermodels.
    #[derive(Debug, Clone)]
    enum Step {
        Root,
        /// Plain edge ((a) or (b)).
        Plain(State),
        /// A (c) edge committing the given point label.
        Commit(State, PredSet),
    }

    /// Decides `D |= Φ₁ ∨ … ∨ Φₙ` (reference implementation).
    pub fn entails(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<bool> {
        Ok(check(db, disjuncts)?.holds())
    }

    /// Decides entailment, producing a countermodel on failure.
    pub fn check(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<MonadicVerdict> {
        let mut found: Option<MonadicModel> = None;
        run(db, disjuncts, &mut |m| {
            found = Some(m);
            false
        })?;
        Ok(match found {
            Some(m) => MonadicVerdict::Countermodel(m),
            None => MonadicVerdict::Entailed,
        })
    }

    /// Enumerates countermodels, deduplicated, up to `cap` of them.
    pub fn countermodels(
        db: &MonadicDatabase,
        disjuncts: &[MonadicQuery],
        cap: usize,
    ) -> Result<Vec<MonadicModel>> {
        let graph = explore(db, disjuncts)?;
        let Some(graph) = graph else {
            return Ok(Vec::new());
        };
        let mut reverse: HashMap<&State, Vec<&State>> = HashMap::new();
        for (from, outs) in &graph.edges {
            for (to, _) in outs {
                reverse.entry(to).or_default().push(from);
            }
        }
        let mut alive: std::collections::HashSet<&State> = std::collections::HashSet::new();
        let mut work: Vec<&State> = graph.finals.iter().collect();
        while let Some(st) = work.pop() {
            if alive.insert(st) {
                if let Some(preds) = reverse.get(st) {
                    work.extend(preds.iter().copied());
                }
            }
        }
        let mut out: Vec<MonadicModel> = Vec::new();
        let mut seen: std::collections::HashSet<MonadicModel> = std::collections::HashSet::new();
        for init in &graph.initials {
            if !alive.contains(init) {
                continue;
            }
            let mut stack: Vec<(&State, usize)> = vec![(init, 0)];
            let mut labels: Vec<Option<PredSet>> = vec![None];
            while let Some(&mut (st, ref mut idx)) = stack.last_mut() {
                if graph.finals.contains(st) && *idx == 0 {
                    let model: Vec<PredSet> = labels.iter().filter_map(|l| l.clone()).collect();
                    let m = MonadicModel::new(model);
                    if seen.insert(m.clone()) {
                        out.push(m);
                        if out.len() >= cap {
                            return Ok(out);
                        }
                    }
                }
                let outs = graph.edges.get(st).map(Vec::as_slice).unwrap_or(&[]);
                let mut advanced = false;
                while *idx < outs.len() {
                    let (ref to, ref lbl) = outs[*idx];
                    *idx += 1;
                    if alive.contains(to) {
                        labels.push(lbl.clone());
                        stack.push((to, 0));
                        advanced = true;
                        break;
                    }
                }
                if !advanced && {
                    let (_, i) = *stack.last().unwrap();
                    i >= outs.len()
                } {
                    stack.pop();
                    labels.pop();
                }
            }
        }
        Ok(out)
    }

    struct StateGraph {
        edges: HashMap<State, Vec<(State, Option<PredSet>)>>,
        initials: Vec<State>,
        finals: std::collections::HashSet<State>,
    }

    fn explore(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<Option<StateGraph>> {
        debug_assert!(db.ne.is_empty(), "Thm 5.3 is for [<,<=] databases");
        if disjuncts.len() > MAX_DISJUNCTS {
            return Err(CoreError::CapExceeded {
                what: "disjuncts in Theorem 5.3 search".to_string(),
                limit: MAX_DISJUNCTS,
            });
        }
        if disjuncts.iter().any(|q| q.graph.is_empty()) {
            return Ok(None);
        }
        let initials = initial_states(db, disjuncts);
        let mut edges: HashMap<State, Vec<(State, Option<PredSet>)>> = HashMap::new();
        let mut finals = std::collections::HashSet::new();
        let mut stack: Vec<State> = Vec::new();
        for st in &initials {
            if !edges.contains_key(st) {
                edges.insert(st.clone(), Vec::new());
                stack.push(st.clone());
            }
        }
        while let Some(st) = stack.pop() {
            if edges.len() > STATE_CAP {
                return Err(CoreError::CapExceeded {
                    what: "states in Theorem 5.3 exploration".to_string(),
                    limit: STATE_CAP,
                });
            }
            if st.s.is_empty() && st.t.is_empty() {
                finals.insert(st);
                continue;
            }
            let outs = successors(db, disjuncts, &st);
            for (to, _) in &outs {
                if !edges.contains_key(to) {
                    edges.insert(to.clone(), Vec::new());
                    stack.push(to.clone());
                }
            }
            edges.insert(st, outs);
        }
        Ok(Some(StateGraph {
            edges,
            initials,
            finals,
        }))
    }

    fn initial_states(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Vec<State> {
        let n = disjuncts.len();
        let init_t: Vec<u32> = db
            .graph
            .minimal_vertices()
            .iter()
            .map(|v| v as u32)
            .collect();
        let sources: Vec<Vec<u32>> = disjuncts
            .iter()
            .map(|q| {
                (0..q.graph.len())
                    .filter(|&v| q.graph.predecessors(v).is_empty())
                    .map(|v| v as u32)
                    .collect()
            })
            .collect();
        let mut out = Vec::new();
        let mut combo = vec![0usize; n];
        loop {
            let ptr: Vec<u32> = (0..n).map(|j| sources[j][combo[j]]).collect();
            out.push(State {
                s: Vec::new(),
                t: init_t.clone(),
                ptr,
                x: 0,
            });
            let mut j = 0;
            loop {
                if j == n {
                    break;
                }
                combo[j] += 1;
                if combo[j] < sources[j].len() {
                    break;
                }
                combo[j] = 0;
                j += 1;
            }
            if j == n {
                break;
            }
        }
        out
    }

    fn successors(
        db: &MonadicDatabase,
        disjuncts: &[MonadicQuery],
        st: &State,
    ) -> Vec<(State, Option<PredSet>)> {
        let n = disjuncts.len();
        let mut outs = Vec::new();
        let s_bits: BitSet = st.s.iter().map(|&v| v as usize).collect();
        let t_bits: BitSet = st.t.iter().map(|&v| v as usize).collect();
        let region_s = db.graph.up_set(&s_bits);
        let region_t = db.graph.up_set(&t_bits);
        let mut dst = region_s.clone();
        dst.difference_with(&region_t);
        let mut a = PredSet::new();
        for v in dst.iter() {
            a.union_with(&db.labels[v]);
        }

        let fits: Vec<bool> = (0..n)
            .map(|j| disjuncts[j].labels[st.ptr[j] as usize].is_subset(&a))
            .collect();
        if let Some(j) = (0..n).find(|&j| st.x & (1 << j) == 0 && fits[j]) {
            let u = st.ptr[j] as usize;
            for &(w, rel) in disjuncts[j].graph.successors(u) {
                let mut ptr = st.ptr.clone();
                ptr[j] = w;
                let x = match rel {
                    OrderRel::Lt => st.x | (1 << j),
                    OrderRel::Le => st.x & !(1 << j),
                    OrderRel::Ne => unreachable!(),
                };
                outs.push((
                    State {
                        s: st.s.clone(),
                        t: st.t.clone(),
                        ptr,
                        x,
                    },
                    None,
                ));
            }
        } else if !dst.is_empty() {
            outs.push((
                State {
                    s: Vec::new(),
                    t: st.t.clone(),
                    ptr: st.ptr.clone(),
                    x: 0,
                },
                Some(a.clone()),
            ));
        }

        let mut region_union = region_s.clone();
        region_union.union_with(&region_t);
        let minors = db.graph.minor_within(&region_union);
        for &v in &st.t {
            if !minors.contains(v as usize) {
                continue;
            }
            let mut s_new_bits = s_bits.clone();
            s_new_bits.insert(v as usize);
            let s2: Vec<u32> = db
                .graph
                .minimal_within(&db.graph.up_set(&s_new_bits))
                .iter()
                .map(|w| w as u32)
                .collect();
            let mut t_rest = region_t.clone();
            t_rest.remove(v as usize);
            let t2: Vec<u32> = db
                .graph
                .minimal_within(&t_rest)
                .iter()
                .map(|w| w as u32)
                .collect();
            outs.push((
                State {
                    s: s2,
                    t: t2,
                    ptr: st.ptr.clone(),
                    x: st.x,
                },
                None,
            ));
        }
        outs
    }

    fn run(
        db: &MonadicDatabase,
        disjuncts: &[MonadicQuery],
        on_model: &mut dyn FnMut(MonadicModel) -> bool,
    ) -> Result<()> {
        debug_assert!(db.ne.is_empty(), "Thm 5.3 is for [<,<=] databases");
        if disjuncts.len() > MAX_DISJUNCTS {
            return Err(CoreError::CapExceeded {
                what: "disjuncts in Theorem 5.3 search".to_string(),
                limit: MAX_DISJUNCTS,
            });
        }
        if disjuncts.iter().any(|q| q.graph.is_empty()) {
            return Ok(());
        }
        let mut visited: HashMap<State, Step> = HashMap::new();
        let mut stack: Vec<State> = Vec::new();
        for st in initial_states(db, disjuncts) {
            if !visited.contains_key(&st) {
                visited.insert(st.clone(), Step::Root);
                stack.push(st);
            }
        }
        while let Some(st) = stack.pop() {
            if visited.len() > STATE_CAP {
                return Err(CoreError::CapExceeded {
                    what: "states in Theorem 5.3 search".to_string(),
                    limit: STATE_CAP,
                });
            }
            if st.s.is_empty() && st.t.is_empty() {
                let mut labels: Vec<PredSet> = Vec::new();
                let mut cur = st.clone();
                loop {
                    match visited
                        .get(&cur)
                        .cloned()
                        .expect("visited state has a step")
                    {
                        Step::Root => break,
                        Step::Plain(p) => cur = p,
                        Step::Commit(p, label) => {
                            labels.push(label);
                            cur = p;
                        }
                    }
                }
                labels.reverse();
                if !on_model(MonadicModel::new(labels)) {
                    return Ok(());
                }
                continue;
            }
            for (to, lbl) in successors(db, disjuncts, &st) {
                let step = match lbl {
                    Some(label) => Step::Commit(st.clone(), label),
                    None => Step::Plain(st.clone()),
                };
                if !visited.contains_key(&to) {
                    visited.insert(to.clone(), step);
                    stack.push(to);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelcheck;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::flexi::FlexiWord;
    use indord_core::ordgraph::OrderGraph;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn q1(label: &[usize]) -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(1, &[]).unwrap();
        MonadicQuery::new(g, vec![ps(label)])
    }

    #[test]
    fn single_disjunct_agrees_with_paths() {
        let db = FlexiWord::word(vec![ps(&[0, 1]), ps(&[2])]).to_database();
        let q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[2])]));
        assert!(entails(&db, std::slice::from_ref(&q)).unwrap());
        assert!(crate::paths::entails(&db, &q));
        let q2 = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[2]), ps(&[0])]));
        assert!(!entails(&db, std::slice::from_ref(&q2)).unwrap());
        assert!(!crate::paths::entails(&db, &q2));
    }

    #[test]
    fn genuine_disjunction() {
        // D: P(u), Q(v) unordered. Neither "P<Q" nor "Q<P" is certain,
        // but their disjunction is not certain either (u=v model has
        // neither)… wait: u=v gives one point {P,Q}; P<Q needs two points.
        // The disjunction "P before-or-equal Q" ∨ "Q before-or-equal P"
        // IS certain.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let p_lt_q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])]));
        let q_lt_p = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[1]), ps(&[0])]));
        assert!(!entails(&db, std::slice::from_ref(&p_lt_q)).unwrap());
        assert!(!entails(&db, std::slice::from_ref(&q_lt_p)).unwrap());
        assert!(!entails(&db, &[p_lt_q.clone(), q_lt_p.clone()]).unwrap());
        let p_le_q =
            MonadicQuery::from_flexiword(&FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![Le]));
        let q_le_p =
            MonadicQuery::from_flexiword(&FlexiWord::new(vec![ps(&[1]), ps(&[0])], vec![Le]));
        assert!(entails(&db, &[p_le_q, q_le_p]).unwrap());
    }

    #[test]
    fn disjunction_strictly_stronger_than_members() {
        // D: {P} <= {Q}: minimal models are {P}{Q} and {PQ}.
        // Φ₁ = P<Q holds only in the first, Φ₂ = "PQ together" only in the
        // second; the disjunction is entailed though neither disjunct is.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let phi1 = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])]));
        let phi2 = q1(&[0, 1]);
        assert!(!entails(&db, std::slice::from_ref(&phi1)).unwrap());
        assert!(!entails(&db, std::slice::from_ref(&phi2)).unwrap());
        assert!(entails(&db, &[phi1, phi2]).unwrap());
    }

    #[test]
    fn countermodels_enumerate_all_minimal_falsifiers() {
        // D: two unordered points P, Q; query "exists t. P(t) & Q(t)".
        // Countermodels: the two-point models {P}{Q} and {Q}{P}.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let q = q1(&[0, 1]);
        let models = countermodels(&db, std::slice::from_ref(&q), 100).unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert!(modelcheck::is_model_of(m, &db));
            assert!(!modelcheck::satisfies_conjunct(m, &q));
            assert_eq!(m.len(), 2);
        }
    }

    #[test]
    fn no_countermodels_when_entailed() {
        let db = FlexiWord::word(vec![ps(&[0]), ps(&[1])]).to_database();
        let q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])]));
        assert!(countermodels(&db, &[q], 10).unwrap().is_empty());
    }

    #[test]
    fn empty_disjunct_trivially_entailed() {
        let g = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0])]);
        let empty = MonadicQuery::new(OrderGraph::from_dag_edges(0, &[]).unwrap(), vec![]);
        assert!(entails(&db, &[q1(&[5]), empty]).unwrap());
    }

    #[test]
    fn empty_database_countermodel_is_empty_model() {
        let g = OrderGraph::from_dag_edges(0, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![]);
        match check(&db, &[q1(&[0])]).unwrap() {
            MonadicVerdict::Countermodel(m) => assert!(m.is_empty()),
            MonadicVerdict::Entailed => panic!("empty db cannot entail P"),
        }
    }

    #[test]
    fn non_tight_disjunct() {
        // Φ: exists t1 t2. t1 < t2 (no proper atoms) — "at least 2 points".
        // D with a <= edge: the merged model has 1 point → not entailed.
        let qg = OrderGraph::from_dag_edges(2, &[(0, 1, Lt)]).unwrap();
        let q = MonadicQuery::new(qg, vec![PredSet::new(), PredSet::new()]);
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(!entails(&db, std::slice::from_ref(&q)).unwrap());
        // With a < edge, every model has ≥ 2 points → entailed.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Lt)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(entails(&db, &[q]).unwrap());
    }

    #[test]
    fn scaffold_reuse_across_queries_agrees() {
        // One scaffold serving several queries: verdicts must match the
        // one-shot path, and the pair table must actually be shared.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Le), (2, 3, Lt)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[0, 2])]);
        let scaffold = DisjunctiveScaffold::new(&db);
        let queries: Vec<Vec<MonadicQuery>> = vec![
            vec![q1(&[0, 2])],
            vec![
                MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])])),
                q1(&[1, 2]),
            ],
            vec![MonadicQuery::from_flexiword(&FlexiWord::word(vec![
                ps(&[2]),
                ps(&[0]),
            ]))],
        ];
        let mut pair_counts = Vec::new();
        for dis in &queries {
            let cached = check_scaffolded(&db, &scaffold, dis, STATE_CAP).unwrap();
            let fresh = check(&db, dis).unwrap();
            assert_eq!(cached, fresh);
            pair_counts.push(scaffold.cached_pair_count());
        }
        assert!(pair_counts[0] > 0, "first search populates the table");
        assert!(
            pair_counts.windows(2).all(|w| w[0] <= w[1]),
            "the shared pair table only grows: {pair_counts:?}"
        );
    }

    #[test]
    fn state_cap_is_enforced_and_typed() {
        let g = OrderGraph::from_dag_edges(4, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]); 4]);
        let scaffold = DisjunctiveScaffold::new(&db);
        let q = q1(&[1]);
        let err = check_scaffolded(&db, &scaffold, std::slice::from_ref(&q), 2).unwrap_err();
        assert!(matches!(err, CoreError::CapExceeded { limit: 2, .. }));
        // The same search with room succeeds.
        assert!(check_scaffolded(&db, &scaffold, std::slice::from_ref(&q), STATE_CAP).is_ok());
    }

    #[test]
    fn all_countermodels_verified_randomized() {
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..100 {
            let n = (rng() % 4) as usize + 1;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    match rng() % 4 {
                        0 => edges.push((i, j, Lt)),
                        1 => edges.push((i, j, Le)),
                        _ => {}
                    }
                }
            }
            let g = OrderGraph::from_dag_edges(n, &edges).unwrap();
            let labels = (0..n)
                .map(|_| {
                    let bits = rng() % 8;
                    (0..3)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(PredSym::from_index)
                        .collect()
                })
                .collect();
            let db = MonadicDatabase::new(g, labels);
            let mk_query = |rng: &mut dyn FnMut() -> u64| {
                let qn = (rng() % 3) as usize + 1;
                let mut edges = Vec::new();
                for i in 0..qn {
                    for j in (i + 1)..qn {
                        match rng() % 4 {
                            0 => edges.push((i, j, Lt)),
                            1 => edges.push((i, j, Le)),
                            _ => {}
                        }
                    }
                }
                let g = OrderGraph::from_dag_edges(qn, &edges).unwrap();
                let labels = (0..qn)
                    .map(|_| {
                        let bits = rng() % 8;
                        (0..3)
                            .filter(|i| bits & (1 << i) != 0)
                            .map(PredSym::from_index)
                            .collect()
                    })
                    .collect();
                MonadicQuery::new(g, labels)
            };
            let disjuncts: Vec<MonadicQuery> =
                (0..(rng() % 2 + 1)).map(|_| mk_query(&mut rng)).collect();
            for m in countermodels(&db, &disjuncts, 50).unwrap() {
                assert!(modelcheck::is_model_of(&m, &db), "round {round}");
                assert!(
                    !modelcheck::satisfies(&m, &disjuncts),
                    "round {round}: countermodel satisfies a disjunct"
                );
            }
            // Verdict parity with the pre-interning reference engine.
            assert_eq!(
                entails(&db, &disjuncts).unwrap(),
                reference::entails(&db, &disjuncts).unwrap(),
                "round {round}: interned vs reference"
            );
        }
    }
}
