//! Disjunctive monadic entailment (Theorem 5.3), with countermodel
//! enumeration at polynomial delay.
//!
//! The search explores tuples `(S, T, u₁…uₙ, x₁…xₙ)` where
//!
//! * `S`, `T` are antichains of the database dag: `D↾(S∪T)` is the unsorted
//!   portion of a topological sort under construction, and
//!   `D(S,T) = (D↾S) \ (D↾T)` is the provisional set of vertices mapping to
//!   the *next* point of the model;
//! * `uᵢ` is a vertex of disjunct `Φᵢ`: some path of `Φᵢ` has been
//!   satisfied up to but not including `uᵢ`;
//! * `xᵢ ∈ {0,1}` records that `uᵢ` was reached through a `<` edge whose
//!   source sits at the current point, so `uᵢ` cannot also be placed here.
//!
//! Transitions: **(a)** move a minor vertex `v ∈ T` to the `S` side;
//! **(b)** if the least `j` with `x_j = 0` whose label fits
//! `a(S,T)` (the union of labels of `D(S,T)`) has an out-edge, advance its
//! pointer — greedy earliest placement, which is complete for path
//! satisfaction in words; **(c)** when *no* pointer fits (or all fitting
//! ones have `x = 1`), commit `D(S,T)` as the next point. `D |≠ Φ` iff the
//! all-empty tuple is reachable; the committed labels along the way spell a
//! countermodel.
//!
//! For width-`k` databases the state space is `O(|D|^{2k}·Π|Φᵢ|)`
//! (Theorem 5.3); the same search run on unbounded-width input realizes
//! the co-NP upper bound of Proposition 5.2.

use crate::verdict::MonadicVerdict;
use indord_core::atom::OrderRel;
use indord_core::bitset::{BitSet, PredSet};
use indord_core::error::{CoreError, Result};
use indord_core::model::MonadicModel;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use std::collections::HashMap;

/// Maximum number of disjuncts (pointer `x`-bits are packed in a `u64`).
pub const MAX_DISJUNCTS: usize = 64;

/// Guard on the number of explored states: the search is exponential in
/// the database width and the number of disjuncts (Theorem 5.3's
/// `O(|D|^{2k}·Π|Φᵢ|)`), so runaway inputs surface as
/// [`CoreError::CapExceeded`] instead of exhausting memory.
pub const STATE_CAP: usize = 4_000_000;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    s: Vec<u32>,
    t: Vec<u32>,
    ptr: Vec<u32>,
    x: u64,
}

/// How a state was reached — needed to reconstruct countermodels.
#[derive(Debug, Clone)]
enum Step {
    Root,
    /// Plain edge ((a) or (b)).
    Plain(State),
    /// A (c) edge committing the given point label.
    Commit(State, PredSet),
}

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ`.
pub fn entails(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<bool> {
    Ok(check(db, disjuncts)?.holds())
}

/// Decides entailment, producing a countermodel on failure.
pub fn check(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<MonadicVerdict> {
    let mut found: Option<MonadicModel> = None;
    run(db, disjuncts, &mut |m| {
        found = Some(m);
        false // stop at the first countermodel
    })?;
    Ok(match found {
        Some(m) => MonadicVerdict::Countermodel(m),
        None => MonadicVerdict::Entailed,
    })
}

/// Enumerates countermodels (models of `D` falsifying every disjunct),
/// deduplicated, up to `cap` of them.
///
/// The state graph is a dag (each transition strictly shrinks the unsorted
/// region or advances a query pointer), so after pruning states that cannot
/// reach a final tuple, every maximal path spells a countermodel — walking
/// the pruned graph emits models with polynomial delay, as the paper notes
/// after Theorem 5.3. Distinct paths may spell the same model; results are
/// deduplicated here.
pub fn countermodels(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    cap: usize,
) -> Result<Vec<MonadicModel>> {
    let graph = explore(db, disjuncts)?;
    let Some(graph) = graph else {
        return Ok(Vec::new()); // trivially entailed (an empty disjunct)
    };
    // Backward-prune: keep only states from which a final state is
    // reachable.
    let mut reverse: HashMap<&State, Vec<&State>> = HashMap::new();
    for (from, outs) in &graph.edges {
        for (to, _) in outs {
            reverse.entry(to).or_default().push(from);
        }
    }
    let mut alive: std::collections::HashSet<&State> = std::collections::HashSet::new();
    let mut work: Vec<&State> = graph.finals.iter().collect();
    while let Some(st) = work.pop() {
        if alive.insert(st) {
            if let Some(preds) = reverse.get(st) {
                work.extend(preds.iter().copied());
            }
        }
    }
    // Depth-first path enumeration over the pruned dag.
    let mut out: Vec<MonadicModel> = Vec::new();
    let mut seen: std::collections::HashSet<MonadicModel> = std::collections::HashSet::new();
    // stack of (state, next edge index); labels committed along the path.
    for init in &graph.initials {
        if !alive.contains(init) {
            continue;
        }
        let mut stack: Vec<(&State, usize)> = vec![(init, 0)];
        let mut labels: Vec<Option<PredSet>> = vec![None];
        while let Some(&mut (st, ref mut idx)) = stack.last_mut() {
            if graph.finals.contains(st) && *idx == 0 {
                let model: Vec<PredSet> = labels.iter().filter_map(|l| l.clone()).collect();
                let m = MonadicModel::new(model);
                if seen.insert(m.clone()) {
                    out.push(m);
                    if out.len() >= cap {
                        return Ok(out);
                    }
                }
            }
            let outs = graph.edges.get(st).map(Vec::as_slice).unwrap_or(&[]);
            let mut advanced = false;
            while *idx < outs.len() {
                let (ref to, ref lbl) = outs[*idx];
                *idx += 1;
                if alive.contains(to) {
                    labels.push(lbl.clone());
                    stack.push((to, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced && {
                let (_, i) = *stack.last().unwrap();
                i >= outs.len()
            } {
                stack.pop();
                labels.pop();
            }
        }
    }
    Ok(out)
}

/// The fully explored state graph.
struct StateGraph {
    edges: HashMap<State, Vec<(State, Option<PredSet>)>>,
    initials: Vec<State>,
    finals: std::collections::HashSet<State>,
}

/// Explores all reachable states, recording edges. Returns `None` when the
/// query is trivially entailed (some disjunct is empty).
fn explore(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<Option<StateGraph>> {
    debug_assert!(db.ne.is_empty(), "Thm 5.3 is for [<,<=] databases");
    if disjuncts.len() > MAX_DISJUNCTS {
        return Err(CoreError::CapExceeded {
            what: "disjuncts in Theorem 5.3 search".to_string(),
            limit: MAX_DISJUNCTS,
        });
    }
    if disjuncts.iter().any(|q| q.graph.is_empty()) {
        return Ok(None);
    }
    let initials = initial_states(db, disjuncts);
    let mut edges: HashMap<State, Vec<(State, Option<PredSet>)>> = HashMap::new();
    let mut finals = std::collections::HashSet::new();
    let mut stack: Vec<State> = Vec::new();
    for st in &initials {
        if !edges.contains_key(st) {
            edges.insert(st.clone(), Vec::new());
            stack.push(st.clone());
        }
    }
    while let Some(st) = stack.pop() {
        if edges.len() > STATE_CAP {
            return Err(CoreError::CapExceeded {
                what: "states in Theorem 5.3 exploration".to_string(),
                limit: STATE_CAP,
            });
        }
        if st.s.is_empty() && st.t.is_empty() {
            finals.insert(st);
            continue;
        }
        let outs = successors(db, disjuncts, &st);
        for (to, _) in &outs {
            if !edges.contains_key(to) {
                edges.insert(to.clone(), Vec::new());
                stack.push(to.clone());
            }
        }
        edges.insert(st, outs);
    }
    Ok(Some(StateGraph {
        edges,
        initials,
        finals,
    }))
}

/// All initial states: S = ∅, T = min(D), one pointer combination per
/// choice of minimal query vertices.
fn initial_states(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Vec<State> {
    let n = disjuncts.len();
    let init_t: Vec<u32> = db
        .graph
        .minimal_vertices()
        .iter()
        .map(|v| v as u32)
        .collect();
    let sources: Vec<Vec<u32>> = disjuncts
        .iter()
        .map(|q| {
            (0..q.graph.len())
                .filter(|&v| q.graph.predecessors(v).is_empty())
                .map(|v| v as u32)
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    let mut combo = vec![0usize; n];
    loop {
        let ptr: Vec<u32> = (0..n).map(|j| sources[j][combo[j]]).collect();
        out.push(State {
            s: Vec::new(),
            t: init_t.clone(),
            ptr,
            x: 0,
        });
        let mut j = 0;
        loop {
            if j == n {
                break;
            }
            combo[j] += 1;
            if combo[j] < sources[j].len() {
                break;
            }
            combo[j] = 0;
            j += 1;
        }
        if j == n {
            break;
        }
    }
    out
}

/// The outgoing transitions of a non-final state. The `Option<PredSet>` is
/// `Some(label)` exactly on (c) edges, carrying the committed point label.
fn successors(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    st: &State,
) -> Vec<(State, Option<PredSet>)> {
    let n = disjuncts.len();
    let mut outs = Vec::new();
    let s_bits: BitSet = st.s.iter().map(|&v| v as usize).collect();
    let t_bits: BitSet = st.t.iter().map(|&v| v as usize).collect();
    let region_s = db.graph.up_set(&s_bits);
    let region_t = db.graph.up_set(&t_bits);
    let mut dst = region_s.clone();
    dst.difference_with(&region_t);
    let mut a = PredSet::new();
    for v in dst.iter() {
        a.union_with(&db.labels[v]);
    }

    // Edge (b): the least pointer with x=0 that fits must advance first.
    let fits: Vec<bool> = (0..n)
        .map(|j| disjuncts[j].labels[st.ptr[j] as usize].is_subset(&a))
        .collect();
    if let Some(j) = (0..n).find(|&j| st.x & (1 << j) == 0 && fits[j]) {
        let u = st.ptr[j] as usize;
        for &(w, rel) in disjuncts[j].graph.successors(u) {
            let mut ptr = st.ptr.clone();
            ptr[j] = w;
            let x = match rel {
                OrderRel::Lt => st.x | (1 << j),
                OrderRel::Le => st.x & !(1 << j),
                OrderRel::Ne => unreachable!(),
            };
            outs.push((
                State {
                    s: st.s.clone(),
                    t: st.t.clone(),
                    ptr,
                    x,
                },
                None,
            ));
        }
    } else if !dst.is_empty() {
        // Edge (c): commit the provisional point.
        outs.push((
            State {
                s: Vec::new(),
                t: st.t.clone(),
                ptr: st.ptr.clone(),
                x: 0,
            },
            Some(a.clone()),
        ));
    }

    // Edge (a): move a minor unsorted vertex from T to the S side.
    let mut region_union = region_s.clone();
    region_union.union_with(&region_t);
    let minors = db.graph.minor_within(&region_union);
    for &v in &st.t {
        if !minors.contains(v as usize) {
            continue;
        }
        let mut s_new_bits = s_bits.clone();
        s_new_bits.insert(v as usize);
        let s2: Vec<u32> = db
            .graph
            .minimal_within(&db.graph.up_set(&s_new_bits))
            .iter()
            .map(|w| w as u32)
            .collect();
        let mut t_rest = region_t.clone();
        t_rest.remove(v as usize);
        let t2: Vec<u32> = db
            .graph
            .minimal_within(&t_rest)
            .iter()
            .map(|w| w as u32)
            .collect();
        outs.push((
            State {
                s: s2,
                t: t2,
                ptr: st.ptr.clone(),
                x: st.x,
            },
            None,
        ));
    }
    outs
}

/// Core search for the *first* countermodel. Invokes `on_model` on it;
/// `on_model` returns `false` to stop (which `check` always does).
fn run(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    on_model: &mut dyn FnMut(MonadicModel) -> bool,
) -> Result<()> {
    debug_assert!(db.ne.is_empty(), "Thm 5.3 is for [<,<=] databases");
    if disjuncts.len() > MAX_DISJUNCTS {
        return Err(CoreError::CapExceeded {
            what: "disjuncts in Theorem 5.3 search".to_string(),
            limit: MAX_DISJUNCTS,
        });
    }
    if disjuncts.iter().any(|q| q.graph.is_empty()) {
        return Ok(());
    }
    let mut visited: HashMap<State, Step> = HashMap::new();
    let mut stack: Vec<State> = Vec::new();
    for st in initial_states(db, disjuncts) {
        if !visited.contains_key(&st) {
            visited.insert(st.clone(), Step::Root);
            stack.push(st);
        }
    }
    while let Some(st) = stack.pop() {
        if visited.len() > STATE_CAP {
            return Err(CoreError::CapExceeded {
                what: "states in Theorem 5.3 search".to_string(),
                limit: STATE_CAP,
            });
        }
        if st.s.is_empty() && st.t.is_empty() {
            // Final tuple: reconstruct the committed points.
            let mut labels: Vec<PredSet> = Vec::new();
            let mut cur = st.clone();
            loop {
                match visited
                    .get(&cur)
                    .cloned()
                    .expect("visited state has a step")
                {
                    Step::Root => break,
                    Step::Plain(p) => cur = p,
                    Step::Commit(p, label) => {
                        labels.push(label);
                        cur = p;
                    }
                }
            }
            labels.reverse();
            if !on_model(MonadicModel::new(labels)) {
                return Ok(());
            }
            continue;
        }
        for (to, lbl) in successors(db, disjuncts, &st) {
            let step = match lbl {
                Some(label) => Step::Commit(st.clone(), label),
                None => Step::Plain(st.clone()),
            };
            push(&mut visited, &mut stack, to, step);
        }
    }
    Ok(())
}

fn push(visited: &mut HashMap<State, Step>, stack: &mut Vec<State>, to: State, how: Step) {
    if !visited.contains_key(&to) {
        visited.insert(to.clone(), how);
        stack.push(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelcheck;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::flexi::FlexiWord;
    use indord_core::ordgraph::OrderGraph;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn q1(label: &[usize]) -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(1, &[]).unwrap();
        MonadicQuery::new(g, vec![ps(label)])
    }

    #[test]
    fn single_disjunct_agrees_with_paths() {
        let db = FlexiWord::word(vec![ps(&[0, 1]), ps(&[2])]).to_database();
        let q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[2])]));
        assert!(entails(&db, std::slice::from_ref(&q)).unwrap());
        assert!(crate::paths::entails(&db, &q));
        let q2 = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[2]), ps(&[0])]));
        assert!(!entails(&db, std::slice::from_ref(&q2)).unwrap());
        assert!(!crate::paths::entails(&db, &q2));
    }

    #[test]
    fn genuine_disjunction() {
        // D: P(u), Q(v) unordered. Neither "P<Q" nor "Q<P" is certain,
        // but their disjunction is not certain either (u=v model has
        // neither)… wait: u=v gives one point {P,Q}; P<Q needs two points.
        // The disjunction "P before-or-equal Q" ∨ "Q before-or-equal P"
        // IS certain.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let p_lt_q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])]));
        let q_lt_p = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[1]), ps(&[0])]));
        assert!(!entails(&db, std::slice::from_ref(&p_lt_q)).unwrap());
        assert!(!entails(&db, std::slice::from_ref(&q_lt_p)).unwrap());
        assert!(!entails(&db, &[p_lt_q.clone(), q_lt_p.clone()]).unwrap());
        let p_le_q =
            MonadicQuery::from_flexiword(&FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![Le]));
        let q_le_p =
            MonadicQuery::from_flexiword(&FlexiWord::new(vec![ps(&[1]), ps(&[0])], vec![Le]));
        assert!(entails(&db, &[p_le_q, q_le_p]).unwrap());
    }

    #[test]
    fn disjunction_strictly_stronger_than_members() {
        // D: {P} <= {Q}: minimal models are {P}{Q} and {PQ}.
        // Φ₁ = P<Q holds only in the first, Φ₂ = "PQ together" only in the
        // second; the disjunction is entailed though neither disjunct is.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let phi1 = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])]));
        let phi2 = q1(&[0, 1]);
        assert!(!entails(&db, std::slice::from_ref(&phi1)).unwrap());
        assert!(!entails(&db, std::slice::from_ref(&phi2)).unwrap());
        assert!(entails(&db, &[phi1, phi2]).unwrap());
    }

    #[test]
    fn countermodels_enumerate_all_minimal_falsifiers() {
        // D: two unordered points P, Q; query "exists t. P(t) & Q(t)".
        // Countermodels: the two-point models {P}{Q} and {Q}{P}.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let q = q1(&[0, 1]);
        let models = countermodels(&db, std::slice::from_ref(&q), 100).unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert!(modelcheck::is_model_of(m, &db));
            assert!(!modelcheck::satisfies_conjunct(m, &q));
            assert_eq!(m.len(), 2);
        }
    }

    #[test]
    fn no_countermodels_when_entailed() {
        let db = FlexiWord::word(vec![ps(&[0]), ps(&[1])]).to_database();
        let q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[1])]));
        assert!(countermodels(&db, &[q], 10).unwrap().is_empty());
    }

    #[test]
    fn empty_disjunct_trivially_entailed() {
        let g = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0])]);
        let empty = MonadicQuery::new(OrderGraph::from_dag_edges(0, &[]).unwrap(), vec![]);
        assert!(entails(&db, &[q1(&[5]), empty]).unwrap());
    }

    #[test]
    fn empty_database_countermodel_is_empty_model() {
        let g = OrderGraph::from_dag_edges(0, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![]);
        match check(&db, &[q1(&[0])]).unwrap() {
            MonadicVerdict::Countermodel(m) => assert!(m.is_empty()),
            MonadicVerdict::Entailed => panic!("empty db cannot entail P"),
        }
    }

    #[test]
    fn non_tight_disjunct() {
        // Φ: exists t1 t2. t1 < t2 (no proper atoms) — "at least 2 points".
        // D with a <= edge: the merged model has 1 point → not entailed.
        let qg = OrderGraph::from_dag_edges(2, &[(0, 1, Lt)]).unwrap();
        let q = MonadicQuery::new(qg, vec![PredSet::new(), PredSet::new()]);
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(!entails(&db, std::slice::from_ref(&q)).unwrap());
        // With a < edge, every model has ≥ 2 points → entailed.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Lt)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(entails(&db, &[q]).unwrap());
    }

    #[test]
    fn all_countermodels_verified_randomized() {
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..100 {
            let n = (rng() % 4) as usize + 1;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    match rng() % 4 {
                        0 => edges.push((i, j, Lt)),
                        1 => edges.push((i, j, Le)),
                        _ => {}
                    }
                }
            }
            let g = OrderGraph::from_dag_edges(n, &edges).unwrap();
            let labels = (0..n)
                .map(|_| {
                    let bits = rng() % 8;
                    (0..3)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(PredSym::from_index)
                        .collect()
                })
                .collect();
            let db = MonadicDatabase::new(g, labels);
            let mk_query = |rng: &mut dyn FnMut() -> u64| {
                let qn = (rng() % 3) as usize + 1;
                let mut edges = Vec::new();
                for i in 0..qn {
                    for j in (i + 1)..qn {
                        match rng() % 4 {
                            0 => edges.push((i, j, Lt)),
                            1 => edges.push((i, j, Le)),
                            _ => {}
                        }
                    }
                }
                let g = OrderGraph::from_dag_edges(qn, &edges).unwrap();
                let labels = (0..qn)
                    .map(|_| {
                        let bits = rng() % 8;
                        (0..3)
                            .filter(|i| bits & (1 << i) != 0)
                            .map(PredSym::from_index)
                            .collect()
                    })
                    .collect();
                MonadicQuery::new(g, labels)
            };
            let disjuncts: Vec<MonadicQuery> =
                (0..(rng() % 2 + 1)).map(|_| mk_query(&mut rng)).collect();
            for m in countermodels(&db, &disjuncts, 50).unwrap() {
                assert!(modelcheck::is_model_of(&m, &db), "round {round}");
                assert!(
                    !modelcheck::satisfies(&m, &disjuncts),
                    "round {round}: countermodel satisfies a disjunct"
                );
            }
        }
    }
}
