//! Model checking monadic queries in finite models (Corollary 5.1).
//!
//! `M |= Φ` is decided in `O(|M|·|Φ|·|Pred|)` by **greedy earliest
//! placement**: processing the query dag in topological order, each
//! variable is mapped to the earliest point that satisfies its label and
//! its lower bounds from already-placed predecessors. Greedy placement is
//! complete: if any satisfying assignment `θ` exists then by induction
//! `e(v) ≤ θ(v)` for every variable, so the greedy assignment is itself
//! satisfying. (This is the width-one specialization of the Theorem 4.7
//! search that the paper's proof of Corollary 5.1 describes.)
//!
//! Queries with `!=` atoms (§7) fall back to backtracking search — greedy
//! placement is not complete for them (Theorem 7.1(1) shows the problem is
//! NP-hard).

use indord_core::atom::OrderRel;
use indord_core::model::MonadicModel;
use indord_core::monadic::MonadicQuery;

/// Decides `M |= Φ` for a conjunctive monadic `[<,<=]` query.
/// Falls back to backtracking when `!=` atoms are present.
pub fn satisfies_conjunct(m: &MonadicModel, q: &MonadicQuery) -> bool {
    if !q.ne.is_empty() {
        return q.holds_in_naive(m);
    }
    earliest_placement(m, q).is_some()
}

/// Decides `M |= Φ₁ ∨ … ∨ Φₙ`.
pub fn satisfies(m: &MonadicModel, disjuncts: &[MonadicQuery]) -> bool {
    disjuncts.iter().any(|q| satisfies_conjunct(m, q))
}

/// Checks that `M` is a model of the database `D` read as a conjunctive
/// query (every database vertex embeds order-preservingly with its label).
/// Used to validate countermodels.
pub fn is_model_of(m: &MonadicModel, db: &indord_core::monadic::MonadicDatabase) -> bool {
    let q = MonadicQuery::new(db.graph.as_ref().clone(), db.labels.clone());
    if earliest_placement(m, &q).is_none() {
        return false;
    }
    if db.ne.is_empty() {
        true
    } else {
        // With != constraints the embedding must also separate the pairs;
        // use the backtracking checker.
        let mut q = q;
        q.ne = db.ne.clone();
        q.holds_in_naive(m)
    }
}

/// The greedy earliest-placement assignment, if one exists.
///
/// Returns `assign[v] = point` for every query vertex.
pub fn earliest_placement(m: &MonadicModel, q: &MonadicQuery) -> Option<Vec<usize>> {
    debug_assert!(q.ne.is_empty(), "greedy placement requires a [<,<=] query");
    let order = q.graph.topo_order();
    let mut assign = vec![0usize; q.graph.len()];
    for &v in &order {
        let mut lower = 0usize;
        for &(u, rel) in q.graph.predecessors(v) {
            let bound = assign[u as usize] + usize::from(rel == OrderRel::Lt);
            lower = lower.max(bound);
        }
        let mut placed = false;
        for p in lower..m.len() {
            if q.labels[v].is_subset(&m.labels[p]) {
                assign[v] = p;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(assign)
}

/// Checks `M |= p` for every path `p` of a conjunctive query — by Lemma 4.1
/// this is equivalent to `D_M |= Φ`, i.e. to `M |= Φ` (the check used to
/// re-validate countermodels in tests; exponential in the path count).
pub fn satisfies_all_paths(m: &MonadicModel, q: &MonadicQuery) -> bool {
    let db = indord_core::flexi::FlexiWord::from_model(m).to_database();
    q.paths().all(|p| crate::seq::entails(&db, &p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::atom::OrderRel::{Le, Lt};
    use indord_core::bitset::PredSet;
    use indord_core::ordgraph::OrderGraph;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn model(labels: &[&[usize]]) -> MonadicModel {
        MonadicModel::new(labels.iter().map(|l| ps(l)).collect())
    }

    fn fig5() -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (1, 2, Lt), (1, 3, Le)]).unwrap();
        MonadicQuery::new(g, vec![ps(&[0, 1]), ps(&[0]), ps(&[2]), ps(&[3])])
    }

    #[test]
    fn greedy_matches_naive_on_fig5() {
        let q = fig5();
        let models = [
            model(&[&[0, 1], &[0], &[2, 3]]),
            model(&[&[0, 1], &[0], &[2]]),
            model(&[&[0, 1], &[0, 3], &[2]]),
            model(&[&[0], &[0], &[2, 3]]),
            model(&[&[0, 1], &[0], &[3], &[2]]),
        ];
        for m in &models {
            assert_eq!(
                satisfies_conjunct(m, &q),
                q.holds_in_naive(m),
                "model {m:?}"
            );
        }
    }

    #[test]
    fn greedy_matches_naive_randomized() {
        let mut seed = 0x853c49e6748fea9bu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            // random dag on 4 vertices, random labels over 3 predicates
            let n = 4;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    match rng() % 4 {
                        0 => edges.push((i, j, Lt)),
                        1 => edges.push((i, j, Le)),
                        _ => {}
                    }
                }
            }
            let g = OrderGraph::from_dag_edges(n, &edges).unwrap();
            let labels: Vec<PredSet> = (0..n)
                .map(|_| {
                    let bits = rng() % 8;
                    (0..3)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(PredSym::from_index)
                        .collect()
                })
                .collect();
            let q = MonadicQuery::new(g, labels);
            let mlen = (rng() % 4) as usize + 1;
            let m = MonadicModel::new(
                (0..mlen)
                    .map(|_| {
                        let bits = rng() % 8;
                        (0..3)
                            .filter(|i| bits & (1 << i) != 0)
                            .map(PredSym::from_index)
                            .collect()
                    })
                    .collect(),
            );
            assert_eq!(satisfies_conjunct(&m, &q), q.holds_in_naive(&m));
            assert_eq!(satisfies_all_paths(&m, &q), q.holds_in_naive(&m));
        }
    }

    #[test]
    fn le_edges_share_points() {
        // t0 <= t1, labels P, Q: satisfied by single point {P,Q}.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(satisfies_conjunct(&model(&[&[0, 1]]), &q));
        // t0 < t1 needs two points.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Lt)]).unwrap();
        let q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(!satisfies_conjunct(&model(&[&[0, 1]]), &q));
        assert!(satisfies_conjunct(&model(&[&[0], &[1]]), &q));
    }

    #[test]
    fn empty_query_always_satisfied() {
        let g = OrderGraph::from_dag_edges(0, &[]).unwrap();
        let q = MonadicQuery::new(g, vec![]);
        assert!(satisfies_conjunct(&model(&[]), &q));
        assert!(satisfies_conjunct(&model(&[&[0]]), &q));
    }

    #[test]
    fn disjunction_any_semantics() {
        let g1 = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let q1 = MonadicQuery::new(g1.clone(), vec![ps(&[0])]);
        let q2 = MonadicQuery::new(g1, vec![ps(&[1])]);
        let m = model(&[&[1]]);
        assert!(!satisfies_conjunct(&m, &q1));
        assert!(satisfies(&m, &[q1.clone(), q2.clone()]));
        assert!(!satisfies(&m, &[q1]));
    }

    #[test]
    fn ne_fallback() {
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        assert!(!satisfies_conjunct(&model(&[&[0]]), &q));
        assert!(satisfies_conjunct(&model(&[&[0], &[0]]), &q));
    }

    #[test]
    fn is_model_of_checks_embedding() {
        use indord_core::monadic::MonadicDatabase;
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, Le)]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        assert!(is_model_of(&model(&[&[0, 1]]), &db));
        assert!(is_model_of(&model(&[&[0], &[1]]), &db));
        assert!(!is_model_of(&model(&[&[1], &[0]]), &db));
    }
}
