//! # indord-entail
//!
//! Entailment engines for indefinite order databases, implementing every
//! decision procedure of van der Meyden's paper:
//!
//! | module | algorithm | paper source | complexity |
//! |---|---|---|---|
//! | [`seq`] | `SEQ` for sequential monadic queries | Fig. 6 / Lemma 4.2 | `O(\|D\|·\|p\|·\|Pred\|)` |
//! | [`paths`] | conjunctive monadic via `Paths(Φ)` | Lemma 4.1 / Cor. 4.4 | linear data complexity |
//! | [`bounded`] | conjunctive monadic, width-`k` databases | Thm. 4.7 | `O(\|D\|^{k+1}·\|Φ\|)` |
//! | [`disjunctive`] | disjunctive monadic + countermodel enumeration | Thm. 5.3 | `O(\|D\|^{2k}·\|Pred\|·Π\|Φᵢ\|)` |
//! | [`modelcheck`] | `M \|= Φ` for monadic queries | Cor. 5.1 | `O(\|M\|·\|Φ\|·\|Pred\|)` |
//! | [`naive`] | minimal-model enumeration (reference oracle) | Cor. 2.9 / §3 | exponential |
//! | [`ineq`] | `!=` extensions | §7 | see module docs |
//! | [`prepared`] | compile-once query artifacts | — | — |
//! | [`statespace`] | interned packed states for the Thm 5.3 search | — | — |
//! | [`engine`] | strategy-selecting facade, prepare/execute split | — | — |
//!
//! Engines that answer "not entailed" return a **countermodel**: a model of
//! the database falsifying the query, which callers can re-verify
//! independently with the model checkers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod disjunctive;
pub mod engine;
pub mod ineq;
pub mod modelcheck;
pub mod naive;
pub mod paths;
pub mod prepared;
pub mod route;
pub mod seq;
pub mod statespace;
pub mod verdict;

pub use engine::{Engine, EntailOptions, Strategy};
pub use prepared::{DisjunctExplain, NeExplain, Plan, PreparedQuery};
pub use route::FiredRoute;
pub use verdict::MonadicVerdict;
