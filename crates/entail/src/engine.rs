//! The strategy-selecting entailment facade.
//!
//! [`Engine::entails`] accepts a raw [`Database`] and a [`DnfQuery`] and
//! routes to the best applicable algorithm:
//!
//! 1. the database is normalized (N1/N2, consistency);
//! 2. when every predicate in play is monadic, the monadic pipeline runs:
//!    the object part of each disjunct (§4) is evaluated against the
//!    definite facts, the order parts go to `SEQ` / paths / Theorem 4.7 /
//!    Theorem 5.3 depending on shape;
//! 3. otherwise the naive n-ary engine decides by minimal-model
//!    enumeration (with enumeration caps surfaced as errors).
//!
//! The [`Strategy`] enum pins a specific algorithm, which the benchmarks
//! and the cross-validation tests use.

use crate::verdict::{MonadicVerdict, NaryVerdict};
use crate::{bounded, disjunctive, ineq, naive, paths, seq};
use indord_core::database::Database;
use indord_core::error::{CoreError, Result};
use indord_core::model::{FiniteModel, MonadicModel};
use indord_core::monadic::{split_object_part, MonadicQuery};
use indord_core::query::DnfQuery;
use indord_core::sym::Vocabulary;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Choose automatically from the query/database shape.
    #[default]
    Auto,
    /// Naive minimal-model enumeration (works for everything; exponential).
    Naive,
    /// `SEQ` — requires a single sequential monadic disjunct.
    Seq,
    /// Path decomposition (Lemma 4.1) — conjunctive monadic.
    Paths,
    /// Theorem 4.7 product search — conjunctive monadic.
    BoundedWidth,
    /// Theorem 5.3 product search — disjunctive monadic.
    Disjunctive,
}

/// The unified verdict of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The query is certain.
    Entailed,
    /// Falsified by a monadic countermodel.
    MonadicCountermodel(MonadicModel),
    /// Falsified by an n-ary countermodel.
    NaryCountermodel(Box<FiniteModel>),
}

impl Verdict {
    /// True when entailed.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Entailed)
    }
}

impl From<MonadicVerdict> for Verdict {
    fn from(v: MonadicVerdict) -> Verdict {
        match v {
            MonadicVerdict::Entailed => Verdict::Entailed,
            MonadicVerdict::Countermodel(m) => Verdict::MonadicCountermodel(m),
        }
    }
}

impl From<NaryVerdict> for Verdict {
    fn from(v: NaryVerdict) -> Verdict {
        match v {
            NaryVerdict::Entailed => Verdict::Entailed,
            NaryVerdict::Countermodel(m) => Verdict::NaryCountermodel(m),
        }
    }
}

/// The entailment engine (borrowing the vocabulary for signature lookups).
#[derive(Debug, Clone, Copy)]
pub struct Engine<'a> {
    voc: &'a Vocabulary,
    strategy: Strategy,
    /// Cap for `!=` eliminations and similar expansions.
    expansion_cap: usize,
}

impl<'a> Engine<'a> {
    /// Creates an engine with the automatic strategy.
    pub fn new(voc: &'a Vocabulary) -> Self {
        Engine { voc, strategy: Strategy::Auto, expansion_cap: 4096 }
    }

    /// Pins a strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Decides `D |= Φ`.
    pub fn entails(&self, db: &Database, query: &DnfQuery) -> Result<Verdict> {
        let nd = db.normalize()?;
        if query.disjuncts.is_empty() {
            // The false query: entailed only by an inconsistent database,
            // and normalization already rejected those — except when a
            // merged `!=` pair leaves no models at all.
            return Ok(if nd.has_contradictory_ne() {
                Verdict::Entailed
            } else {
                Verdict::MonadicCountermodel(MonadicModel::new(Vec::new())).into_first_model(&nd)
            });
        }

        // Monadic route?
        let monadic_applicable = self.strategy != Strategy::Naive && self.monadic_applicable(query);
        if monadic_applicable {
            if let Ok(mdb) = indord_core::monadic::MonadicDatabase::from_normal(self.voc, &nd) {
                // Split object parts, filter disjuncts by their truth.
                let definite: Vec<_> = nd
                    .definite_atoms()
                    .filter_map(|a| match (a.args.first(), a.args.len()) {
                        (Some(indord_core::atom::Term::Obj(o)), 1) => Some((a.pred, *o)),
                        _ => None,
                    })
                    .collect();
                let mut order_disjuncts: Vec<MonadicQuery> = Vec::new();
                for cq in &query.disjuncts {
                    let (obj, mq) = split_object_part(self.voc, cq)?;
                    if !obj.holds(&definite) {
                        continue; // this disjunct can never fire
                    }
                    if mq.is_empty() {
                        return Ok(Verdict::Entailed); // object part suffices
                    }
                    order_disjuncts.push(mq);
                }
                return Ok(self.monadic_entails(&mdb, &order_disjuncts)?.into());
            }
        }

        // n-ary route.
        match self.strategy {
            Strategy::Auto | Strategy::Naive => Ok(naive::nary_check(&nd, query)?.into()),
            s => Err(CoreError::Parse {
                offset: 0,
                message: format!("strategy {s:?} requires monadic predicates"),
            }),
        }
    }

    fn monadic_applicable(&self, query: &DnfQuery) -> bool {
        query.disjuncts.iter().all(|cq| {
            cq.proper.iter().all(|a| {
                let sig = self.voc.signature(a.pred);
                sig.is_monadic_order() || sig.is_monadic_object()
            })
        })
    }

    /// The monadic pipeline on prepared inputs.
    pub fn monadic_entails(
        &self,
        mdb: &indord_core::monadic::MonadicDatabase,
        disjuncts: &[MonadicQuery],
    ) -> Result<MonadicVerdict> {
        if disjuncts.is_empty() {
            // No disjunct survived object-part filtering: find any model.
            return naive_first_model(mdb);
        }
        let has_ne =
            !mdb.ne.is_empty() || disjuncts.iter().any(|q| !q.ne.is_empty());
        match self.strategy {
            Strategy::Naive => naive::monadic_check(mdb, disjuncts),
            Strategy::Seq => {
                if disjuncts.len() != 1 || !disjuncts[0].is_sequential() {
                    return Err(CoreError::NotSequential);
                }
                Ok(seq::check(mdb, &disjuncts[0].to_flexiword()?))
            }
            Strategy::Paths => {
                if disjuncts.len() != 1 {
                    return Err(CoreError::Parse {
                        offset: 0,
                        message: "Paths strategy requires a conjunctive query".to_string(),
                    });
                }
                Ok(paths::check(mdb, &disjuncts[0]))
            }
            Strategy::BoundedWidth => {
                if disjuncts.len() != 1 {
                    return Err(CoreError::Parse {
                        offset: 0,
                        message: "BoundedWidth strategy requires a conjunctive query".to_string(),
                    });
                }
                Ok(bounded::check(mdb, &disjuncts[0]))
            }
            Strategy::Disjunctive => disjunctive::check(mdb, disjuncts),
            Strategy::Auto => {
                if !mdb.ne.is_empty() {
                    return ineq::entails_db_ne(mdb, disjuncts);
                }
                if has_ne {
                    return ineq::entails_query_ne(mdb, disjuncts, self.expansion_cap);
                }
                if disjuncts.len() == 1 {
                    let q = &disjuncts[0];
                    if q.is_sequential() {
                        return Ok(seq::check(mdb, &q.to_flexiword()?));
                    }
                    // Few paths: Lemma 4.1 with SEQ per path (linear in
                    // |D|); otherwise the Theorem 4.7 product search.
                    if q.path_count() <= 32 {
                        return Ok(paths::check(mdb, q));
                    }
                    return Ok(bounded::check(mdb, q));
                }
                disjunctive::check(mdb, disjuncts)
            }
        }
    }
}

/// Produces some model of the database (to witness failure of the false
/// query).
fn naive_first_model(
    mdb: &indord_core::monadic::MonadicDatabase,
) -> Result<MonadicVerdict> {
    naive::monadic_check(mdb, &[])
}

impl Verdict {
    /// Helper: for the empty query, produce a concrete witnessing model of
    /// the database rather than the placeholder empty model.
    fn into_first_model(self, nd: &indord_core::database::NormalDatabase) -> Verdict {
        // Any minimal model will do; build the canonical sort.
        let sort = indord_core::toposort::canonical_sort(&nd.graph);
        if indord_core::toposort::sort_respects_ne(nd, &sort) {
            Verdict::NaryCountermodel(Box::new(indord_core::toposort::model_of_sort(nd, &sort)))
        } else {
            // Fall back to enumeration (rare: canonical sort merged a !=
            // pair).
            let mut found = None;
            let _ = indord_core::toposort::for_each_minimal_model(nd, &mut |m| {
                found = Some(m.clone());
                false
            });
            match found {
                Some(m) => Verdict::NaryCountermodel(Box::new(m)),
                None => Verdict::Entailed, // genuinely no models
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::parse::{parse_database, parse_query, parse_query_with_db};

    #[test]
    fn auto_routes_monadic_sequential() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let q2 = parse_query(&mut voc, "exists s t. Q(s) & s < t & P(t)").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&db, &q).unwrap().holds());
        assert!(!eng.entails(&db, &q2).unwrap().holds());
    }

    #[test]
    fn strategies_agree_on_monadic_conjunctive() {
        let mut voc = Vocabulary::new();
        let db = parse_database(
            &mut voc,
            "P(u1); Q(u2); u1 < u2; P(v1); R(v2); v1 <= v2;",
        )
        .unwrap();
        let q = parse_query(&mut voc, "exists a b c. P(a) & a < b & Q(b) & a <= c & R(c)")
            .unwrap();
        let mut verdicts = Vec::new();
        for s in [Strategy::Naive, Strategy::Paths, Strategy::BoundedWidth, Strategy::Disjunctive]
        {
            let eng = Engine::new(&voc).with_strategy(s);
            verdicts.push(eng.entails(&db, &q).unwrap().holds());
        }
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{verdicts:?}");
    }

    #[test]
    fn object_part_filters_disjuncts() {
        let mut voc = Vocabulary::new();
        // Employee is monadic over objects; P over order points.
        let db = parse_database(
            &mut voc,
            "pred Employee(obj); pred P(ord); Employee(alice); P(u);",
        )
        .unwrap();
        // disjunct 1 requires an object with Boss (absent) — filtered out;
        // disjunct 2 requires Employee + P — holds.
        let db2 = parse_database(&mut voc, "pred Boss(obj);").unwrap();
        assert!(db2.is_empty());
        let q = parse_query(
            &mut voc,
            "(exists x t. Boss(x) & P(t)) | (exists x t. Employee(x) & P(t))",
        )
        .unwrap();
        let q2 = parse_query(&mut voc, "exists x t. Boss(x) & P(t)").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&db, &q).unwrap().holds());
        assert!(!eng.entails(&db, &q2).unwrap().holds());
    }

    #[test]
    fn nary_falls_back_to_naive() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "R(u, v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. R(s, t) & s < t").unwrap();
        let q2 = parse_query(&mut voc, "exists s t. R(s, t) & t < s").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&db, &q).unwrap().holds());
        assert!(!eng.entails(&db, &q2).unwrap().holds());
    }

    #[test]
    fn empty_query_not_entailed_by_consistent_db() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u);").unwrap();
        let eng = Engine::new(&voc);
        let v = eng.entails(&db, &DnfQuery::default()).unwrap();
        assert!(!v.holds());
    }

    #[test]
    fn constants_in_queries_work_end_to_end() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(a, u); P(b, v); u < v;").unwrap();
        let (gdb, q) = parse_query_with_db(
            &mut voc,
            &db,
            "exists s t. P(a, s) & s < t & P(b, t)",
        )
        .unwrap();
        let (gdb2, q2) = parse_query_with_db(
            &mut voc,
            &db,
            "exists s t. P(b, s) & s < t & P(a, t)",
        )
        .unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&gdb, &q).unwrap().holds());
        assert!(!eng.entails(&gdb2, &q2).unwrap().holds());
    }
}
