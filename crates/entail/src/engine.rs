//! The strategy-selecting entailment facade.
//!
//! The engine works in two phases, mirroring the paper's separation of
//! per-query compilation from per-database normalization:
//!
//! * [`Engine::prepare`] compiles a [`DnfQuery`] into a
//!   [`PreparedQuery`]: DNF disjuncts, object/order splits (§4),
//!   flexi-words, path decompositions (Lemma 4.1), `!=` expansion plans
//!   (§7), and a [`Plan`] recording which algorithm each disjunct routes
//!   to.
//! * [`Engine::entails_prepared`] evaluates a prepared query against a
//!   [`Session`], whose normalized and monadic views are cached across
//!   calls — a hot session performs no re-normalization and a prepared
//!   query no recompilation. [`Engine::entails_batch`] amortizes one
//!   session across a whole batch.
//!
//! [`Engine::entails`] remains as the one-shot compatibility wrapper:
//! prepare, normalize, evaluate, discard. All paths share one executor,
//! so prepared and unprepared evaluation agree by construction:
//!
//! 1. the database is normalized (N1/N2, consistency);
//! 2. when every predicate in play is monadic, the monadic pipeline runs:
//!    the object part of each disjunct (§4) is evaluated against the
//!    definite facts, the order parts go to `SEQ` / paths / Theorem 4.7 /
//!    Theorem 5.3 depending on shape;
//! 3. otherwise the naive n-ary engine decides by minimal-model
//!    enumeration (with enumeration caps surfaced as errors).
//!
//! The [`Strategy`] enum pins a specific algorithm, which the benchmarks
//! and the cross-validation tests use.

use crate::prepared::{MonadicPlan, NeExpansion, Plan, PreparedQuery};
use crate::route::{self, FiredRoute};
use crate::verdict::{MonadicVerdict, NaryVerdict};
use crate::{bounded, disjunctive, ineq, naive, paths, seq};
use indord_core::bitset::PredSet;
use indord_core::database::{Database, NormalDatabase};
use indord_core::error::{CoreError, Result};
use indord_core::model::{FiniteModel, MonadicModel};
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::query::DnfQuery;
use indord_core::scaffold::{DisjunctiveScaffold, SubScaffold};
use indord_core::session::{object_profiles_of, Session};
use indord_core::sym::Vocabulary;
use std::cell::OnceCell;

/// Tunable evaluation limits, fixed at engine construction and threaded
/// through every route (one-shot, prepared, batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntailOptions {
    /// Cap on states explored by the Theorem 5.3 disjunctive search;
    /// exceeding it surfaces as [`CoreError::CapExceeded`]. Defaults to
    /// [`disjunctive::STATE_CAP`].
    pub state_cap: usize,
    /// Cap for `!=` orientation eliminations (§7) and similar expansions.
    pub expansion_cap: usize,
    /// Optional wall-clock deadline: the Theorem 5.3 search loops poll
    /// it cooperatively and abandon the search with
    /// [`CoreError::DeadlineExceeded`] once it passes, so a served
    /// request can be cancelled instead of occupying a worker until the
    /// state cap trips.
    pub deadline: Option<std::time::Instant>,
}

impl Default for EntailOptions {
    fn default() -> Self {
        EntailOptions {
            state_cap: disjunctive::STATE_CAP,
            expansion_cap: 4096,
            deadline: None,
        }
    }
}

impl EntailOptions {
    /// Sets the wall-clock deadline for cooperative cancellation.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The [`disjunctive::SearchLimits`] these options induce.
    pub fn search_limits(&self) -> disjunctive::SearchLimits {
        disjunctive::SearchLimits {
            state_cap: self.state_cap,
            deadline: self.deadline,
        }
    }
}

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Choose automatically from the query/database shape.
    #[default]
    Auto,
    /// Naive minimal-model enumeration (works for everything; exponential).
    Naive,
    /// `SEQ` — requires a single sequential monadic disjunct.
    Seq,
    /// Path decomposition (Lemma 4.1) — conjunctive monadic.
    Paths,
    /// Theorem 4.7 product search — conjunctive monadic.
    BoundedWidth,
    /// Theorem 5.3 product search — disjunctive monadic.
    Disjunctive,
}

impl Strategy {
    /// Stable lowercase label (used by `EXPLAIN` output).
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::Naive => "naive",
            Strategy::Seq => "seq",
            Strategy::Paths => "paths",
            Strategy::BoundedWidth => "bounded-width",
            Strategy::Disjunctive => "disjunctive",
        }
    }
}

/// The unified verdict of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The query is certain.
    Entailed,
    /// Falsified by a monadic countermodel.
    MonadicCountermodel(MonadicModel),
    /// Falsified by an n-ary countermodel.
    NaryCountermodel(Box<FiniteModel>),
}

impl Verdict {
    /// True when entailed.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Entailed)
    }
}

impl From<MonadicVerdict> for Verdict {
    fn from(v: MonadicVerdict) -> Verdict {
        match v {
            MonadicVerdict::Entailed => Verdict::Entailed,
            MonadicVerdict::Countermodel(m) => Verdict::MonadicCountermodel(m),
        }
    }
}

impl From<NaryVerdict> for Verdict {
    fn from(v: NaryVerdict) -> Verdict {
        match v {
            NaryVerdict::Entailed => Verdict::Entailed,
            NaryVerdict::Countermodel(m) => Verdict::NaryCountermodel(m),
        }
    }
}

/// The entailment engine (borrowing the vocabulary for signature lookups).
#[derive(Debug, Clone, Copy)]
pub struct Engine<'a> {
    voc: &'a Vocabulary,
    strategy: Strategy,
    options: EntailOptions,
}

impl<'a> Engine<'a> {
    /// Creates an engine with the automatic strategy and default limits.
    pub fn new(voc: &'a Vocabulary) -> Self {
        Engine {
            voc,
            strategy: Strategy::Auto,
            options: EntailOptions::default(),
        }
    }

    /// Pins a strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the evaluation limits wholesale.
    pub fn with_options(mut self, options: EntailOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the Theorem 5.3 state cap (default
    /// [`disjunctive::STATE_CAP`]).
    pub fn with_state_cap(mut self, state_cap: usize) -> Self {
        self.options.state_cap = state_cap;
        self
    }

    /// Overrides the `!=` expansion cap.
    pub fn with_expansion_cap(mut self, expansion_cap: usize) -> Self {
        self.options.expansion_cap = expansion_cap;
        self
    }

    /// Sets a wall-clock deadline for cooperative cancellation of the
    /// Theorem 5.3 search (see [`EntailOptions::with_deadline`]).
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// The evaluation limits in force.
    pub fn options(&self) -> EntailOptions {
        self.options
    }

    /// Compiles a query for repeated evaluation: every
    /// database-independent artifact (object splits, flexi-words, path
    /// decompositions, `!=` expansions, per-disjunct routing) is computed
    /// here, once.
    pub fn prepare(&self, query: &DnfQuery) -> Result<PreparedQuery> {
        PreparedQuery::compile(self.voc, query, self.strategy, self.options.expansion_cap)
    }

    /// Decides `D |= Φ` for a prepared query against a session, reusing
    /// the session's cached normalized/monadic views. No normalization or
    /// query compilation happens on a warm session.
    pub fn entails_prepared(&self, session: &Session, pq: &PreparedQuery) -> Result<Verdict> {
        self.execute(
            &SessionView {
                session,
                voc: self.voc,
            },
            pq,
        )
    }

    /// Evaluates a batch of prepared queries against one session; the
    /// database is normalized (at most) once for the whole batch.
    pub fn entails_batch(
        &self,
        session: &Session,
        queries: &[PreparedQuery],
    ) -> Result<Vec<Verdict>> {
        queries
            .iter()
            .map(|pq| self.entails_prepared(session, pq))
            .collect()
    }

    /// Decides `D |= Φ` in one shot: compatibility wrapper that prepares
    /// the query, normalizes the database, evaluates, and discards both
    /// artifacts. Repeated-query callers should use [`Engine::prepare`] +
    /// [`Engine::entails_prepared`].
    pub fn entails(&self, db: &Database, query: &DnfQuery) -> Result<Verdict> {
        let pq = self.prepare(query)?;
        let view = FreshView {
            voc: self.voc,
            nd: db.normalize()?,
            mdb: OnceCell::new(),
            profiles: OnceCell::new(),
            scaffold: OnceCell::new(),
        };
        self.execute(&view, &pq)
    }

    /// The shared executor behind [`Engine::entails`] and
    /// [`Engine::entails_prepared`].
    fn execute<V: DbView>(&self, view: &V, pq: &PreparedQuery) -> Result<Verdict> {
        let nd = view.normal()?;
        if pq.query.disjuncts.is_empty() {
            // The false query: entailed only by an inconsistent database,
            // and normalization already rejected those — except when a
            // merged `!=` pair leaves no models at all.
            route::record(FiredRoute::Empty);
            return Ok(if nd.has_contradictory_ne() {
                Verdict::Entailed
            } else {
                Verdict::MonadicCountermodel(MonadicModel::new(Vec::new())).into_first_model(nd)
            });
        }

        // Monadic route?
        if let Some(plan) = &pq.monadic {
            match view.monadic() {
                Ok(mdb) => {
                    // Filter disjuncts by the truth of their object parts.
                    let profiles = view.object_profiles()?;
                    let mut survivors = Vec::with_capacity(plan.objects.len());
                    for (i, object) in plan.objects.iter().enumerate() {
                        if !object.holds_against(profiles) {
                            continue; // this disjunct can never fire
                        }
                        if plan.orders[i].is_empty() {
                            route::record(FiredRoute::Object);
                            return Ok(Verdict::Entailed); // object part suffices
                        }
                        survivors.push(i);
                    }
                    return Ok(execute_monadic(
                        pq.strategy,
                        mdb,
                        view,
                        plan,
                        &survivors,
                        self.options,
                    )?
                    .into());
                }
                // An n-ary database: decide by the naive engine below.
                Err(CoreError::NotMonadic { .. }) => {}
                // Anything else (e.g. a session warmed against a different
                // vocabulary) must surface, not silently fall back to an
                // engine that would misread the predicate symbols.
                Err(e) => return Err(e),
            }
        }

        // n-ary route.
        match pq.strategy {
            Strategy::Auto | Strategy::Naive => {
                route::record(FiredRoute::Naive);
                Ok(naive::nary_check(nd, &pq.query)?.into())
            }
            s => Err(CoreError::Parse {
                span: indord_core::error::Span::NONE,
                message: format!("strategy {s:?} requires monadic predicates"),
            }),
        }
    }

    /// The monadic pipeline on raw order disjuncts: compiles them on the
    /// fly and runs the shared monadic executor (kept for callers that
    /// already hold [`MonadicDatabase`]/[`MonadicQuery`] values).
    pub fn monadic_entails(
        &self,
        mdb: &MonadicDatabase,
        disjuncts: &[MonadicQuery],
    ) -> Result<MonadicVerdict> {
        let plan = MonadicPlan::from_orders(disjuncts, self.options.expansion_cap);
        let survivors: Vec<usize> = (0..plan.orders.len()).collect();
        let local = LocalScaffold {
            mdb,
            cell: OnceCell::new(),
        };
        execute_monadic(self.strategy, mdb, &local, &plan, &survivors, self.options)
    }
}

/// Lazy access to the Theorem 5.3 scaffold of the database under
/// evaluation — a session cache, a one-shot cell, or a local build.
trait ScaffoldSource {
    fn scaffold(&self) -> Result<&DisjunctiveScaffold>;
    /// The §7 view of the scaffold, projected onto the database's
    /// `!=`-separating region — the session-cached signature on the
    /// prepared path, a fresh projection on the one-shot paths.
    fn sub_scaffold(&self) -> Result<SubScaffold<'_>>;
}

/// One-shot scaffold over a caller-held [`MonadicDatabase`].
struct LocalScaffold<'a> {
    mdb: &'a MonadicDatabase,
    cell: OnceCell<DisjunctiveScaffold>,
}

impl ScaffoldSource for LocalScaffold<'_> {
    fn scaffold(&self) -> Result<&DisjunctiveScaffold> {
        Ok(self.cell.get_or_init(|| DisjunctiveScaffold::new(self.mdb)))
    }

    fn sub_scaffold(&self) -> Result<SubScaffold<'_>> {
        Ok(SubScaffold::project(self.scaffold()?, self.mdb))
    }
}

/// Runs the monadic pipeline over the disjuncts selected by
/// `survivors` (indices into `plan.orders`), routing exactly as the
/// historical `monadic_entails` did but off precompiled artifacts. The
/// disjunctive routes run against `sc`'s scaffold — the session-cached
/// one on the prepared path, so repeated queries share search state.
fn execute_monadic(
    strategy: Strategy,
    mdb: &MonadicDatabase,
    sc: &dyn ScaffoldSource,
    plan: &MonadicPlan,
    survivors: &[usize],
    options: EntailOptions,
) -> Result<MonadicVerdict> {
    if survivors.is_empty() {
        // No disjunct survived object-part filtering: find any model.
        route::record(FiredRoute::Naive);
        return naive_first_model(mdb);
    }
    let all_survive = survivors.len() == plan.orders.len();
    let owned: Vec<MonadicQuery>;
    let orders: &[MonadicQuery] = if all_survive {
        &plan.orders
    } else {
        owned = survivors.iter().map(|&i| plan.orders[i].clone()).collect();
        &owned
    };
    let has_query_ne = orders.iter().any(|q| !q.ne.is_empty());
    let has_ne = !mdb.ne.is_empty() || has_query_ne;
    let single = |what: &str| -> Result<usize> {
        if survivors.len() != 1 {
            return Err(CoreError::Parse {
                span: indord_core::error::Span::NONE,
                message: format!("{what} strategy requires a conjunctive query"),
            });
        }
        Ok(survivors[0])
    };
    // The pinned special-purpose algorithms (SEQ, Lemma 4.1, Thm 4.7)
    // are defined for `[<,<=]` inputs only; silently ignoring `!=`
    // constraints would return wrong verdicts, so refuse them (Auto and
    // Naive handle `!=` via the §7 routes). Pinned Disjunctive enforces
    // *database* `!=` natively through the sub-scaffold projection, but
    // still refuses query `!=` atoms — those need the §7 expansion.
    let refuse_ne = |what: &str| -> Result<()> {
        if has_ne {
            return Err(CoreError::Parse {
                span: indord_core::error::Span::NONE,
                message: format!(
                    "{what} strategy requires [<,<=] inputs; use Auto or Naive for !="
                ),
            });
        }
        Ok(())
    };
    let refuse_query_ne = |what: &str| -> Result<()> {
        if has_query_ne {
            return Err(CoreError::Parse {
                span: indord_core::error::Span::NONE,
                message: format!(
                    "{what} strategy requires [<,<=] queries; use Auto or Naive for query !="
                ),
            });
        }
        Ok(())
    };
    match strategy {
        Strategy::Naive => {
            route::record(FiredRoute::Naive);
            naive::monadic_check(mdb, orders)
        }
        Strategy::Seq => {
            refuse_ne("Seq")?;
            if survivors.len() != 1 {
                return Err(CoreError::NotSequential);
            }
            match &plan.compiled()[survivors[0]].flexi {
                Some(w) => {
                    route::record(FiredRoute::Seq);
                    Ok(seq::check(mdb, w))
                }
                None => Err(CoreError::NotSequential),
            }
        }
        Strategy::Paths => {
            refuse_ne("Paths")?;
            let i = single("Paths")?;
            route::record(FiredRoute::Paths);
            Ok(run_paths(mdb, plan, i))
        }
        Strategy::BoundedWidth => {
            refuse_ne("BoundedWidth")?;
            let i = single("BoundedWidth")?;
            route::record(FiredRoute::BoundedWidth);
            Ok(bounded::check(mdb, &plan.orders[i]))
        }
        Strategy::Disjunctive => {
            refuse_query_ne("Disjunctive")?;
            route::record(FiredRoute::Disjunctive);
            disjunctive::check_restricted(mdb, &sc.sub_scaffold()?, orders, options.search_limits())
        }
        Strategy::Auto => {
            if has_ne {
                return run_ne_route(mdb, sc, plan, survivors, all_survive, orders, options);
            }
            if survivors.len() == 1 {
                let i = survivors[0];
                let d = &plan.compiled()[i];
                return Ok(match (&d.flexi, d.plan) {
                    (Some(w), _) => {
                        route::record(FiredRoute::Seq);
                        seq::check(mdb, w)
                    }
                    // Few paths: Lemma 4.1 with SEQ per path (linear in
                    // |D|); otherwise the Theorem 4.7 product search.
                    (None, Plan::Paths) => {
                        route::record(FiredRoute::Paths);
                        run_paths(mdb, plan, i)
                    }
                    (None, _) => {
                        route::record(FiredRoute::BoundedWidth);
                        bounded::check(mdb, &plan.orders[i])
                    }
                });
            }
            route::record(FiredRoute::Disjunctive);
            disjunctive::check_scaffolded(mdb, sc.scaffold()?, orders, options.search_limits())
        }
    }
}

/// Lemma 4.1 off the cached path decomposition when present, lazy
/// enumeration otherwise.
fn run_paths(mdb: &MonadicDatabase, plan: &MonadicPlan, i: usize) -> MonadicVerdict {
    match &plan.compiled()[i].paths {
        Some(ps) => paths::check_precompiled(mdb, ps),
        None => paths::check(mdb, &plan.orders[i]),
    }
}

/// The §7 `!=` route off precomputed expansions: query `!=` atoms run
/// expanded (from the prepared query's cached [`NePlan`] artifacts),
/// database `!=` constraints run through the sub-scaffold projection of
/// the session-cached scaffold — so prepared `!=` queries hit warm
/// search tables on both directions. The scaffold is only materialized
/// when the Theorem 5.3 leg actually runs; capped expansions go straight
/// to naive enumeration.
#[allow(clippy::too_many_arguments)]
fn run_ne_route(
    mdb: &MonadicDatabase,
    sc: &dyn ScaffoldSource,
    plan: &MonadicPlan,
    survivors: &[usize],
    all_survive: bool,
    orders: &[MonadicQuery],
    options: EntailOptions,
) -> Result<MonadicVerdict> {
    let ne = plan.ne_plan();
    let holder: Option<Vec<MonadicQuery>>;
    let expanded: Option<&[MonadicQuery]> = if all_survive {
        ne.full.as_deref()
    } else {
        let mut acc = Vec::new();
        let mut capped = false;
        for &i in survivors {
            match &ne.per_disjunct[i] {
                NeExpansion::Unneeded => acc.push(plan.orders[i].clone()),
                NeExpansion::Expanded(e) => acc.extend(e.iter().cloned()),
                NeExpansion::Capped => {
                    capped = true;
                    break;
                }
            }
            // Already beyond what the Thm 5.3 leg accepts: naive decides,
            // so stop cloning cached expansions.
            if acc.len() > ineq::EXPANDED_DISJUNCT_CAP {
                capped = true;
                break;
            }
        }
        if capped {
            None
        } else {
            holder = Some(acc);
            holder.as_deref()
        }
    };
    if !ineq::thm53_accepts(expanded) {
        route::record(FiredRoute::Naive);
        return naive::monadic_check(mdb, orders);
    }
    route::record(FiredRoute::Ne);
    ineq::entails_expanded_restricted(
        mdb,
        &sc.sub_scaffold()?,
        orders,
        expanded,
        options.search_limits(),
    )
}

/// Database views the executor runs against: a cached [`Session`] or a
/// freshly-normalized one-shot database. Both are lazy about the monadic
/// view, object profiles, and disjunctive scaffold — the n-ary route
/// never computes them.
trait DbView: ScaffoldSource {
    fn normal(&self) -> Result<&NormalDatabase>;
    fn monadic(&self) -> Result<&MonadicDatabase>;
    fn object_profiles(&self) -> Result<&[PredSet]>;
}

struct SessionView<'a> {
    session: &'a Session,
    voc: &'a Vocabulary,
}

impl DbView for SessionView<'_> {
    fn normal(&self) -> Result<&NormalDatabase> {
        self.session.normal()
    }

    fn monadic(&self) -> Result<&MonadicDatabase> {
        self.session.monadic(self.voc)
    }

    fn object_profiles(&self) -> Result<&[PredSet]> {
        self.session.object_profiles()
    }
}

impl ScaffoldSource for SessionView<'_> {
    fn scaffold(&self) -> Result<&DisjunctiveScaffold> {
        self.session.disjunctive_scaffold(self.voc)
    }

    fn sub_scaffold(&self) -> Result<SubScaffold<'_>> {
        self.session.sub_scaffold(self.voc)
    }
}

struct FreshView<'a> {
    voc: &'a Vocabulary,
    nd: NormalDatabase,
    mdb: OnceCell<Result<MonadicDatabase>>,
    profiles: OnceCell<Vec<PredSet>>,
    scaffold: OnceCell<DisjunctiveScaffold>,
}

impl DbView for FreshView<'_> {
    fn normal(&self) -> Result<&NormalDatabase> {
        Ok(&self.nd)
    }

    fn monadic(&self) -> Result<&MonadicDatabase> {
        self.mdb
            .get_or_init(|| MonadicDatabase::from_normal(self.voc, &self.nd))
            .as_ref()
            .map_err(Clone::clone)
    }

    fn object_profiles(&self) -> Result<&[PredSet]> {
        Ok(self.profiles.get_or_init(|| object_profiles_of(&self.nd)))
    }
}

impl ScaffoldSource for FreshView<'_> {
    fn scaffold(&self) -> Result<&DisjunctiveScaffold> {
        let mdb = self.monadic()?;
        Ok(self.scaffold.get_or_init(|| DisjunctiveScaffold::new(mdb)))
    }

    fn sub_scaffold(&self) -> Result<SubScaffold<'_>> {
        Ok(SubScaffold::project(self.scaffold()?, self.monadic()?))
    }
}

/// Produces some model of the database (to witness failure of the false
/// query).
fn naive_first_model(mdb: &indord_core::monadic::MonadicDatabase) -> Result<MonadicVerdict> {
    naive::monadic_check(mdb, &[])
}

impl Verdict {
    /// Helper: for the empty query, produce a concrete witnessing model of
    /// the database rather than the placeholder empty model.
    fn into_first_model(self, nd: &indord_core::database::NormalDatabase) -> Verdict {
        // Any minimal model will do; build the canonical sort.
        let sort = indord_core::toposort::canonical_sort(&nd.graph);
        if indord_core::toposort::sort_respects_ne(nd, &sort) {
            Verdict::NaryCountermodel(Box::new(indord_core::toposort::model_of_sort(nd, &sort)))
        } else {
            // Fall back to enumeration (rare: canonical sort merged a !=
            // pair).
            let mut found = None;
            let _ = indord_core::toposort::for_each_minimal_model(nd, &mut |m| {
                found = Some(m.clone());
                false
            });
            match found {
                Some(m) => Verdict::NaryCountermodel(Box::new(m)),
                None => Verdict::Entailed, // genuinely no models
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::Plan;
    use indord_core::parse::{parse_database, parse_query, parse_query_with_db};

    #[test]
    fn auto_routes_monadic_sequential() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let q2 = parse_query(&mut voc, "exists s t. Q(s) & s < t & P(t)").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&db, &q).unwrap().holds());
        assert!(!eng.entails(&db, &q2).unwrap().holds());
    }

    #[test]
    fn strategies_agree_on_monadic_conjunctive() {
        let mut voc = Vocabulary::new();
        let db =
            parse_database(&mut voc, "P(u1); Q(u2); u1 < u2; P(v1); R(v2); v1 <= v2;").unwrap();
        let q = parse_query(
            &mut voc,
            "exists a b c. P(a) & a < b & Q(b) & a <= c & R(c)",
        )
        .unwrap();
        let mut verdicts = Vec::new();
        for s in [
            Strategy::Naive,
            Strategy::Paths,
            Strategy::BoundedWidth,
            Strategy::Disjunctive,
        ] {
            let eng = Engine::new(&voc).with_strategy(s);
            verdicts.push(eng.entails(&db, &q).unwrap().holds());
        }
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{verdicts:?}");
    }

    #[test]
    fn object_part_filters_disjuncts() {
        let mut voc = Vocabulary::new();
        // Employee is monadic over objects; P over order points.
        let db = parse_database(
            &mut voc,
            "pred Employee(obj); pred P(ord); Employee(alice); P(u);",
        )
        .unwrap();
        // disjunct 1 requires an object with Boss (absent) — filtered out;
        // disjunct 2 requires Employee + P — holds.
        let db2 = parse_database(&mut voc, "pred Boss(obj);").unwrap();
        assert!(db2.is_empty());
        let q = parse_query(
            &mut voc,
            "(exists x t. Boss(x) & P(t)) | (exists x t. Employee(x) & P(t))",
        )
        .unwrap();
        let q2 = parse_query(&mut voc, "exists x t. Boss(x) & P(t)").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&db, &q).unwrap().holds());
        assert!(!eng.entails(&db, &q2).unwrap().holds());
    }

    #[test]
    fn nary_falls_back_to_naive() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "R(u, v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. R(s, t) & s < t").unwrap();
        let q2 = parse_query(&mut voc, "exists s t. R(s, t) & t < s").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&db, &q).unwrap().holds());
        assert!(!eng.entails(&db, &q2).unwrap().holds());
    }

    #[test]
    fn empty_query_not_entailed_by_consistent_db() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u);").unwrap();
        let eng = Engine::new(&voc);
        let v = eng.entails(&db, &DnfQuery::default()).unwrap();
        assert!(!v.holds());
    }

    #[test]
    fn prepared_agrees_with_one_shot_and_skips_renormalization() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let q2 = parse_query(&mut voc, "exists s t. Q(s) & s < t & P(t)").unwrap();
        let eng = Engine::new(&voc);
        let session = indord_core::session::Session::new(db.clone());
        let (p1, p2) = (eng.prepare(&q).unwrap(), eng.prepare(&q2).unwrap());
        assert_eq!(p1.plan(), Plan::Seq);
        for _ in 0..3 {
            assert_eq!(
                eng.entails_prepared(&session, &p1).unwrap(),
                eng.entails(&db, &q).unwrap()
            );
            assert_eq!(
                eng.entails_prepared(&session, &p2).unwrap(),
                eng.entails(&db, &q2).unwrap()
            );
        }
        assert!(session.is_warm());
        let batch = eng.entails_batch(&session, &[p1, p2]).unwrap();
        assert!(batch[0].holds() && !batch[1].holds());
    }

    #[test]
    fn prepared_tracks_session_mutation() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u <= v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        let eng = Engine::new(&voc);
        let pq = eng.prepare(&q).unwrap();
        let mut session = indord_core::session::Session::new(db);
        assert!(!eng.entails_prepared(&session, &pq).unwrap().holds());
        // u < v makes the query certain; the session must see it.
        session.assert_lt(u, v);
        assert!(eng.entails_prepared(&session, &pq).unwrap().holds());
        assert_eq!(
            eng.entails(session.database(), &q).unwrap(),
            eng.entails_prepared(&session, &pq).unwrap()
        );
    }

    #[test]
    fn mismatched_vocabulary_surfaces_not_misroutes() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        let session = indord_core::session::Session::new(db);
        let eng = Engine::new(&voc);
        let pq = eng.prepare(&q).unwrap();
        assert!(eng.entails_prepared(&session, &pq).unwrap().holds());
        // An engine over a structurally different vocabulary must get a
        // typed error, not a silently-misread verdict off shared indices.
        let mut other = Vocabulary::new();
        other.monadic_pred("X");
        other.monadic_pred("Y");
        let q2 = parse_query(&mut other, "exists t. X(t)").unwrap();
        let eng2 = Engine::new(&other);
        let pq2 = eng2.prepare(&q2).unwrap();
        assert_eq!(
            eng2.entails_prepared(&session, &pq2).unwrap_err(),
            CoreError::VocabularyMismatch
        );
    }

    #[test]
    fn state_cap_knob_is_honored_on_every_path() {
        let mut voc = Vocabulary::new();
        let db = parse_database(
            &mut voc,
            "pred P(ord); pred Q(ord); pred R(ord); P(u); Q(v); R(w);",
        )
        .unwrap();
        let q = parse_query(&mut voc, "(exists s. P(s) & Q(s)) | exists s. Q(s) & R(s)").unwrap();
        // Default cap: fine.
        let eng = Engine::new(&voc);
        assert_eq!(eng.options(), EntailOptions::default());
        assert!(eng.entails(&db, &q).is_ok());
        // A starved cap surfaces the typed error on both one-shot and
        // prepared paths.
        let tiny = Engine::new(&voc).with_state_cap(2);
        assert_eq!(tiny.options().state_cap, 2);
        assert!(matches!(
            tiny.entails(&db, &q).unwrap_err(),
            CoreError::CapExceeded { limit: 2, .. }
        ));
        let session = indord_core::session::Session::new(db);
        let pq = tiny.prepare(&q).unwrap();
        assert!(matches!(
            tiny.entails_prepared(&session, &pq).unwrap_err(),
            CoreError::CapExceeded { limit: 2, .. }
        ));
        // The same session recovers under a roomier engine.
        let roomy = Engine::new(&voc).with_options(EntailOptions {
            state_cap: 100_000,
            ..EntailOptions::default()
        });
        assert!(roomy.entails_prepared(&session, &pq).is_ok());
    }

    #[test]
    fn state_cap_reaches_the_query_ne_route() {
        // A `!=` query on a [<,<=] database takes the §7 expansion route;
        // its Theorem 5.3 leg must run under the engine's cap, falling
        // back to the (here, tiny) naive enumeration when starved rather
        // than searching millions of states.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); P(v); u <= v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & P(t) & s != t").unwrap();
        let verdict = Engine::new(&voc).entails(&db, &q).unwrap();
        let starved = Engine::new(&voc)
            .with_state_cap(1)
            .entails(&db, &q)
            .unwrap();
        assert_eq!(verdict, starved, "naive fallback must agree");
    }

    #[test]
    fn db_ne_route_runs_on_the_session_scaffold() {
        // A database with != constraints: the Auto route must evaluate
        // through the session-cached scaffold (observable as memoized
        // pairs after evaluation), and agree with pinned Naive.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); P(v); Q(w); u != v; w <= u;").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & P(t) & s < t").unwrap();
        let eng = Engine::new(&voc);
        let session = indord_core::session::Session::new(db.clone());
        let pq = eng.prepare(&q).unwrap();
        let warm = eng.entails_prepared(&session, &pq).unwrap();
        assert_eq!(warm, eng.entails(&db, &q).unwrap());
        assert_eq!(
            warm.holds(),
            Engine::new(&voc)
                .with_strategy(Strategy::Naive)
                .entails(&db, &q)
                .unwrap()
                .holds()
        );
        let scaffold = session.disjunctive_scaffold(&voc).unwrap();
        assert!(
            scaffold.cached_pair_count() > 0,
            "the §7 route must populate the shared pair table"
        );
        // Second evaluation reuses the same scaffold object.
        let before = scaffold as *const _;
        assert_eq!(eng.entails_prepared(&session, &pq).unwrap(), warm);
        assert!(std::ptr::eq(
            before,
            session.disjunctive_scaffold(&voc).unwrap()
        ));
    }

    #[test]
    fn pinned_disjunctive_enforces_db_ne() {
        // Database != is handled natively by the sub-scaffold projection
        // under the pinned Disjunctive strategy; query != is still
        // refused (it needs the §7 expansion).
        let mut voc = Vocabulary::new();
        let free = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let db = parse_database(&mut voc, "P(u); Q(v); u != v;").unwrap();
        // "P strictly before Q, or Q strictly before P": certain exactly
        // because u != v excludes the merged one-point model.
        let q = parse_query(
            &mut voc,
            "(exists s t. P(s) & s < t & Q(t)) | (exists s t. Q(s) & s < t & P(t))",
        )
        .unwrap();
        let q_ne = parse_query(&mut voc, "exists s t. P(s) & Q(t) & s != t").unwrap();
        let eng = Engine::new(&voc).with_strategy(Strategy::Disjunctive);
        let by_disj = eng.entails(&db, &q).unwrap();
        let by_auto = Engine::new(&voc).entails(&db, &q).unwrap();
        assert_eq!(by_disj.holds(), by_auto.holds());
        assert!(by_disj.holds(), "u != v forces strict separation");
        assert!(
            !eng.entails(&free, &q).unwrap().holds(),
            "without the constraint the merged model is a countermodel"
        );
        assert!(eng.entails(&db, &q_ne).is_err(), "query != must be refused");
        assert!(Engine::new(&voc).entails(&db, &q_ne).is_ok());
    }

    #[test]
    fn prepared_nary_and_empty_queries() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "R(u, v); u < v;").unwrap();
        let q = parse_query(&mut voc, "exists s t. R(s, t) & s < t").unwrap();
        let eng = Engine::new(&voc);
        let session = indord_core::session::Session::new(db.clone());
        let pq = eng.prepare(&q).unwrap();
        assert_eq!(pq.plan(), Plan::Naive);
        assert!(eng.entails_prepared(&session, &pq).unwrap().holds());
        let empty = eng.prepare(&DnfQuery::default()).unwrap();
        assert_eq!(
            eng.entails_prepared(&session, &empty).unwrap().holds(),
            eng.entails(&db, &DnfQuery::default()).unwrap().holds()
        );
    }

    #[test]
    fn constants_in_queries_work_end_to_end() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(a, u); P(b, v); u < v;").unwrap();
        let (gdb, q) =
            parse_query_with_db(&mut voc, &db, "exists s t. P(a, s) & s < t & P(b, t)").unwrap();
        let (gdb2, q2) =
            parse_query_with_db(&mut voc, &db, "exists s t. P(b, s) & s < t & P(a, t)").unwrap();
        let eng = Engine::new(&voc);
        assert!(eng.entails(&gdb, &q).unwrap().holds());
        assert!(!eng.entails(&gdb2, &q2).unwrap().holds());
    }
}
