//! Inequality extensions (§7 of the paper).
//!
//! Adding `u != v` atoms changes the complexity landscape drastically
//! (Theorem 7.1: expression complexity becomes NP-hard on a fixed width-one
//! database, data complexity of a fixed sequential query co-NP-hard). The
//! cases the paper identifies as tractable are implemented directly:
//!
//! * **`[<,<=,!=]`-queries on `[<,<=]`-databases** stay in PTIME *data*
//!   complexity: each `!=` atom expands to `u < v ∨ v < u`, an exponential
//!   blow-up in the (fixed) query only ([`entails_query_ne`]).
//! * **`[!=]`-databases** in general require the naive engine
//!   ([`entails_db_ne`]), matching the hardness results.

use crate::verdict::MonadicVerdict;
use crate::{disjunctive, naive};
use indord_core::atom::OrderRel;
use indord_core::error::{CoreError, Result};
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::ordgraph::OrderGraph;

/// Expands the `!=` atoms of a monadic query into `2^m` `[<,<=]`-queries
/// (dropping inconsistent orientations). Guarded by `cap`.
pub fn eliminate_ne(q: &MonadicQuery, cap: usize) -> Result<Vec<MonadicQuery>> {
    if q.ne.is_empty() {
        return Ok(vec![q.clone()]);
    }
    let m = q.ne.len();
    if m >= usize::BITS as usize || (1usize << m) > cap {
        return Err(CoreError::CapExceeded {
            what: "!= elimination in monadic query".to_string(),
            limit: cap,
        });
    }
    let base: Vec<(usize, usize, OrderRel)> = q.graph.edges().collect();
    let mut out = Vec::new();
    for mask in 0..(1usize << m) {
        let mut edges = base.clone();
        for (bit, &(a, b)) in q.ne.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                edges.push((a, b, OrderRel::Lt));
            } else {
                edges.push((b, a, OrderRel::Lt));
            }
        }
        // An orientation creating a cycle is inconsistent: drop it.
        if let Ok(g) = OrderGraph::from_dag_edges(q.graph.len(), &edges) {
            out.push(MonadicQuery::new(g, q.labels.clone()));
        }
    }
    Ok(out)
}

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ` where disjuncts may contain `!=` atoms but
/// the database is a `[<,<=]`-database: eliminates `!=` per disjunct and
/// runs the Theorem 5.3 engine on the expanded disjunction (bounded by
/// `state_cap` states).
pub fn entails_query_ne(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    cap: usize,
    state_cap: usize,
) -> Result<MonadicVerdict> {
    if !db.ne.is_empty() {
        return entails_db_ne(db, disjuncts);
    }
    let mut expanded = Vec::new();
    let mut capped = false;
    for q in disjuncts {
        match eliminate_ne(q, cap) {
            Ok(qs) => expanded.extend(qs),
            Err(CoreError::CapExceeded { .. }) => {
                // Too many != atoms to expand: the problem is NP-hard in
                // the query (Thm 7.1(1)); decide by naive enumeration.
                capped = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    entails_expanded(
        db,
        disjuncts,
        (!capped).then_some(expanded.as_slice()),
        state_cap,
    )
}

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ` given an already-computed `!=` expansion
/// of the disjuncts (the prepared-query pipeline caches it at prepare
/// time; pass `None` when the expansion was capped to fall back to naive
/// enumeration over the original disjuncts). The Theorem 5.3 leg honors
/// the caller's `state_cap`.
pub fn entails_expanded(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    expanded: Option<&[MonadicQuery]>,
    state_cap: usize,
) -> Result<MonadicVerdict> {
    if !db.ne.is_empty() {
        return entails_db_ne(db, disjuncts);
    }
    let expanded = match expanded {
        Some(e) => e,
        None => return naive::monadic_check(db, disjuncts),
    };
    // The Theorem 5.3 search is exponential in the number of disjuncts
    // (Π|Φᵢ|); beyond a handful the naive engine is the better fallback —
    // and matches the paper, which offers no better bound here
    // (Theorem 7.1 shows the problem is genuinely hard).
    if expanded.len() > 12 {
        return naive::monadic_check(db, disjuncts);
    }
    match disjunctive::check_capped(db, expanded, state_cap) {
        Ok(v) => Ok(v),
        Err(CoreError::CapExceeded { .. }) => naive::monadic_check(db, disjuncts),
        Err(e) => Err(e),
    }
}

/// Decides entailment when the *database* contains `!=` constraints, by
/// naive minimal-model enumeration with `!=` filtering. Exponential —
/// necessarily so in the worst case (Theorem 7.1(2) encodes graph
/// non-3-colourability in exactly this problem).
pub fn entails_db_ne(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<MonadicVerdict> {
    naive::monadic_check(db, disjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::bitset::PredSet;
    use indord_core::flexi::FlexiWord;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    #[test]
    fn ne_elimination_orientations() {
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        let ex = eliminate_ne(&q, 16).unwrap();
        assert_eq!(ex.len(), 2);
        assert!(ex.iter().all(|e| e.ne.is_empty()));
        // An orientation conflicting with an existing edge is dropped.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, OrderRel::Lt)]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        let ex = eliminate_ne(&q, 16).unwrap();
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn query_ne_semantics() {
        // D: {P} < {P}: two distinct P points. Query: two P's at distinct
        // points — entailed.
        let db = FlexiWord::word(vec![ps(&[0]), ps(&[0])]).to_database();
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        assert!(
            entails_query_ne(&db, std::slice::from_ref(&q), 64, disjunctive::STATE_CAP)
                .unwrap()
                .holds()
        );
        // D: single {P} point: not entailed.
        let db1 = FlexiWord::word(vec![ps(&[0])]).to_database();
        let v = entails_query_ne(&db1, &[q], 64, disjunctive::STATE_CAP).unwrap();
        assert!(!v.holds());
        assert_eq!(v.countermodel().unwrap().len(), 1);
    }

    #[test]
    fn db_ne_forces_separation() {
        // D: P(u), P(v), u != v. Query "P < P" (two strict points) holds.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[0])]);
        db.ne.push((0, 1));
        let q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[0])]));
        assert!(entails_db_ne(&db, std::slice::from_ref(&q))
            .unwrap()
            .holds());
        // Without the constraint it fails (u = v model).
        let db2 = MonadicDatabase::new(db.graph.clone(), db.labels.clone());
        assert!(!entails_db_ne(&db2, &[q]).unwrap().holds());
    }

    #[test]
    fn cap_is_enforced() {
        let g = OrderGraph::from_dag_edges(4, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]); 4]);
        for i in 0..4 {
            for j in (i + 1)..4 {
                q.ne.push((i, j));
            }
        }
        assert!(eliminate_ne(&q, 4).is_err());
        assert!(eliminate_ne(&q, 64).is_ok());
    }
}
