//! Inequality extensions (§7 of the paper).
//!
//! Adding `u != v` atoms changes the complexity landscape drastically
//! (Theorem 7.1: expression complexity becomes NP-hard on a fixed width-one
//! database, data complexity of a fixed sequential query co-NP-hard). The
//! cases the paper identifies as tractable are implemented directly, and
//! both §7 directions now run on the Theorem 5.3 scaffold machinery:
//!
//! * **Query `!=` atoms** expand to `u < v ∨ v < u` per disjunct — an
//!   exponential blow-up in the (fixed) query only, keeping PTIME *data*
//!   complexity ([`eliminate_ne`]). The expanded `[<,<=]` disjunction
//!   runs on the Theorem 5.3 search.
//! * **Database `!=` constraints** restrict the model region instead of
//!   the query: the search runs through a
//!   [`SubScaffold`](indord_core::scaffold::SubScaffold) that blocks the
//!   commits merging a constrained pair, so the explored countermodels
//!   are exactly the separating minimal models. This stays polynomial
//!   per search state — the co-NP-hardness of Theorem 7.1(2) surfaces as
//!   the state space itself growing with the width, guarded by
//!   `state_cap`.
//!
//! Every route has a `*_scaffolded` form taking the session-cached
//! [`DisjunctiveScaffold`]; the plain forms build a one-shot scaffold
//! (and skip even that when the expansion caps force the naive
//! fallback). When a cap trips — too many `!=` orientations, too many
//! expanded disjuncts for the product search, or the state cap — the
//! naive minimal-model oracle decides instead, matching the hardness
//! results: the paper offers no sub-exponential bound for those regimes.

use crate::verdict::MonadicVerdict;
use crate::{disjunctive, naive};
use indord_core::atom::OrderRel;
use indord_core::error::{CoreError, Result};
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::ordgraph::OrderGraph;
use indord_core::scaffold::{DisjunctiveScaffold, SubScaffold};

/// Most expanded `[<,<=]` disjuncts the Theorem 5.3 leg accepts before
/// the naive fallback: the search is exponential in the number of
/// disjuncts (`Π|Φᵢ|`), and beyond a handful enumeration wins — matching
/// the paper, which offers no better bound here (Theorem 7.1 shows the
/// problem is genuinely hard).
pub const EXPANDED_DISJUNCT_CAP: usize = 12;

/// Default cap for `!=` orientation expansions on the plain (non-engine)
/// entry points; [`crate::engine::EntailOptions::expansion_cap`] is the
/// tunable form.
pub const DEFAULT_EXPANSION_CAP: usize = 4096;

/// Expands the `!=` atoms of a monadic query into `2^m` `[<,<=]`-queries
/// (dropping inconsistent orientations). Guarded by `cap`.
pub fn eliminate_ne(q: &MonadicQuery, cap: usize) -> Result<Vec<MonadicQuery>> {
    if q.ne.is_empty() {
        return Ok(vec![q.clone()]);
    }
    let m = q.ne.len();
    if m >= usize::BITS as usize || (1usize << m) > cap {
        return Err(CoreError::CapExceeded {
            what: "!= elimination in monadic query".to_string(),
            limit: cap,
        });
    }
    let base: Vec<(usize, usize, OrderRel)> = q.graph.edges().collect();
    let mut out = Vec::new();
    for mask in 0..(1usize << m) {
        let mut edges = base.clone();
        for (bit, &(a, b)) in q.ne.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                edges.push((a, b, OrderRel::Lt));
            } else {
                edges.push((b, a, OrderRel::Lt));
            }
        }
        // An orientation creating a cycle is inconsistent: drop it.
        if let Ok(g) = OrderGraph::from_dag_edges(q.graph.len(), &edges) {
            out.push(MonadicQuery::new(g, q.labels.clone()));
        }
    }
    Ok(out)
}

/// Expands the `!=` atoms of every disjunct, concatenated; `None` when
/// some disjunct exceeded `cap` — or the total already exceeds what the
/// Theorem 5.3 leg accepts, so finishing the expansion would be wasted
/// work. The caller then falls back to naive enumeration over the
/// original disjuncts either way.
fn expand_disjuncts(disjuncts: &[MonadicQuery], cap: usize) -> Result<Option<Vec<MonadicQuery>>> {
    let mut expanded = Vec::new();
    for q in disjuncts {
        match eliminate_ne(q, cap) {
            Ok(qs) => {
                expanded.extend(qs);
                if expanded.len() > EXPANDED_DISJUNCT_CAP {
                    return Ok(None);
                }
            }
            Err(CoreError::CapExceeded { .. }) => return Ok(None),
            Err(e) => return Err(e),
        }
    }
    Ok(Some(expanded))
}

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ` where disjuncts may contain `!=` atoms
/// and the database may carry `!=` constraints: eliminates `!=` per
/// disjunct and runs the Theorem 5.3 engine on the expanded disjunction
/// (bounded by `state_cap` states), restricted to the database's
/// separating region. Builds a one-shot scaffold; repeated-query callers
/// go through a session and [`entails_query_ne_scaffolded`].
pub fn entails_query_ne(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    cap: usize,
    state_cap: usize,
) -> Result<MonadicVerdict> {
    let expanded = expand_disjuncts(disjuncts, cap)?;
    entails_expanded(db, disjuncts, expanded.as_deref(), state_cap)
}

/// [`entails_query_ne`] against a prebuilt (typically session-cached)
/// scaffold: the hot path for prepared `!=` queries.
pub fn entails_query_ne_scaffolded(
    db: &MonadicDatabase,
    scaffold: &DisjunctiveScaffold,
    disjuncts: &[MonadicQuery],
    cap: usize,
    state_cap: usize,
) -> Result<MonadicVerdict> {
    let expanded = expand_disjuncts(disjuncts, cap)?;
    entails_expanded_scaffolded(db, scaffold, disjuncts, expanded.as_deref(), state_cap)
}

/// Decides `D |= Φ₁ ∨ … ∨ Φₙ` given an already-computed `!=` expansion
/// of the disjuncts (the prepared-query pipeline caches it at prepare
/// time; pass `None` when the expansion was capped to fall back to naive
/// enumeration over the original disjuncts). Builds a one-shot scaffold
/// exactly when the Theorem 5.3 leg will run.
pub fn entails_expanded(
    db: &MonadicDatabase,
    disjuncts: &[MonadicQuery],
    expanded: Option<&[MonadicQuery]>,
    state_cap: usize,
) -> Result<MonadicVerdict> {
    if !thm53_accepts(expanded) {
        return naive::monadic_check(db, disjuncts);
    }
    let scaffold = DisjunctiveScaffold::new(db);
    entails_expanded_scaffolded(db, &scaffold, disjuncts, expanded, state_cap)
}

/// True when the Theorem 5.3 leg will run on this expansion (engines
/// check it before paying for a scaffold).
pub fn thm53_accepts(expanded: Option<&[MonadicQuery]>) -> bool {
    matches!(expanded, Some(e) if e.len() <= EXPANDED_DISJUNCT_CAP)
}

/// [`entails_expanded`] against a prebuilt scaffold. The scaffold is
/// projected onto the database's `!=`-separating region, so one call
/// handles both §7 directions: expanded query `!=` atoms in `expanded`,
/// database `!=` constraints through the sub-scaffold's blocked commits.
/// The Theorem 5.3 leg honors the caller's `state_cap`, falling back to
/// naive enumeration when it trips.
pub fn entails_expanded_scaffolded(
    db: &MonadicDatabase,
    scaffold: &DisjunctiveScaffold,
    disjuncts: &[MonadicQuery],
    expanded: Option<&[MonadicQuery]>,
    limits: impl Into<disjunctive::SearchLimits>,
) -> Result<MonadicVerdict> {
    entails_expanded_restricted(
        db,
        &SubScaffold::project(scaffold, db),
        disjuncts,
        expanded,
        limits.into(),
    )
}

/// [`entails_expanded_scaffolded`] with an explicit [`SubScaffold`] view
/// — the engine's form, handing through the session-cached projection.
pub fn entails_expanded_restricted(
    db: &MonadicDatabase,
    sub: &SubScaffold<'_>,
    disjuncts: &[MonadicQuery],
    expanded: Option<&[MonadicQuery]>,
    limits: impl Into<disjunctive::SearchLimits>,
) -> Result<MonadicVerdict> {
    let Some(expanded) = expanded else {
        return naive::monadic_check(db, disjuncts);
    };
    if expanded.len() > EXPANDED_DISJUNCT_CAP {
        return naive::monadic_check(db, disjuncts);
    }
    match disjunctive::check_restricted(db, sub, expanded, limits.into()) {
        Ok(v) => Ok(v),
        Err(CoreError::CapExceeded { .. }) => naive::monadic_check(db, disjuncts),
        Err(e) => Err(e),
    }
}

/// Decides entailment when the *database* contains `!=` constraints, by
/// the scaffold-restricted Theorem 5.3 search (query `!=` atoms are
/// expanded first). Exponential in the worst case — necessarily so
/// (Theorem 7.1(2) encodes graph non-3-colourability in exactly this
/// problem), which surfaces as cap-triggered fallbacks to naive
/// enumeration. Builds a one-shot scaffold; sessions route through
/// [`entails_db_ne_scaffolded`].
pub fn entails_db_ne(db: &MonadicDatabase, disjuncts: &[MonadicQuery]) -> Result<MonadicVerdict> {
    entails_query_ne(db, disjuncts, DEFAULT_EXPANSION_CAP, disjunctive::STATE_CAP)
}

/// [`entails_db_ne`] against a prebuilt (typically session-cached)
/// scaffold, with caller-chosen caps.
pub fn entails_db_ne_scaffolded(
    db: &MonadicDatabase,
    scaffold: &DisjunctiveScaffold,
    disjuncts: &[MonadicQuery],
    cap: usize,
    state_cap: usize,
) -> Result<MonadicVerdict> {
    entails_query_ne_scaffolded(db, scaffold, disjuncts, cap, state_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::bitset::PredSet;
    use indord_core::flexi::FlexiWord;
    use indord_core::scaffold::SubScaffold;
    use indord_core::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    #[test]
    fn ne_elimination_orientations() {
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        let ex = eliminate_ne(&q, 16).unwrap();
        assert_eq!(ex.len(), 2);
        assert!(ex.iter().all(|e| e.ne.is_empty()));
        // An orientation conflicting with an existing edge is dropped.
        let g = OrderGraph::from_dag_edges(2, &[(0, 1, OrderRel::Lt)]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        let ex = eliminate_ne(&q, 16).unwrap();
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn query_ne_semantics() {
        // D: {P} < {P}: two distinct P points. Query: two P's at distinct
        // points — entailed.
        let db = FlexiWord::word(vec![ps(&[0]), ps(&[0])]).to_database();
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        assert!(
            entails_query_ne(&db, std::slice::from_ref(&q), 64, disjunctive::STATE_CAP)
                .unwrap()
                .holds()
        );
        // D: single {P} point: not entailed.
        let db1 = FlexiWord::word(vec![ps(&[0])]).to_database();
        let v = entails_query_ne(&db1, &[q], 64, disjunctive::STATE_CAP).unwrap();
        assert!(!v.holds());
        assert_eq!(v.countermodel().unwrap().len(), 1);
    }

    #[test]
    fn db_ne_forces_separation() {
        // D: P(u), P(v), u != v. Query "P < P" (two strict points) holds.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[0])]);
        db.ne.push((0, 1));
        let q = MonadicQuery::from_flexiword(&FlexiWord::word(vec![ps(&[0]), ps(&[0])]));
        assert!(entails_db_ne(&db, std::slice::from_ref(&q))
            .unwrap()
            .holds());
        // Without the constraint it fails (u = v model).
        let db2 = MonadicDatabase::new(db.graph.as_ref().clone(), db.labels.clone());
        assert!(!entails_db_ne(&db2, &[q]).unwrap().holds());
    }

    #[test]
    fn db_ne_countermodels_respect_separation() {
        // D: P(u), Q(v), u != v — every model separates u and v, so
        // "there are two strictly ordered points" is certain; dropping
        // the constraint re-admits the merged one-point countermodel.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        db.ne.push((0, 1));
        let qg = OrderGraph::from_dag_edges(2, &[(0, 1, OrderRel::Lt)]).unwrap();
        let q = MonadicQuery::new(qg, vec![PredSet::new(), PredSet::new()]);
        assert!(entails_db_ne(&db, std::slice::from_ref(&q))
            .unwrap()
            .holds());
        // The same query without the constraint fails (u = v model).
        let db2 = MonadicDatabase::new(db.graph.as_ref().clone(), db.labels.clone());
        let v2 = entails_db_ne(&db2, &[q]).unwrap();
        assert!(!v2.holds());
        assert_eq!(v2.countermodel().unwrap().len(), 1);
    }

    #[test]
    fn contradictory_db_ne_entails_everything() {
        // u != u (a pair N1 merged) leaves no models at all.
        let g = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0])]);
        db.ne.push((0, 0));
        let q = MonadicQuery::new(OrderGraph::from_dag_edges(1, &[]).unwrap(), vec![ps(&[2])]);
        assert!(entails_db_ne(&db, &[q]).unwrap().holds());
    }

    #[test]
    fn scaffolded_route_agrees_with_one_shot_and_naive() {
        // Mixed §7 case: database != plus query != on a warm scaffold.
        let g = OrderGraph::from_dag_edges(3, &[(0, 1, OrderRel::Le)]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[0])]);
        db.ne.push((0, 2));
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        let scaffold = DisjunctiveScaffold::new(&db);
        let sub = SubScaffold::project(&scaffold, &db);
        assert!(!sub.is_unrestricted());
        for _ in 0..2 {
            let warm = entails_query_ne_scaffolded(
                &db,
                &scaffold,
                std::slice::from_ref(&q),
                64,
                disjunctive::STATE_CAP,
            )
            .unwrap();
            let one_shot =
                entails_query_ne(&db, std::slice::from_ref(&q), 64, disjunctive::STATE_CAP)
                    .unwrap();
            let oracle = naive::monadic_check(&db, std::slice::from_ref(&q)).unwrap();
            assert_eq!(warm.holds(), one_shot.holds());
            assert_eq!(warm.holds(), oracle.holds());
        }
    }

    #[test]
    fn cap_is_enforced() {
        let g = OrderGraph::from_dag_edges(4, &[]).unwrap();
        let mut q = MonadicQuery::new(g, vec![ps(&[0]); 4]);
        for i in 0..4 {
            for j in (i + 1)..4 {
                q.ne.push((i, j));
            }
        }
        assert!(eliminate_ne(&q, 4).is_err());
        assert!(eliminate_ne(&q, 64).is_ok());
        // A capped expansion still decides (naive fallback), agreeing
        // with the roomy expansion.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[0])]);
        let capped = entails_query_ne(&db, std::slice::from_ref(&q), 4, disjunctive::STATE_CAP)
            .unwrap()
            .holds();
        let roomy = entails_query_ne(&db, std::slice::from_ref(&q), 64, disjunctive::STATE_CAP)
            .unwrap()
            .holds();
        assert_eq!(capped, roomy);
    }

    #[test]
    fn thm53_acceptance_guard() {
        let g = OrderGraph::from_dag_edges(1, &[]).unwrap();
        let q = MonadicQuery::new(g, vec![ps(&[0])]);
        assert!(!thm53_accepts(None));
        let few = vec![q.clone(); EXPANDED_DISJUNCT_CAP];
        assert!(thm53_accepts(Some(&few)));
        let many = vec![q; EXPANDED_DISJUNCT_CAP + 1];
        assert!(!thm53_accepts(Some(&many)));
    }
}
