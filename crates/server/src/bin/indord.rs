//! `indord` — the REPL client of `indord-serve`.
//!
//! ```text
//! indord --connect 127.0.0.1:7431    # speak to a running server
//! indord --embedded                  # in-process, no server (default)
//! indord --data-dir ./data           # in-process AND durable
//! ```
//!
//! Reads protocol lines from stdin (interactively or piped), prints
//! framed responses, and carets parse errors at the offending token.
//! With `--data-dir` the embedded registry is durable: databases are
//! recovered from the directory at start and every acknowledged write
//! is WAL-logged, exactly as under `indord-serve --data-dir`.

use indord_server::durable::StorageConfig;
use indord_server::repl::{run, Backend};
use indord_server::runtime::Registry;
use indord_storage::FsyncPolicy;
use std::io::{self, BufReader, IsTerminal};
use std::sync::Arc;

fn main() {
    let mut connect: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Group;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--connect needs HOST:PORT")),
                )
            }
            "--embedded" => connect = None,
            "--data-dir" => {
                data_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--data-dir needs a path")),
                )
            }
            "--fsync" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--fsync needs a value"));
                fsync = FsyncPolicy::parse(&v)
                    .unwrap_or_else(|| usage("--fsync takes always, group, or os"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if connect.is_some() && data_dir.is_some() {
        usage("--data-dir is for embedded mode; the server owns durability under --connect");
    }
    let backend = match &connect {
        Some(addr) => match Backend::connect(addr) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("indord: cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        None => match &data_dir {
            None => Backend::embedded(),
            Some(root) => {
                let cfg = StorageConfig {
                    root: root.into(),
                    fsync,
                    ..StorageConfig::new(root)
                };
                match Registry::with_storage(cfg) {
                    Ok(r) => Backend::embedded_in(Arc::new(r)),
                    Err(e) => {
                        eprintln!("indord: cannot recover data dir {root}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        },
    };
    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    let mut stdout = io::stdout();
    if let Err(e) = run(
        backend,
        BufReader::new(stdin.lock()),
        &mut stdout,
        interactive,
    ) {
        eprintln!("indord: {e}");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("indord: {err}");
    }
    eprintln!(
        "usage: indord [--connect HOST:PORT | --embedded [--data-dir PATH] [--fsync always|group|os]]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
