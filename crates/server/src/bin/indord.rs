//! `indord` — the REPL client of `indord-serve`.
//!
//! ```text
//! indord --connect 127.0.0.1:7431    # speak to a running server
//! indord --embedded                  # in-process, no server (default)
//! ```
//!
//! Reads protocol lines from stdin (interactively or piped), prints
//! framed responses, and carets parse errors at the offending token.

use indord_server::repl::{run, Backend};
use std::io::{self, BufReader, IsTerminal};

fn main() {
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--connect needs HOST:PORT")),
                )
            }
            "--embedded" => connect = None,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let backend = match &connect {
        Some(addr) => match Backend::connect(addr) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("indord: cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        None => Backend::embedded(),
    };
    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    let mut stdout = io::stdout();
    if let Err(e) = run(
        backend,
        BufReader::new(stdin.lock()),
        &mut stdout,
        interactive,
    ) {
        eprintln!("indord: {e}");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("indord: {err}");
    }
    eprintln!("usage: indord [--connect HOST:PORT | --embedded]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
