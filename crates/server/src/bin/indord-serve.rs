//! `indord-serve` — serve indefinite-order databases over TCP.
//!
//! ```text
//! indord-serve [--addr 127.0.0.1:7431] [--threads 4] [--open <db>]...
//!              [--data-dir <path>] [--fsync always|group|os] [--snapshot-every N]
//!              [--max-queue N] [--max-conns N] [--max-line BYTES]
//!              [--request-timeout MS] [--slow-ms MS] [--rwlock]
//! ```
//!
//! Overload protection: `--max-queue` bounds each database's commit
//! queue (excess writes get a retryable `ERR overloaded`),
//! `--max-conns` caps concurrent connections (`ERR busy` beyond it),
//! `--max-line` caps the request line (`ERR toolarge`), and
//! `--request-timeout` applies a default deadline to every request
//! (`ERR deadline`; a request's own `DEADLINE <ms>` prefix overrides).
//!
//! Observability: `--slow-ms` traces every request and logs the full
//! phase breakdown of ones over the threshold to stderr; clients can
//! introspect plans with `EXPLAIN`, individual requests with `TRACE`,
//! and scrape latency histograms with `METRICS` (Prometheus text).
//!
//! Clients speak the line protocol of `indord_server::protocol`; try
//! the `indord` REPL: `indord --connect 127.0.0.1:7431`.
//!
//! With `--data-dir`, every database is durable: acknowledged writes
//! are appended to a checksummed write-ahead log (synced per `--fsync`),
//! snapshots are taken every `--snapshot-every` records, and a restart
//! recovers each database — newest valid snapshot plus WAL replay —
//! and comes back *warm* (scaffold built, prepared queries recompiled
//! and pre-run).
//!
//! `--rwlock` serves with the PR 5 single-writer/shared-reader lock
//! instead of the default snapshot-isolated MVCC core — the ablation
//! baseline the benches compare against. It has no durability path and
//! cannot be combined with `--data-dir`.

use indord_server::durable::StorageConfig;
use indord_server::runtime::{
    serve_with, ConcurrencyMode, Registry, ServeOptions, DEFAULT_MAX_QUEUE,
};
use indord_storage::FsyncPolicy;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7431".to_string();
    let mut threads = 4usize;
    let mut mode = ConcurrencyMode::Mvcc;
    let mut rwlock = false;
    let mut opens: Vec<String> = Vec::new();
    let mut data_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Group;
    let mut snapshot_every = 256u64;
    let mut max_queue = DEFAULT_MAX_QUEUE;
    let mut max_conns: Option<usize> = None;
    let mut max_line: Option<usize> = None;
    let mut request_timeout: Option<Duration> = None;
    let mut slow_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs a value")),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--open" => {
                opens.push(args.next().unwrap_or_else(|| usage("--open needs a name")));
            }
            "--data-dir" => {
                data_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--data-dir needs a path")),
                )
            }
            "--fsync" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--fsync needs a value"));
                fsync = FsyncPolicy::parse(&v)
                    .unwrap_or_else(|| usage("--fsync takes always, group, or os"));
            }
            "--snapshot-every" => {
                snapshot_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--snapshot-every needs a positive number"))
            }
            "--max-queue" => {
                max_queue = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-queue needs a number"))
            }
            "--max-conns" => {
                max_conns = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage("--max-conns needs a positive number")),
                )
            }
            "--max-line" => {
                max_line = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage("--max-line needs a positive byte count")),
                )
            }
            "--request-timeout" => {
                request_timeout = Some(Duration::from_millis(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| usage("--request-timeout needs positive milliseconds")),
                ))
            }
            "--slow-ms" => {
                slow_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--slow-ms needs milliseconds")),
                )
            }
            "--rwlock" => {
                mode = ConcurrencyMode::RwLock;
                rwlock = true;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if rwlock && data_dir.is_some() {
        usage("--rwlock has no durability path; it cannot be combined with --data-dir");
    }
    let registry = match &data_dir {
        None => Arc::new(Registry::with_mode(mode).with_max_queue(max_queue)),
        Some(root) => {
            let cfg = StorageConfig {
                root: root.into(),
                fsync,
                snapshot_every,
            };
            match Registry::with_storage_and_queue(cfg, max_queue) {
                Ok(r) => Arc::new(r),
                Err(e) => {
                    eprintln!("indord-serve: cannot recover data dir {root}: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    // Recovered databases boot warm; report what came back before the
    // port opens.
    for name in registry.names() {
        if let Some(db) = registry.get(&name) {
            let s = db.stats();
            println!(
                "indord-serve: recovered `{name}`: snapshot + {} wal record(s) replayed",
                s.recovery_replayed_fragments()
            );
        }
    }
    for name in &opens {
        registry.open(name);
    }
    let mut opts = ServeOptions::new(threads);
    if let Some(n) = max_conns {
        opts.max_conns = n;
    }
    if let Some(n) = max_line {
        opts.max_line = n;
    }
    opts.request_timeout = request_timeout;
    opts.slow_ms = slow_ms;
    let handle = match serve_with(Arc::clone(&registry), addr.as_str(), opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("indord-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "indord-serve listening on {} ({threads} worker threads{}{}{})",
        handle.addr(),
        if mode == ConcurrencyMode::RwLock {
            ", rwlock mode"
        } else {
            ""
        },
        match &data_dir {
            Some(root) => format!(", durable at {root} (fsync={})", fsync.as_str()),
            None => String::new(),
        },
        if registry.names().is_empty() {
            String::new()
        } else {
            format!(", databases: {}", registry.names().join(", "))
        }
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("indord-serve: {err}");
    }
    eprintln!(
        "usage: indord-serve [--addr HOST:PORT] [--threads N] [--open DB]... \
         [--data-dir PATH] [--fsync always|group|os] [--snapshot-every N] \
         [--max-queue N] [--max-conns N] [--max-line BYTES] [--request-timeout MS] \
         [--slow-ms MS] [--rwlock]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
