//! `indord-serve` — serve indefinite-order databases over TCP.
//!
//! ```text
//! indord-serve [--addr 127.0.0.1:7431] [--threads 4] [--open <db>]... [--rwlock]
//! ```
//!
//! Clients speak the line protocol of `indord_server::protocol`; try
//! the `indord` REPL: `indord --connect 127.0.0.1:7431`.
//!
//! `--rwlock` serves with the PR 5 single-writer/shared-reader lock
//! instead of the default snapshot-isolated MVCC core — the ablation
//! baseline the benches compare against.

use indord_server::runtime::{serve, ConcurrencyMode, Registry};
use std::sync::Arc;

fn main() {
    let mut addr = "127.0.0.1:7431".to_string();
    let mut threads = 4usize;
    let mut mode = ConcurrencyMode::Mvcc;
    let mut opens: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs a value")),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--open" => {
                opens.push(args.next().unwrap_or_else(|| usage("--open needs a name")));
            }
            "--rwlock" => mode = ConcurrencyMode::RwLock,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let registry = Arc::new(Registry::with_mode(mode));
    for name in &opens {
        registry.open(name);
    }
    let handle = match serve(Arc::clone(&registry), addr.as_str(), threads) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("indord-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "indord-serve listening on {} ({threads} worker threads{}{})",
        handle.addr(),
        if mode == ConcurrencyMode::RwLock {
            ", rwlock mode"
        } else {
            ""
        },
        if registry.names().is_empty() {
            String::new()
        } else {
            format!(", databases: {}", registry.names().join(", "))
        }
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("indord-serve: {err}");
    }
    eprintln!("usage: indord-serve [--addr HOST:PORT] [--threads N] [--open DB]... [--rwlock]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
