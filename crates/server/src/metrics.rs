//! Lock-free serving metrics: log2 histograms and the Prometheus
//! exposition behind the `METRICS` verb.
//!
//! The predecessor of this module was a 1024-slot latency ring behind a
//! `try_lock` — bounded memory, but lossy twice over: contended pushes
//! were *shed* (counted in `stats_samples_dropped`) and an unlucky
//! window of 1024 samples is all the quantiles ever saw. The engine's
//! route-dependent cost spread (PTIME monadic vs exponential Thm 5.3)
//! makes dropped tails exactly the samples an operator needs.
//!
//! A [`Histogram`] here is 64 fixed log2 buckets of relaxed
//! [`AtomicU64`]s: `record` is a handful of wait-free atomic adds (no
//! locks, no shedding, no allocation), readers never serialize writers,
//! and the full value range of a `u64` is covered — bucket `i` holds
//! values in `[2^(i-1), 2^i)`, so quantile estimates carry at most one
//! power-of-two of error, plenty for p50/p99 over nanosecond latencies
//! spanning six orders of magnitude. `stats_samples_dropped` stays in
//! the `STATS` reply for wire compatibility but is structurally zero on
//! this path.
//!
//! The [`MetricsRegistry`] is the per-database bundle: one histogram
//! per protocol verb and abort status, one per engine route actually
//! fired (see [`indord_entail::route`]), one for commit-queue depth,
//! and monotone counters for the engine totals (states expanded,
//! pair-table hits/misses). [`MetricsRegistry::render_prometheus`]
//! writes the standard text exposition format.

use indord_entail::FiredRoute;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets — one per `u64` bit position, so any
/// nanosecond (or queue-depth) value lands in exactly one bucket.
pub const BUCKETS: usize = 64;

/// Index of the bucket holding `value`: 0 for 0, else
/// `64 - leading_zeros`, capped into the last bucket.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` value).
fn upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket log2 histogram. Wait-free to record, lock-free to
/// read; reads are racy-consistent (a concurrent `record` may or may
/// not be visible), which is exactly the contract quantile estimates
/// need.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Never blocks, never sheds.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (a racy-consistent snapshot).
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile as the upper bound of the bucket where the
    /// cumulative count crosses `q · total` — an "at most" estimate
    /// with one power-of-two of resolution. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_bound(i);
            }
        }
        u64::MAX
    }

    /// `(p50, p99)` — the drop-in replacement for the latency ring's
    /// quantile pair consumed by `STATS`.
    pub fn p50_p99(&self) -> (u64, u64) {
        (self.quantile(0.50), self.quantile(0.99))
    }
}

/// Protocol verbs carrying a latency histogram. Fixed cardinality on
/// purpose: the registry is allocation-free after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `FACT`/`ASSERT` — the write path (queue wait through publish).
    Fact,
    /// `PREPARE` — query compilation through the mutator.
    Prepare,
    /// `ENTAIL` — certain-answer evaluation.
    Entail,
    /// `COUNTERMODEL` — evaluation plus witness rendering.
    Countermodel,
    /// `BATCH` — a prepared panel evaluated together.
    Batch,
    /// Everything else that reaches a database (`STATS`, `FLUSH`, ...).
    Other,
}

impl Verb {
    /// All verbs, in exposition order.
    pub const ALL: [Verb; 6] = [
        Verb::Fact,
        Verb::Prepare,
        Verb::Entail,
        Verb::Countermodel,
        Verb::Batch,
        Verb::Other,
    ];

    /// The `verb` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Fact => "fact",
            Verb::Prepare => "prepare",
            Verb::Entail => "entail",
            Verb::Countermodel => "countermodel",
            Verb::Batch => "batch",
            Verb::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Verb::Fact => 0,
            Verb::Prepare => 1,
            Verb::Entail => 2,
            Verb::Countermodel => 3,
            Verb::Batch => 4,
            Verb::Other => 5,
        }
    }
}

/// Whether a request ran to completion or was cut by its deadline.
/// Aborted requests get their own label so a deadline storm's
/// elapsed-at-abort samples can't flatter (or pollute) the completed
/// tail — yet still show up in the per-verb totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request completed (successfully or with a non-deadline
    /// error).
    Ok,
    /// The request was aborted by its deadline; the recorded value is
    /// the elapsed time at abort.
    Aborted,
}

impl Status {
    /// The `status` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Aborted => "aborted",
        }
    }

    fn index(self) -> usize {
        match self {
            Status::Ok => 0,
            Status::Aborted => 1,
        }
    }
}

/// The per-database metrics bundle: request latency by verb and abort
/// status, evaluation latency by fired engine route, commit-queue
/// depth, and monotone engine-work counters.
#[derive(Debug)]
pub struct MetricsRegistry {
    verbs: [[Histogram; 2]; Verb::ALL.len()],
    routes: [Histogram; FiredRoute::ALL.len()],
    queue_depth: Histogram,
    states_expanded: AtomicU64,
    pair_hits: AtomicU64,
    pair_misses: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry (all histograms pre-created so exposition rows
    /// are stable from the first scrape).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            verbs: std::array::from_fn(|_| std::array::from_fn(|_| Histogram::new())),
            routes: std::array::from_fn(|_| Histogram::new()),
            queue_depth: Histogram::new(),
            states_expanded: AtomicU64::new(0),
            pair_hits: AtomicU64::new(0),
            pair_misses: AtomicU64::new(0),
        }
    }

    /// Records a request's wall time under its verb and abort status.
    pub fn record_verb(&self, verb: Verb, status: Status, ns: u64) {
        self.verbs[verb.index()][status.index()].record(ns);
    }

    /// Records an evaluation's wall time under the engine route that
    /// actually fired.
    pub fn record_route(&self, route: FiredRoute, ns: u64) {
        let i = FiredRoute::ALL
            .iter()
            .position(|&r| r == route)
            .expect("route in ALL");
        self.routes[i].record(ns);
    }

    /// Records the commit-queue depth observed at one enqueue.
    pub fn record_queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
    }

    /// Accumulates a request's engine-counter delta into the monotone
    /// totals.
    pub fn add_engine_counters(&self, delta: &indord_core::counters::EngineCounters) {
        self.states_expanded
            .fetch_add(delta.states_expanded, Ordering::Relaxed);
        self.pair_hits.fetch_add(delta.pair_hits, Ordering::Relaxed);
        self.pair_misses
            .fetch_add(delta.pair_misses, Ordering::Relaxed);
    }

    /// The verb histogram for `(verb, status)` — `STATS` quantiles and
    /// tests read through this.
    pub fn verb_histogram(&self, verb: Verb, status: Status) -> &Histogram {
        &self.verbs[verb.index()][status.index()]
    }

    /// The commit-queue depth histogram.
    pub fn queue_depth_histogram(&self) -> &Histogram {
        &self.queue_depth
    }

    /// `(p50, p99)` over *completed* requests of all verbs combined —
    /// the wire-compatible source of the `STATS` `p50_ns`/`p99_ns`
    /// fields. Aborted samples are excluded, as the ring's were (an
    /// aborted request never reached its `record_latency`).
    pub fn p50_p99(&self) -> (u64, u64) {
        let mut merged = [0u64; BUCKETS];
        for verb in &self.verbs {
            for (m, b) in merged.iter_mut().zip(verb[Status::Ok.index()].snapshot()) {
                *m += b;
            }
        }
        let total: u64 = merged.iter().sum();
        if total == 0 {
            return (0, 0);
        }
        let quantile = |q: f64| -> u64 {
            let target = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in merged.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return upper_bound(i);
                }
            }
            u64::MAX
        };
        (quantile(0.50), quantile(0.99))
    }

    /// Engine-work totals `(states_expanded, pair_hits, pair_misses)`.
    pub fn engine_totals(&self) -> (u64, u64, u64) {
        (
            self.states_expanded.load(Ordering::Relaxed),
            self.pair_hits.load(Ordering::Relaxed),
            self.pair_misses.load(Ordering::Relaxed),
        )
    }

    /// Renders the registry in Prometheus text exposition format,
    /// labelling every series with `db`. Empty verb/route series are
    /// rendered too (stable scrape shape); empty *status* series are
    /// elided only for `aborted` to keep the common case compact.
    pub fn render_prometheus(&self, db: &str) -> String {
        let mut out = String::with_capacity(8 * 1024);
        out.push_str(
            "# HELP indord_request_duration_ns Request wall time by verb, nanoseconds.\n\
             # TYPE indord_request_duration_ns histogram\n",
        );
        for verb in Verb::ALL {
            for status in [Status::Ok, Status::Aborted] {
                let h = self.verb_histogram(verb, status);
                if status == Status::Aborted && h.count() == 0 {
                    continue;
                }
                let labels = format!(
                    "db=\"{db}\",verb=\"{}\",status=\"{}\"",
                    verb.as_str(),
                    status.as_str()
                );
                render_histogram(&mut out, "indord_request_duration_ns", &labels, h);
            }
        }
        out.push_str(
            "# HELP indord_route_duration_ns Evaluation wall time by fired engine route, nanoseconds.\n\
             # TYPE indord_route_duration_ns histogram\n",
        );
        for (i, route) in FiredRoute::ALL.iter().enumerate() {
            let labels = format!("db=\"{db}\",route=\"{}\"", route.as_str());
            render_histogram(
                &mut out,
                "indord_route_duration_ns",
                &labels,
                &self.routes[i],
            );
        }
        out.push_str(
            "# HELP indord_commit_queue_depth Commit-queue depth sampled at enqueue.\n\
             # TYPE indord_commit_queue_depth histogram\n",
        );
        render_histogram(
            &mut out,
            "indord_commit_queue_depth",
            &format!("db=\"{db}\""),
            &self.queue_depth,
        );
        let (states, hits, misses) = self.engine_totals();
        for (name, help, value) in [
            (
                "indord_states_expanded_total",
                "States interned by the Thm 5.3 search.",
                states,
            ),
            (
                "indord_pair_hits_total",
                "Pair-table acquisitions served from the memo table.",
                hits,
            ),
            (
                "indord_pair_misses_total",
                "Pair-table acquisitions that ran the fixpoint computation.",
                misses,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name}{{db=\"{db}\"}} {value}\n"
            ));
        }
        out
    }
}

/// Writes one histogram in exposition format: cumulative `_bucket`
/// rows (empty buckets between occupied ones included, trailing empty
/// ones collapsed into `+Inf`), then `_sum` and `_count`.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.snapshot();
    let total: u64 = counts.iter().sum();
    let last_occupied = counts.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last_occupied {
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            cumulative += c;
            out.push_str(&format!(
                "{name}_bucket{{{labels},le=\"{}\"}} {cumulative}\n",
                upper_bound(i)
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{{{labels},le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{{{labels}}} {total}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value's bucket upper bound dominates it (the "at most"
        // quantile contract), except in the capped last bucket.
        for v in [0u64, 1, 2, 3, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(upper_bound(bucket_of(v)) >= v, "{v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let h = Histogram::new();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let (p50, p99) = h.p50_p99();
        assert!(p50 > 0);
        assert!(p99 >= p50);
        assert!(p99 >= 100_000, "p99 must reach the tail sample: {p99}");
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 101_500);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50_p99(), (0, 0));
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_p50_p99_merges_ok_samples_only() {
        let m = MetricsRegistry::new();
        m.record_verb(Verb::Entail, Status::Ok, 1_000);
        m.record_verb(Verb::Fact, Status::Ok, 2_000);
        m.record_verb(Verb::Entail, Status::Aborted, u64::MAX / 2);
        let (p50, p99) = m.p50_p99();
        assert!(p50 >= 1_000 && p99 < u64::MAX / 4, "({p50}, {p99})");
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_consistent() {
        let m = MetricsRegistry::new();
        m.record_verb(Verb::Entail, Status::Ok, 5_000);
        m.record_verb(Verb::Entail, Status::Ok, 9_000);
        m.record_route(indord_entail::FiredRoute::Seq, 4_000);
        m.record_queue_depth(1);
        m.add_engine_counters(&indord_core::counters::EngineCounters {
            states_expanded: 7,
            pair_hits: 3,
            pair_misses: 2,
        });
        let text = m.render_prometheus("lab");
        // _count equals the recorded observations.
        assert!(
            text.contains(
                "indord_request_duration_ns_count{db=\"lab\",verb=\"entail\",status=\"ok\"} 2"
            ),
            "{text}"
        );
        // +Inf bucket equals _count on every series.
        for line in text.lines().filter(|l| l.contains("le=\"+Inf\"")) {
            let series = line.split("_bucket").next().unwrap();
            let inf: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            let labels = line
                .split('{')
                .nth(1)
                .unwrap()
                .split(",le=")
                .next()
                .unwrap();
            let count_line = text
                .lines()
                .find(|l| l.starts_with(&format!("{series}_count{{{labels}}}")))
                .unwrap_or_else(|| panic!("missing count for {series}{{{labels}}}"));
            let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(inf, count, "{line}");
        }
        // Buckets are cumulative (non-decreasing within a series).
        let entail_buckets: Vec<u64> = text
            .lines()
            .filter(|l| {
                l.starts_with(
                    "indord_request_duration_ns_bucket{db=\"lab\",verb=\"entail\",status=\"ok\"",
                )
            })
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(
            entail_buckets.windows(2).all(|w| w[0] <= w[1]),
            "{entail_buckets:?}"
        );
        assert!(
            text.contains("indord_states_expanded_total{db=\"lab\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("indord_pair_hits_total{db=\"lab\"} 3"),
            "{text}"
        );
        // Aborted series are elided when empty.
        assert!(!text.contains("status=\"aborted\""), "{text}");
        m.record_verb(Verb::Entail, Status::Aborted, 1_000);
        assert!(m.render_prometheus("lab").contains("status=\"aborted\""));
    }
}
