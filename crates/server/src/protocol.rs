//! The `indord` wire protocol: line-oriented, typed on both sides, and
//! round-trippable — every [`Request`] and [`Response`] renders to text
//! that parses back to an equal value, errors included.
//!
//! ## Requests (one line each)
//!
//! ```text
//! OPEN <db>                        create-or-select a named database
//! USE <db>                         select an existing database
//! FACT <fragment>                  insert `;`-separated facts (parser syntax)
//! ASSERT <fragment>                alias of FACT (reads well for order atoms)
//! PREPARE <name>: <query>          compile into the per-database registry
//! ENTAIL <name>                    evaluate a prepared query
//! ENTAIL <query>                   parse-and-evaluate inline
//! COUNTERMODEL <name-or-query>     like ENTAIL, but return a witness
//! BATCH <name> <name> ...          evaluate several prepared queries
//! EXPLAIN <name-or-query>          render the compiled plan without executing
//! TRACE <request>                  execute with a per-phase breakdown
//! STATS                            per-database counters and latency
//! METRICS                          Prometheus text exposition of the histograms
//! HEALTH                           per-database health: ok|degraded|recovering
//! FLUSH                            force a snapshot + WAL compaction (durable dbs)
//! CLOSE                            end the connection
//! ```
//!
//! A bare identifier after `ENTAIL`/`COUNTERMODEL` names a prepared
//! query; anything else is inline query text (real queries always
//! contain `.`, `(`, or an order relation, so the forms cannot collide).
//!
//! Any request may carry a `DEADLINE <ms>` prefix (for example
//! `DEADLINE 10 COUNTERMODEL q0`): the server abandons the request with
//! `ERR deadline` once the budget expires instead of occupying a worker.
//! The prefix is framing, not part of the [`Request`] value — servers
//! parse it off with [`Request::parse_with_deadline`].
//!
//! ## Overload & degraded-mode errors
//!
//! The serving layer sheds load with typed, machine-readable errors
//! (see [`ErrorKind`]): `overloaded` (bounded commit queue full —
//! retryable with backoff), `busy` (connection cap reached — retry
//! against another replica or later), `deadline` (request budget
//! expired — the verdict is unknown; for writes the fragment may still
//! commit), `toolarge` (request line over the server's cap — the
//! connection closes), `readonly` (the database degraded to read-only
//! serving after a storage fault — writes will fail until an operator
//! restarts it), and `shutdown` (the write was queued but the server
//! stopped before logging it — it did NOT commit). Only `overloaded`
//! is unconditionally safe to retry verbatim.
//!
//! ## Responses
//!
//! Single-line: `OK <message>`, `CERTAIN`, `NOT-CERTAIN`,
//! `VERDICTS <name>=CERTAIN ...`, `STATS <key>=<value> ...`, `BYE`, and
//! `ERR <kind> <span|-> <message>` — the error form carries the
//! [`CoreError`] kind and, for parse errors, the byte span of the
//! offending token *within the request line*, so a client can point at
//! it ([`indord_core::parse::caret_snippet`]). Multi-line responses are
//! framed as `<HEADER>` … `END` blocks, all with the same shape:
//!
//! ```text
//! COUNTERMODEL          EXPLAIN            TRACE              METRICS
//! <rendered model>      <plan lines>       <phase lines>      <exposition lines>
//! END                   END                END                END
//! ```
//!
//! ## Consistency contract (snapshot isolation)
//!
//! Reads (`ENTAIL`, `COUNTERMODEL`, `BATCH`, `STATS`) evaluate against
//! an immutable snapshot of the selected database, pinned once at the
//! start of the request; writes (`FACT`/`ASSERT`, `PREPARE`) are
//! group-committed by a per-database mutator thread and become visible
//! by an atomic snapshot swap. Consequences a client can rely on:
//!
//! - **Read-your-own-writes.** A write's `OK` reply is sent only after
//!   the snapshot containing it has been published, so any *later*
//!   request on any connection observes it.
//! - **`BATCH` is atomic-read.** All names in one `BATCH` are evaluated
//!   against the *same* snapshot, taken once when the request is
//!   served. A write racing with the batch — even one acknowledged
//!   between two of its entries from another connection — is either
//!   visible to every verdict in the reply or to none; there are no
//!   torn multi-query reads. The flip side: a batch never sees writes
//!   committed after its snapshot was pinned, however long the batch
//!   runs.
//! - **Writers never wait for readers.** A slow `COUNTERMODEL`
//!   enumeration holds only its own snapshot, not a lock; concurrent
//!   `FACT`s commit and acknowledge while it runs.

use indord_core::error::{CoreError, Span};
use std::fmt;
use std::io::{self, BufRead};

/// True when `s` is a bare identifier (the prepared-query name form).
pub fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '$')
}

/// The evaluation target of `ENTAIL`/`COUNTERMODEL`: a prepared-query
/// name or inline query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A name registered by `PREPARE`.
    Prepared(String),
    /// Inline query text, parsed per request.
    Inline(String),
}

impl Target {
    fn parse(rest: &str) -> Target {
        if is_ident(rest) {
            Target::Prepared(rest.to_string())
        } else {
            Target::Inline(rest.to_string())
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Prepared(n) => write!(f, "{n}"),
            Target::Inline(q) => write!(f, "{q}"),
        }
    }
}

/// A parsed client request. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `OPEN <db>`: create-or-select a named database.
    Open(String),
    /// `USE <db>`: select an existing database.
    Use(String),
    /// `FACT <fragment>` / `ASSERT <fragment>`: insert facts.
    Fact(String),
    /// `PREPARE <name>: <query>`: compile into the registry.
    Prepare {
        /// Registry name.
        name: String,
        /// Query text.
        query: String,
    },
    /// `ENTAIL <name-or-query>`.
    Entail(Target),
    /// `COUNTERMODEL <name-or-query>`.
    Countermodel(Target),
    /// `BATCH <name> ...`.
    Batch(Vec<String>),
    /// `EXPLAIN <name-or-query>`: render the compiled plan — object
    /// splits, per-disjunct route, `!=` expansion, caps — without
    /// executing anything.
    Explain(Target),
    /// `TRACE <request>`: execute the inner request and return the
    /// per-phase timing breakdown plus engine counters. Not nestable.
    Trace(Box<Request>),
    /// `STATS`.
    Stats,
    /// `METRICS`: the latency/route histograms in Prometheus text
    /// exposition format.
    Metrics,
    /// `HEALTH`: the selected database's serving state.
    Health,
    /// `FLUSH`: force a snapshot and WAL compaction now (errors on a
    /// database without durable storage).
    Flush,
    /// `CLOSE`.
    Close,
}

impl Request {
    /// Parses a request line. On success also returns the byte offset of
    /// the payload (fragment / query text) within `line`, so spans in
    /// downstream parse errors can be shifted into line coordinates.
    pub fn parse_with_offset(line: &str) -> Result<(Request, usize), WireError> {
        // Offsets are computed against the original line (spans must
        // point into what the client sent), so track the leading
        // whitespace explicitly instead of slicing it away.
        let full = line.trim_end();
        let lead = full.len() - full.trim_start().len();
        let line = &full[lead..];
        let bad = |m: &str| WireError {
            kind: ErrorKind::Proto,
            span: None,
            message: m.to_string(),
        };
        let (word, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim_start()),
            None => (line, ""),
        };
        let payload = lead + (line.len() - rest.len());
        let need = |cond: bool, m: &str| if cond { Ok(()) } else { Err(bad(m)) };
        match word {
            "OPEN" => {
                need(is_ident(rest), "OPEN takes one database name")?;
                Ok((Request::Open(rest.to_string()), payload))
            }
            "USE" => {
                need(is_ident(rest), "USE takes one database name")?;
                Ok((Request::Use(rest.to_string()), payload))
            }
            "FACT" | "ASSERT" => {
                need(!rest.is_empty(), "FACT takes a `;`-separated fragment")?;
                Ok((Request::Fact(rest.to_string()), payload))
            }
            "PREPARE" => {
                let colon = rest
                    .find(':')
                    .ok_or_else(|| bad("PREPARE syntax: PREPARE <name>: <query>"))?;
                let name = rest[..colon].trim();
                let query = rest[colon + 1..].trim_start();
                need(is_ident(name), "PREPARE needs an identifier name")?;
                need(!query.is_empty(), "PREPARE needs a query after `:`")?;
                let qoff = payload + colon + 1 + (rest[colon + 1..].len() - query.len());
                Ok((
                    Request::Prepare {
                        name: name.to_string(),
                        query: query.to_string(),
                    },
                    qoff,
                ))
            }
            "ENTAIL" => {
                need(!rest.is_empty(), "ENTAIL takes a prepared name or a query")?;
                Ok((Request::Entail(Target::parse(rest)), payload))
            }
            "COUNTERMODEL" => {
                need(
                    !rest.is_empty(),
                    "COUNTERMODEL takes a prepared name or a query",
                )?;
                Ok((Request::Countermodel(Target::parse(rest)), payload))
            }
            "BATCH" => {
                let names: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
                need(
                    !names.is_empty() && names.iter().all(|n| is_ident(n)),
                    "BATCH takes one or more prepared names",
                )?;
                Ok((Request::Batch(names), payload))
            }
            "EXPLAIN" => {
                need(!rest.is_empty(), "EXPLAIN takes a prepared name or a query")?;
                Ok((Request::Explain(Target::parse(rest)), payload))
            }
            "TRACE" => {
                need(!rest.is_empty(), "TRACE takes a request to execute")?;
                let (inner, off) = Request::parse_with_offset(rest)?;
                if matches!(inner, Request::Trace(_)) {
                    return Err(bad("TRACE does not nest"));
                }
                Ok((Request::Trace(Box::new(inner)), payload + off))
            }
            "STATS" => {
                need(rest.is_empty(), "STATS takes no arguments")?;
                Ok((Request::Stats, payload))
            }
            "METRICS" => {
                need(rest.is_empty(), "METRICS takes no arguments")?;
                Ok((Request::Metrics, payload))
            }
            "HEALTH" => {
                need(rest.is_empty(), "HEALTH takes no arguments")?;
                Ok((Request::Health, payload))
            }
            "FLUSH" => {
                need(rest.is_empty(), "FLUSH takes no arguments")?;
                Ok((Request::Flush, payload))
            }
            "CLOSE" => {
                need(rest.is_empty(), "CLOSE takes no arguments")?;
                Ok((Request::Close, payload))
            }
            _ => Err(bad(&format!(
                "unknown command `{word}` (try OPEN/USE/FACT/PREPARE/ENTAIL/COUNTERMODEL/BATCH/EXPLAIN/TRACE/STATS/METRICS/HEALTH/FLUSH/CLOSE)"
            ))),
        }
    }

    /// Parses a request line (offset discarded).
    pub fn parse(line: &str) -> Result<Request, WireError> {
        Self::parse_with_offset(line).map(|(r, _)| r)
    }

    /// [`Request::parse_with_offset`] plus the optional `DEADLINE <ms>`
    /// framing prefix. The returned payload offset stays in coordinates
    /// of the *original* line (prefix included), so downstream parse
    /// errors still point at what the client sent.
    pub fn parse_with_deadline(
        line: &str,
    ) -> Result<(Request, usize, Option<std::time::Duration>), WireError> {
        let trimmed = line.trim_start();
        let lead = line.len() - trimmed.len();
        if let Some(rest) = trimmed.strip_prefix("DEADLINE") {
            // Require whitespace after the keyword so e.g. a future
            // `DEADLINES` verb would not be swallowed here.
            if rest.starts_with(char::is_whitespace) {
                let rest = rest.trim_start();
                let (ms_tok, cmd) = match rest.find(char::is_whitespace) {
                    Some(i) => (&rest[..i], rest[i..].trim_start()),
                    None => (rest, ""),
                };
                let ms: u64 = ms_tok.parse().map_err(|_| WireError {
                    kind: ErrorKind::Proto,
                    span: None,
                    message: "DEADLINE takes a millisecond budget: DEADLINE <ms> <request>"
                        .to_string(),
                })?;
                if cmd.is_empty() {
                    return Err(WireError::proto(
                        "DEADLINE needs a request after the budget: DEADLINE <ms> <request>",
                    ));
                }
                let cmd_off = lead + (trimmed.len() - cmd.len());
                let (req, off) = Request::parse_with_offset(cmd)?;
                return Ok((
                    req,
                    cmd_off + off,
                    Some(std::time::Duration::from_millis(ms)),
                ));
            }
        }
        let (req, off) = Request::parse_with_offset(line)?;
        Ok((req, off, None))
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Open(n) => write!(f, "OPEN {n}"),
            Request::Use(n) => write!(f, "USE {n}"),
            Request::Fact(t) => write!(f, "FACT {t}"),
            Request::Prepare { name, query } => write!(f, "PREPARE {name}: {query}"),
            Request::Entail(t) => write!(f, "ENTAIL {t}"),
            Request::Countermodel(t) => write!(f, "COUNTERMODEL {t}"),
            Request::Batch(names) => write!(f, "BATCH {}", names.join(" ")),
            Request::Explain(t) => write!(f, "EXPLAIN {t}"),
            Request::Trace(inner) => write!(f, "TRACE {inner}"),
            Request::Stats => write!(f, "STATS"),
            Request::Metrics => write!(f, "METRICS"),
            Request::Health => write!(f, "HEALTH"),
            Request::Flush => write!(f, "FLUSH"),
            Request::Close => write!(f, "CLOSE"),
        }
    }
}

/// The kind tag of a wire error — a flattened [`CoreError`] taxonomy
/// plus protocol/registry kinds of the serving layer itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed request or query/fragment text.
    Parse,
    /// Predicate arity mismatch.
    Arity,
    /// Predicate argument sort mismatch.
    Sort,
    /// Conflicting predicate declarations.
    Signature,
    /// Inconsistent order constraints.
    Inconsistent,
    /// Unbound query variable.
    Unbound,
    /// Operation requires monadic predicates.
    Monadic,
    /// Operation requires a sequential query.
    Sequential,
    /// Enumeration cap exceeded.
    Cap,
    /// Session/vocabulary mismatch.
    Vocabulary,
    /// Protocol misuse (bad command syntax, missing selection).
    Proto,
    /// Registry errors (unknown database, unknown prepared name).
    Registry,
    /// Bounded commit queue full — retryable with backoff.
    Overloaded,
    /// Request deadline expired before the answer was found.
    Deadline,
    /// Connection cap reached; the server refused the connection.
    Busy,
    /// Request line exceeded the server's length cap.
    TooLarge,
    /// Database is serving read-only after a storage fault.
    ReadOnly,
    /// Server shutting down; the write was rejected before logging.
    Shutdown,
}

impl ErrorKind {
    /// The wire token of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Arity => "arity",
            ErrorKind::Sort => "sort",
            ErrorKind::Signature => "signature",
            ErrorKind::Inconsistent => "inconsistent",
            ErrorKind::Unbound => "unbound",
            ErrorKind::Monadic => "monadic",
            ErrorKind::Sequential => "sequential",
            ErrorKind::Cap => "cap",
            ErrorKind::Vocabulary => "vocabulary",
            ErrorKind::Proto => "proto",
            ErrorKind::Registry => "registry",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Busy => "busy",
            ErrorKind::TooLarge => "toolarge",
            ErrorKind::ReadOnly => "readonly",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn from_token(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "arity" => ErrorKind::Arity,
            "sort" => ErrorKind::Sort,
            "signature" => ErrorKind::Signature,
            "inconsistent" => ErrorKind::Inconsistent,
            "unbound" => ErrorKind::Unbound,
            "monadic" => ErrorKind::Monadic,
            "sequential" => ErrorKind::Sequential,
            "cap" => ErrorKind::Cap,
            "vocabulary" => ErrorKind::Vocabulary,
            "proto" => ErrorKind::Proto,
            "registry" => ErrorKind::Registry,
            "overloaded" => ErrorKind::Overloaded,
            "deadline" => ErrorKind::Deadline,
            "busy" => ErrorKind::Busy,
            "toolarge" => ErrorKind::TooLarge,
            "readonly" => ErrorKind::ReadOnly,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }

    /// True when a client may retry the *same* request verbatim and
    /// expect it to eventually succeed (the REPL's backoff loop keys
    /// off this). `busy` is deliberately excluded: it is raised before
    /// a connection exists, so the retry belongs at the connect layer.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded)
    }
}

/// A typed error crossing the wire: kind, optional source span (line
/// coordinates), and message. Renders as `ERR <kind> <span|-> <message>`
/// and parses back to an equal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What class of failure.
    pub kind: ErrorKind,
    /// Byte span of the offending token within the request line, when
    /// the failure was a parse error with position information.
    pub span: Option<Span>,
    /// Human-readable description (single line).
    pub message: String,
}

impl WireError {
    /// A protocol-kind error with no span.
    pub fn proto(message: impl Into<String>) -> WireError {
        WireError {
            kind: ErrorKind::Proto,
            span: None,
            message: message.into(),
        }
    }

    /// A registry-kind error (unknown database / prepared name).
    pub fn registry(message: impl Into<String>) -> WireError {
        WireError {
            kind: ErrorKind::Registry,
            span: None,
            message: message.into(),
        }
    }

    /// An arbitrary-kind error with no span (the overload/supervision
    /// paths raise `overloaded`/`deadline`/`readonly`/`shutdown`/…
    /// without a source position).
    pub fn kinded(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError {
            kind,
            span: None,
            message: message.into(),
        }
    }

    /// Shifts the span (if any) right by `offset` bytes — from
    /// payload-relative into request-line coordinates.
    pub fn shift_span(mut self, offset: usize) -> WireError {
        if let Some(s) = self.span.as_mut() {
            s.start += offset;
            s.end += offset;
        }
        self
    }
}

impl From<&CoreError> for WireError {
    fn from(e: &CoreError) -> WireError {
        let kind = match e {
            CoreError::Parse { .. } => ErrorKind::Parse,
            CoreError::ArityMismatch { .. } => ErrorKind::Arity,
            CoreError::SortMismatch { .. } => ErrorKind::Sort,
            CoreError::SignatureConflict { .. } => ErrorKind::Signature,
            CoreError::InconsistentOrder { .. } => ErrorKind::Inconsistent,
            CoreError::UnboundVariable { .. } => ErrorKind::Unbound,
            CoreError::NotMonadic { .. } => ErrorKind::Monadic,
            CoreError::NotSequential => ErrorKind::Sequential,
            CoreError::CapExceeded { .. } => ErrorKind::Cap,
            CoreError::VocabularyMismatch => ErrorKind::Vocabulary,
            CoreError::DeadlineExceeded => ErrorKind::Deadline,
        };
        // A spanned parse error's Display embeds its (payload-relative)
        // byte position; the wire span — shifted into request-line
        // coordinates — supersedes it, so carry the bare message.
        let message = match e {
            CoreError::Parse { message, .. } if e.span().is_some() => message.clone(),
            _ => e.to_string(),
        };
        WireError {
            kind,
            span: e.span(),
            message,
        }
    }
}

impl From<CoreError> for WireError {
    fn from(e: CoreError) -> WireError {
        WireError::from(&e)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ERR {} ", self.kind.as_str())?;
        match self.span {
            Some(s) => write!(f, "{s} ")?,
            None => write!(f, "- ")?,
        }
        // The message must stay on one line for the framing to hold.
        write!(f, "{}", self.message.replace('\n', "; "))
    }
}

/// A database's serving state, carried by the `HEALTH` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Serving reads and writes normally.
    #[default]
    Ok,
    /// Read-only: a storage fault (or exhausted restart budget) stopped
    /// the write path; reads serve the last published snapshot.
    Degraded,
    /// The supervisor is restarting the mutator; writes briefly fail.
    Recovering,
}

impl HealthState {
    /// The wire token of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Recovering => "recovering",
        }
    }

    /// Inverse of [`HealthState::as_str`].
    pub fn from_token(s: &str) -> Option<HealthState> {
        Some(match s {
            "ok" => HealthState::Ok,
            "degraded" => HealthState::Degraded,
            "recovering" => HealthState::Recovering,
            _ => return None,
        })
    }
}

/// Per-database counters carried by the `STATS` reply. Renders as a
/// single `key=value` line and parses back field-for-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Atoms in the database (`|D|`).
    pub atoms: u64,
    /// Session mutation epoch.
    pub epoch: u64,
    /// Prepared queries registered.
    pub prepared: u64,
    /// Entail-class requests served (ENTAIL/COUNTERMODEL/BATCH entries).
    pub queries: u64,
    /// Requests answered from the prepared-query registry.
    pub prepared_hits: u64,
    /// Write requests applied (FACT/ASSERT atoms).
    pub writes: u64,
    /// Scaffold built-from-scratch count (1 = warm, never rebuilt).
    pub scaffold_builds: u64,
    /// Scaffold rebuilds beyond the first build (0 = every write was
    /// absorbed in place).
    pub scaffold_rebuilds: u64,
    /// Writes absorbed by in-place cache patching.
    pub in_place_patches: u64,
    /// Writes that dropped the session caches.
    pub cache_drops: u64,
    /// Pairs evicted from the scaffold memo table.
    pub pair_evictions: u64,
    /// Concurrent searches that fell back to a private pair table.
    pub contention_fallbacks: u64,
    /// Median request latency, nanoseconds (entail-class requests).
    pub p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Write jobs currently queued for the database's mutator thread
    /// (always 0 under the RwLock ablation mode, and usually 0 at rest).
    pub commit_queue_depth: u64,
    /// 99th-percentile commit-queue depth observed at enqueue time.
    pub queue_depth_p99: u64,
    /// Group commits executed (mutator drain cycles).
    pub group_commits: u64,
    /// Write jobs processed across all group commits; divided by
    /// `group_commits` this is the mean coalescing factor.
    pub group_fragments: u64,
    /// Largest single group commit.
    pub max_group: u64,
    /// Snapshots published (one per group commit that changed state).
    pub snapshots_published: u64,
    /// Applied write fragments classified patchable (label / acyclic
    /// edge / known-vertex `!=`) and sorted ahead in their group.
    pub patchable_writes: u64,
    /// Applied write fragments classified structural (fresh constants,
    /// n-ary facts) and sorted behind the patchable ones.
    pub structural_writes: u64,
    /// Age of the snapshot that answered this `STATS`, nanoseconds
    /// since it was published (0 under the RwLock mode).
    pub snapshot_age_ns: u64,
    /// WAL records appended (0 for an in-memory database; all wal_*,
    /// fsync, snapshot-file, and recovery counters below likewise).
    pub wal_appends: u64,
    /// WAL bytes appended (headers + payloads).
    pub wal_bytes: u64,
    /// fsyncs issued by the WAL (policy-dependent: ~1 per record under
    /// `always`, ~1 per group commit under `group`, 0 under `os`).
    pub fsyncs: u64,
    /// Snapshot files written (cadence + FLUSH).
    pub snapshots_written: u64,
    /// WAL compactions completed after a snapshot.
    pub compactions: u64,
    /// WAL records replayed during boot recovery.
    pub recovery_replayed_fragments: u64,
    /// Torn-tail bytes truncated during boot recovery.
    pub recovery_truncated_bytes: u64,
    /// Latency/queue-depth samples the stats rings shed under
    /// contention (`try_lock` misses). Nonzero means `p50_ns`/`p99_ns`
    /// and `queue_depth_p99` are computed from a biased subsample.
    pub stats_samples_dropped: u64,
    /// Writes rejected with `ERR overloaded` (bounded queue full).
    pub writes_shed: u64,
    /// Requests abandoned with `ERR deadline`.
    pub deadline_aborts: u64,
    /// Connections refused with `ERR busy` at the accept loop
    /// (server-wide: every database reports the same number).
    pub conns_rejected: u64,
    /// Mutator restarts the supervisor performed after panic escapes.
    pub mutator_restarts: u64,
    /// Transitions into read-only degraded mode.
    pub degraded_entries: u64,
}

impl StatsReply {
    const FIELDS: [&'static str; 36] = [
        "atoms",
        "epoch",
        "prepared",
        "queries",
        "prepared_hits",
        "writes",
        "scaffold_builds",
        "scaffold_rebuilds",
        "in_place_patches",
        "cache_drops",
        "pair_evictions",
        "contention_fallbacks",
        "p50_ns",
        "p99_ns",
        "commit_queue_depth",
        "queue_depth_p99",
        "group_commits",
        "group_fragments",
        "max_group",
        "snapshots_published",
        "patchable_writes",
        "structural_writes",
        "snapshot_age_ns",
        "wal_appends",
        "wal_bytes",
        "fsyncs",
        "snapshots_written",
        "compactions",
        "recovery_replayed_fragments",
        "recovery_truncated_bytes",
        "stats_samples_dropped",
        "writes_shed",
        "deadline_aborts",
        "conns_rejected",
        "mutator_restarts",
        "degraded_entries",
    ];

    fn get(&self, field: &str) -> u64 {
        match field {
            "atoms" => self.atoms,
            "epoch" => self.epoch,
            "prepared" => self.prepared,
            "queries" => self.queries,
            "prepared_hits" => self.prepared_hits,
            "writes" => self.writes,
            "scaffold_builds" => self.scaffold_builds,
            "scaffold_rebuilds" => self.scaffold_rebuilds,
            "in_place_patches" => self.in_place_patches,
            "cache_drops" => self.cache_drops,
            "pair_evictions" => self.pair_evictions,
            "contention_fallbacks" => self.contention_fallbacks,
            "p50_ns" => self.p50_ns,
            "p99_ns" => self.p99_ns,
            "commit_queue_depth" => self.commit_queue_depth,
            "queue_depth_p99" => self.queue_depth_p99,
            "group_commits" => self.group_commits,
            "group_fragments" => self.group_fragments,
            "max_group" => self.max_group,
            "snapshots_published" => self.snapshots_published,
            "patchable_writes" => self.patchable_writes,
            "structural_writes" => self.structural_writes,
            "snapshot_age_ns" => self.snapshot_age_ns,
            "wal_appends" => self.wal_appends,
            "wal_bytes" => self.wal_bytes,
            "fsyncs" => self.fsyncs,
            "snapshots_written" => self.snapshots_written,
            "compactions" => self.compactions,
            "recovery_replayed_fragments" => self.recovery_replayed_fragments,
            "recovery_truncated_bytes" => self.recovery_truncated_bytes,
            "stats_samples_dropped" => self.stats_samples_dropped,
            "writes_shed" => self.writes_shed,
            "deadline_aborts" => self.deadline_aborts,
            "conns_rejected" => self.conns_rejected,
            "mutator_restarts" => self.mutator_restarts,
            "degraded_entries" => self.degraded_entries,
            _ => unreachable!("unknown stats field"),
        }
    }

    fn set(&mut self, field: &str, v: u64) -> bool {
        match field {
            "atoms" => self.atoms = v,
            "epoch" => self.epoch = v,
            "prepared" => self.prepared = v,
            "queries" => self.queries = v,
            "prepared_hits" => self.prepared_hits = v,
            "writes" => self.writes = v,
            "scaffold_builds" => self.scaffold_builds = v,
            "scaffold_rebuilds" => self.scaffold_rebuilds = v,
            "in_place_patches" => self.in_place_patches = v,
            "cache_drops" => self.cache_drops = v,
            "pair_evictions" => self.pair_evictions = v,
            "contention_fallbacks" => self.contention_fallbacks = v,
            "p50_ns" => self.p50_ns = v,
            "p99_ns" => self.p99_ns = v,
            "commit_queue_depth" => self.commit_queue_depth = v,
            "queue_depth_p99" => self.queue_depth_p99 = v,
            "group_commits" => self.group_commits = v,
            "group_fragments" => self.group_fragments = v,
            "max_group" => self.max_group = v,
            "snapshots_published" => self.snapshots_published = v,
            "patchable_writes" => self.patchable_writes = v,
            "structural_writes" => self.structural_writes = v,
            "snapshot_age_ns" => self.snapshot_age_ns = v,
            "wal_appends" => self.wal_appends = v,
            "wal_bytes" => self.wal_bytes = v,
            "fsyncs" => self.fsyncs = v,
            "snapshots_written" => self.snapshots_written = v,
            "compactions" => self.compactions = v,
            "recovery_replayed_fragments" => self.recovery_replayed_fragments = v,
            "recovery_truncated_bytes" => self.recovery_truncated_bytes = v,
            "stats_samples_dropped" => self.stats_samples_dropped = v,
            "writes_shed" => self.writes_shed = v,
            "deadline_aborts" => self.deadline_aborts = v,
            "conns_rejected" => self.conns_rejected = v,
            "mutator_restarts" => self.mutator_restarts = v,
            "degraded_entries" => self.degraded_entries = v,
            _ => return false,
        }
        true
    }
}

/// A server response. See the module docs for the framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <message>`: a successful non-query request.
    Ok(String),
    /// `CERTAIN` / `NOT-CERTAIN`.
    Verdict(bool),
    /// `VERDICTS <name>=CERTAIN ...`: one entry per BATCH element.
    Verdicts(Vec<(String, bool)>),
    /// `COUNTERMODEL ... END`: the rendered witness (an entailed
    /// COUNTERMODEL request answers `CERTAIN` instead).
    Countermodel(String),
    /// `EXPLAIN ... END`: the rendered plan of an `EXPLAIN` request.
    Explain(String),
    /// `TRACE ... END`: the phase/counter breakdown of a `TRACE`d
    /// request.
    Trace(String),
    /// `METRICS ... END`: Prometheus text exposition.
    Metrics(String),
    /// `STATS key=value ...`. Boxed: the counter block dwarfs every
    /// other variant, and responses move through reply channels by
    /// value.
    Stats(Box<StatsReply>),
    /// `HEALTH <state> <detail|->`: the selected database's serving
    /// state, with a one-line reason when not `ok`.
    Health {
        /// Serving state.
        state: HealthState,
        /// Why (empty when `ok`).
        detail: String,
    },
    /// `BYE`: connection closing.
    Bye,
    /// `ERR <kind> <span|-> <message>`.
    Error(WireError),
}

impl Response {
    /// Renders the response, newline-terminated, ready for the wire.
    pub fn render(&self) -> String {
        match self {
            Response::Ok(m) => format!("OK {}\n", m.replace('\n', "; ")),
            Response::Verdict(true) => "CERTAIN\n".to_string(),
            Response::Verdict(false) => "NOT-CERTAIN\n".to_string(),
            Response::Verdicts(vs) => {
                let mut out = String::from("VERDICTS");
                for (name, holds) in vs {
                    out.push(' ');
                    out.push_str(name);
                    out.push('=');
                    out.push_str(if *holds { "CERTAIN" } else { "NOT-CERTAIN" });
                }
                out.push('\n');
                out
            }
            Response::Countermodel(body) => {
                let body = body.trim_end_matches('\n');
                format!("COUNTERMODEL\n{body}\nEND\n")
            }
            Response::Explain(body) => {
                let body = body.trim_end_matches('\n');
                format!("EXPLAIN\n{body}\nEND\n")
            }
            Response::Trace(body) => {
                let body = body.trim_end_matches('\n');
                format!("TRACE\n{body}\nEND\n")
            }
            Response::Metrics(body) => {
                let body = body.trim_end_matches('\n');
                format!("METRICS\n{body}\nEND\n")
            }
            Response::Stats(s) => {
                let mut out = String::from("STATS");
                for f in StatsReply::FIELDS {
                    out.push(' ');
                    out.push_str(f);
                    out.push('=');
                    out.push_str(&s.get(f).to_string());
                }
                out.push('\n');
                out
            }
            Response::Health { state, detail } => {
                if detail.is_empty() {
                    format!("HEALTH {} -\n", state.as_str())
                } else {
                    format!("HEALTH {} {}\n", state.as_str(), detail.replace('\n', "; "))
                }
            }
            Response::Bye => "BYE\n".to_string(),
            Response::Error(e) => format!("{e}\n"),
        }
    }

    /// Reads one framed response off `r` (one line, or a
    /// `COUNTERMODEL`…`END` block). `Ok(None)` on clean EOF.
    pub fn read_from<R: BufRead>(r: &mut R) -> io::Result<Option<Response>> {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let first = line.trim_end_matches(['\n', '\r']).to_string();
        let block = |header: &str| -> Option<fn(String) -> Response> {
            match header {
                "COUNTERMODEL" => Some(Response::Countermodel),
                "EXPLAIN" => Some(Response::Explain),
                "TRACE" => Some(Response::Trace),
                "METRICS" => Some(Response::Metrics),
                _ => None,
            }
        };
        if let Some(wrap) = block(&first) {
            let mut body = String::new();
            loop {
                let mut next = String::new();
                if r.read_line(&mut next)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("unterminated {first} block"),
                    ));
                }
                let trimmed = next.trim_end_matches(['\n', '\r']);
                if trimmed == "END" {
                    break;
                }
                body.push_str(trimmed);
                body.push('\n');
            }
            return Ok(Some(wrap(body)));
        }
        Self::parse_line(&first).map(Some).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {first}"))
        })
    }

    /// Parses a single-line response (everything but countermodels).
    pub fn parse_line(line: &str) -> Option<Response> {
        let line = line.trim_end();
        if line == "CERTAIN" {
            return Some(Response::Verdict(true));
        }
        if line == "NOT-CERTAIN" {
            return Some(Response::Verdict(false));
        }
        if line == "BYE" {
            return Some(Response::Bye);
        }
        if let Some(m) = line.strip_prefix("OK") {
            return Some(Response::Ok(m.strip_prefix(' ').unwrap_or(m).to_string()));
        }
        if let Some(rest) = line.strip_prefix("VERDICTS") {
            let mut vs = Vec::new();
            for part in rest.split_whitespace() {
                let (name, v) = part.split_once('=')?;
                let holds = match v {
                    "CERTAIN" => true,
                    "NOT-CERTAIN" => false,
                    _ => return None,
                };
                vs.push((name.to_string(), holds));
            }
            return Some(Response::Verdicts(vs));
        }
        if let Some(rest) = line.strip_prefix("STATS") {
            let mut s = StatsReply::default();
            for part in rest.split_whitespace() {
                let (k, v) = part.split_once('=')?;
                if !s.set(k, v.parse().ok()?) {
                    return None;
                }
            }
            return Some(Response::Stats(Box::new(s)));
        }
        if let Some(rest) = line.strip_prefix("HEALTH ") {
            let (state_tok, detail) = match rest.split_once(' ') {
                Some((s, d)) => (s, d),
                None => (rest, "-"),
            };
            let state = HealthState::from_token(state_tok)?;
            let detail = if detail == "-" {
                String::new()
            } else {
                detail.to_string()
            };
            return Some(Response::Health { state, detail });
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (kind_tok, rest) = rest.split_once(' ')?;
            let kind = ErrorKind::from_token(kind_tok)?;
            let (span_tok, message) = match rest.split_once(' ') {
                Some((s, m)) => (s, m.to_string()),
                None => (rest, String::new()),
            };
            let span = if span_tok == "-" {
                None
            } else {
                let (a, b) = span_tok.split_once("..")?;
                Some(Span::new(a.parse().ok()?, b.parse().ok()?))
            };
            return Some(Response::Error(WireError {
                kind,
                span,
                message,
            }));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Open("lab".into()),
            Request::Use("lab".into()),
            Request::Fact("P(u); u < v;".into()),
            Request::Prepare {
                name: "cooled".into(),
                query: "exists a b. Heat(a) & a < b & Cool(b)".into(),
            },
            Request::Entail(Target::Prepared("cooled".into())),
            Request::Entail(Target::Inline("exists t. P(t)".into())),
            Request::Countermodel(Target::Prepared("cooled".into())),
            Request::Batch(vec!["a".into(), "b".into()]),
            Request::Explain(Target::Prepared("cooled".into())),
            Request::Explain(Target::Inline("exists t. P(t)".into())),
            Request::Trace(Box::new(Request::Entail(Target::Prepared("cooled".into())))),
            Request::Trace(Box::new(Request::Fact("P(u);".into()))),
            Request::Metrics,
            Request::Stats,
            Request::Health,
            Request::Flush,
            Request::Close,
        ];
        for r in cases {
            let line = r.to_string();
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
        // ASSERT is an alias of FACT.
        assert_eq!(
            Request::parse("ASSERT u < v;").unwrap(),
            Request::Fact("u < v;".into())
        );
    }

    #[test]
    fn request_payload_offsets_index_into_the_line() {
        let line = "FACT P(u); u < v;";
        let (req, off) = Request::parse_with_offset(line).unwrap();
        assert_eq!(req, Request::Fact("P(u); u < v;".into()));
        assert_eq!(&line[off..], "P(u); u < v;");
        let line = "PREPARE cooled:  exists t. P(t)";
        let (_, off) = Request::parse_with_offset(line).unwrap();
        assert_eq!(&line[off..], "exists t. P(t)");
    }

    #[test]
    fn leading_whitespace_is_tolerated_and_offsets_stay_line_relative() {
        assert_eq!(Request::parse("  STATS").unwrap(), Request::Stats);
        let line = "   FACT P(u);";
        let (req, off) = Request::parse_with_offset(line).unwrap();
        assert_eq!(req, Request::Fact("P(u);".into()));
        assert_eq!(&line[off..], "P(u);");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for line in [
            "",
            "NOPE",
            "OPEN two words",
            "USE",
            "PREPARE missing colon",
            "PREPARE : q",
            "BATCH",
            "STATS now",
            "FACT",
            "EXPLAIN",
            "TRACE",
            "TRACE TRACE STATS",
            "METRICS now",
        ] {
            let e = Request::parse(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Proto, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Ok("opened lab (12 atoms)".into()),
            Response::Verdict(true),
            Response::Verdict(false),
            Response::Verdicts(vec![("a".into(), true), ("b".into(), false)]),
            Response::Countermodel("points 0..2\n  u \u{21a6} 0\n  P(pt0)\n".into()),
            Response::Explain(
                "query cooled\nroute seq\ndisjuncts 1\nstate_cap 4096\n".into(),
            ),
            Response::Trace(
                "request ENTAIL cooled\nroute seq\noutcome CERTAIN\ntotal_ns 1234\nphase parse 10\nphase search 900\n".into(),
            ),
            Response::Metrics(
                "# TYPE indord_request_duration_ns histogram\nindord_request_duration_ns_count{db=\"lab\",verb=\"entail\",status=\"ok\"} 3\n".into(),
            ),
            Response::Stats(Box::new(StatsReply {
                atoms: 42,
                epoch: 7,
                prepared: 3,
                queries: 100,
                prepared_hits: 90,
                writes: 5,
                scaffold_builds: 1,
                scaffold_rebuilds: 0,
                in_place_patches: 5,
                cache_drops: 0,
                pair_evictions: 2,
                contention_fallbacks: 1,
                p50_ns: 8_000,
                p99_ns: 44_000,
                commit_queue_depth: 0,
                queue_depth_p99: 3,
                group_commits: 4,
                group_fragments: 9,
                max_group: 4,
                snapshots_published: 4,
                patchable_writes: 7,
                structural_writes: 2,
                snapshot_age_ns: 1_234,
                wal_appends: 9,
                wal_bytes: 412,
                fsyncs: 4,
                snapshots_written: 1,
                compactions: 1,
                recovery_replayed_fragments: 6,
                recovery_truncated_bytes: 17,
                stats_samples_dropped: 8,
                writes_shed: 11,
                deadline_aborts: 2,
                conns_rejected: 3,
                mutator_restarts: 1,
                degraded_entries: 1,
            })),
            Response::Health {
                state: HealthState::Ok,
                detail: String::new(),
            },
            Response::Health {
                state: HealthState::Degraded,
                detail: "wal io is dead after injected fault".into(),
            },
            Response::Bye,
            Response::Error(WireError {
                kind: ErrorKind::Overloaded,
                span: None,
                message: "commit queue full (depth 8/8); retry with backoff".into(),
            }),
            Response::Error(WireError {
                kind: ErrorKind::Parse,
                span: Some(Span::new(8, 11)),
                message: "unknown predicate `Zap`".into(),
            }),
            Response::Error(WireError::registry("no database selected")),
        ];
        for resp in cases {
            let rendered = resp.render();
            let mut r = io::BufReader::new(rendered.as_bytes());
            let back = Response::read_from(&mut r).unwrap().unwrap();
            assert_eq!(back, resp, "{rendered}");
        }
    }

    #[test]
    fn deadline_prefix_parses_and_offsets_stay_line_relative() {
        let line = "DEADLINE 10 COUNTERMODEL exists t. P(t)";
        let (req, off, d) = Request::parse_with_deadline(line).unwrap();
        assert_eq!(
            req,
            Request::Countermodel(Target::Inline("exists t. P(t)".into()))
        );
        assert_eq!(&line[off..], "exists t. P(t)");
        assert_eq!(d, Some(std::time::Duration::from_millis(10)));
        // No prefix: plain parse, no deadline.
        let (req, _, d) = Request::parse_with_deadline("STATS").unwrap();
        assert_eq!(req, Request::Stats);
        assert_eq!(d, None);
        // Malformed budgets are typed proto errors.
        for line in ["DEADLINE", "DEADLINE x STATS", "DEADLINE 10"] {
            let e = Request::parse_with_deadline(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Proto, "{line}");
        }
    }

    #[test]
    fn core_errors_map_to_kinds_with_spans() {
        let mut voc = indord_core::sym::Vocabulary::new();
        let e = indord_core::parse::parse_database(&mut voc, "P(u) @").unwrap_err();
        let w = WireError::from(&e);
        assert_eq!(w.kind, ErrorKind::Parse);
        assert_eq!(w.span, Some(Span::point(5)));
        // Shifting moves into line coordinates: "FACT P(u) @".
        let shifted = w.shift_span(5);
        assert_eq!(shifted.span, Some(Span::point(10)));
        let w: WireError = CoreError::NotSequential.into();
        assert_eq!(w.kind, ErrorKind::Sequential);
        assert_eq!(w.span, None);
    }

    #[test]
    fn multiline_messages_are_flattened() {
        let e = Response::Error(WireError::proto("a\nb"));
        let rendered = e.render();
        assert_eq!(rendered.lines().count(), 1);
        let mut r = io::BufReader::new(rendered.as_bytes());
        let back = Response::read_from(&mut r).unwrap().unwrap();
        assert_eq!(back, Response::Error(WireError::proto("a; b")));
    }
}
