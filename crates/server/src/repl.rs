//! The `indord` client: a line-oriented REPL speaking the wire protocol
//! over TCP or directly in-process (`--embedded`).
//!
//! Both transports share one loop: read a line, send it, print the
//! framed response. Parse errors come back with byte spans in request
//! line coordinates, which the REPL turns into caret diagnostics via
//! [`indord_core::parse::caret_snippet`].

use crate::protocol::Response;
use crate::runtime::{Conn, Registry};
use indord_core::parse::caret_snippet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Retry attempts for retryable rejections (`ERR overloaded`) before
/// the error is surfaced to the user.
const RETRY_ATTEMPTS: u32 = 6;

/// Base delay of the exponential backoff between retries.
const RETRY_BASE: Duration = Duration::from_millis(2);

/// A cheap jitter in `0..=ms` without a PRNG dependency: hash a
/// process-random `RandomState` over the attempt counter.
fn jitter_ms(attempt: u32, ms: u64) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    if ms == 0 {
        return 0;
    }
    let mut h = RandomState::new().build_hasher();
    h.write_u32(attempt);
    h.finish() % (ms + 1)
}

/// Where a REPL sends its requests.
pub enum Backend {
    /// A TCP connection to an `indord-serve` instance: the write half
    /// plus one persistent buffered reader (a per-request reader would
    /// discard any bytes it read ahead when dropped).
    Tcp {
        /// The write half.
        stream: Box<TcpStream>,
        /// The read half, buffered for line framing.
        reader: Box<BufReader<TcpStream>>,
    },
    /// An in-process registry (no server needed).
    Embedded(Box<Conn>),
}

impl Backend {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> io::Result<Backend> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Backend::Tcp {
            stream: Box::new(stream),
            reader: Box::new(reader),
        })
    }

    /// An embedded backend over a fresh registry.
    pub fn embedded() -> Backend {
        Backend::Embedded(Box::new(Conn::new(Arc::new(Registry::new()))))
    }

    /// An embedded backend over an existing registry.
    pub fn embedded_in(registry: Arc<Registry>) -> Backend {
        Backend::Embedded(Box::new(Conn::new(registry)))
    }

    /// Sends one request line, returning the typed response (`None` on
    /// transport EOF).
    pub fn send(&mut self, line: &str) -> io::Result<Option<Response>> {
        match self {
            Backend::Embedded(conn) => Ok(Some(conn.handle_line(line))),
            Backend::Tcp { stream, reader } => {
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
                stream.flush()?;
                Response::read_from(reader.as_mut())
            }
        }
    }

    /// [`Backend::send`] with client-side backpressure handling: a
    /// retryable rejection (`ERR overloaded` from the bounded commit
    /// queue) is retried with jittered exponential backoff before the
    /// error is surfaced. Non-retryable responses return immediately —
    /// in particular `ERR deadline` on a write is NOT retried blindly,
    /// since the write may still commit.
    pub fn send_retrying(&mut self, line: &str) -> io::Result<Option<Response>> {
        let mut attempt = 0u32;
        loop {
            let resp = self.send(line)?;
            match &resp {
                Some(Response::Error(e)) if e.kind.is_retryable() && attempt < RETRY_ATTEMPTS => {
                    let backoff = RETRY_BASE.as_millis() as u64 * (1u64 << attempt);
                    let wait = backoff + jitter_ms(attempt, backoff / 2);
                    std::thread::sleep(Duration::from_millis(wait));
                    attempt += 1;
                }
                _ => return Ok(resp),
            }
        }
    }
}

const HELP: &str = "commands:
  OPEN <db>                     create-or-select a database
  USE <db>                      select an existing database
  FACT <fragment>               insert facts, e.g. FACT P(u); u < v;
  ASSERT <fragment>             alias of FACT
  PREPARE <name>: <query>       compile a query for reuse
  ENTAIL <name-or-query>        certain-answer check
  COUNTERMODEL <name-or-query>  like ENTAIL, with a witness on failure
  BATCH <name> <name> ...       evaluate prepared queries together
  EXPLAIN <name-or-query>       show the compiled plan without executing
  TRACE <request>               execute and report the phase/counter breakdown
  METRICS                       latency histograms in Prometheus text format
  STATS                         serving counters for the selected db
  HEALTH                        ok | degraded | recovering for the selected db
  FLUSH                         force a snapshot + log compaction (durable dbs)
  DEADLINE <ms> <request>       bound one request, e.g. DEADLINE 50 ENTAIL q
  CLOSE                         quit
overload answers: ERR overloaded is retried here with backoff; ERR busy,
ERR readonly, ERR deadline, ERR shutdown are surfaced as-is";

/// Runs the REPL loop: lines from `input` to the backend, responses to
/// `out`. `prompt` enables the interactive `indord>` prompt. Returns on
/// `CLOSE`, transport EOF, or input EOF.
pub fn run<R: BufRead, W: Write>(
    mut backend: Backend,
    input: R,
    out: &mut W,
    prompt: bool,
) -> io::Result<()> {
    if prompt {
        writeln!(out, "indord REPL — `help` for commands, CLOSE to quit")?;
        write!(out, "indord> ")?;
        out.flush()?;
    }
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            if trimmed == "help" || trimmed == "?" {
                writeln!(out, "{HELP}")?;
            } else {
                let Some(resp) = backend.send_retrying(trimmed)? else {
                    writeln!(out, "connection closed by server")?;
                    return Ok(());
                };
                out.write_all(resp.render().as_bytes())?;
                if let Response::Error(e) = &resp {
                    // Point at the offending token of the sent line.
                    if let Some(span) = e.span {
                        writeln!(out, "{}", caret_snippet(trimmed, span))?;
                    }
                }
                if matches!(resp, Response::Bye) {
                    return Ok(());
                }
            }
        }
        if prompt {
            write!(out, "indord> ")?;
            out.flush()?;
        }
    }
    // Input exhausted: say goodbye to a TCP server so it releases the
    // worker promptly.
    let _ = backend.send("CLOSE");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_repl_transcript() {
        let script = "\
OPEN lab
FACT pred Heat(ord); pred Cool(ord); Heat(t1); Cool(t2); t1 < t2;
PREPARE cooled: exists a b. Heat(a) & a < b & Cool(b)
ENTAIL cooled
ENTAIL exists a b. Cool(a) & a < b & Heat(b)
STATS
CLOSE
";
        let mut out = Vec::new();
        run(
            Backend::embedded(),
            BufReader::new(script.as_bytes()),
            &mut out,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("OK using lab"), "{text}");
        assert!(lines[1].starts_with("OK inserted 3 atoms"), "{text}");
        assert!(lines[2].starts_with("OK prepared cooled"), "{text}");
        assert_eq!(lines[3], "CERTAIN");
        assert_eq!(lines[4], "NOT-CERTAIN");
        assert!(lines[5].starts_with("STATS "), "{text}");
        assert_eq!(lines[6], "BYE");
    }

    #[test]
    fn retry_exhaustion_surfaces_the_overload_error() {
        // max_queue = 0 sheds every client write at admission, so the
        // REPL's backoff loop deterministically exhausts its attempts
        // and the typed overload error reaches the transcript.
        let registry = Arc::new(Registry::new().with_max_queue(0));
        let script = "OPEN lab\nFACT pred P(ord); P(u);\nCLOSE\n";
        let mut out = Vec::new();
        run(
            Backend::embedded_in(registry),
            BufReader::new(script.as_bytes()),
            &mut out,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ERR overloaded"), "{text}");
        assert!(text.contains("retry with backoff"), "{text}");
    }

    #[test]
    fn health_is_part_of_the_repl_surface() {
        let script = "OPEN lab\nHEALTH\nCLOSE\n";
        let mut out = Vec::new();
        run(
            Backend::embedded(),
            BufReader::new(script.as_bytes()),
            &mut out,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("HEALTH ok snapshot_age_ms="), "{text}");
        assert!(text.contains("commit_queue_depth=0"), "{text}");
    }

    #[test]
    fn parse_errors_come_with_carets() {
        let script = "OPEN lab\nFACT P(u) @\nCLOSE\n";
        let mut out = Vec::new();
        run(
            Backend::embedded(),
            BufReader::new(script.as_bytes()),
            &mut out,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ERR parse 10..11"), "{text}");
        assert!(text.contains("FACT P(u) @\n          ^"), "{text}");
    }
}
