//! Per-request tracing: phase timers, the `TRACE` report, and the
//! slow-query log line.
//!
//! A request's wall time is one number; *where it went* is the
//! operational question — the same `ENTAIL` can spend its time in
//! parse, in scaffold warmth, or deep in the Thm 5.3 search, and a
//! write's latency splits across queue wait, WAL append, fsync, and
//! publish. The [`TraceRecorder`] splits a request into [`Phase`]s.
//!
//! Cost discipline, disabled: the recorder is an `Option<_>` on the
//! stack. For untraced requests (no slow-query threshold set),
//! [`TraceRecorder::time`] is a `None` check and a direct call — no
//! clock reads, no allocation, nothing on the hot read path.
//!
//! Cost discipline, enabled: a warm prepared `ENTAIL` answers in a few
//! microseconds, so ten `Instant::now()` calls (~35ns each here) would
//! alone bust the ≤5% tracing-overhead budget. Phase boundaries
//! therefore read the [`clock`] — `rdtsc` on x86-64, a handful of ns —
//! and accumulate *raw ticks*. Nobody needs a tick-to-ns calibration
//! table: the dispatcher measures each request's wall time with one
//! `Instant` pair anyway (the latency histograms need it), and
//! [`TraceRecorder::times_ns`] scales the raw phase ticks by this
//! request's own ns/tick ratio. Self-calibrating, no startup
//! measurement, immune to nominal-vs-actual TSC frequency.
//!
//! The write path is different: the mutator always fills a
//! [`PhaseTimes`] for each job, because a write already pays for
//! allocation, WAL I/O, and a snapshot publish — the clock reads vanish
//! into that, and having the numbers always-on is what lets `TRACE`d
//! writes and the slow-query log report fsync time without a warm-up
//! request. The mutator reads the same [`clock`], so its ticks merge
//! into the submitting request's recorder unit-compatibly.

use indord_core::counters::EngineCounters;

/// The raw monotonic clock behind phase timing.
///
/// x86-64 reads the timestamp counter directly (`rdtsc` — invariant and
/// cross-core-synchronized on every micro-architecture of this
/// century, and several times cheaper than a vDSO `clock_gettime`).
/// Other targets fall back to [`Instant`] against a process-lifetime
/// anchor, where a tick is simply a nanosecond. Either way the unit is
/// opaque: only *ratios* of raw intervals are meaningful, and
/// [`TraceRecorder::times_ns`] converts through the enclosing request's
/// own wall time.
pub(crate) mod clock {
    /// An opaque monotonic reading in raw ticks.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    #[inline]
    pub fn raw_now() -> u64 {
        // SAFETY: `_rdtsc` reads a counter register; no memory is
        // touched and there are no preconditions. (The crate-level
        // `deny(unsafe_code)` is lifted for exactly this expression.)
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// An opaque monotonic reading in raw ticks (1 tick = 1ns here).
    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    pub fn raw_now() -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// A request phase with its own timer.
///
/// The read path uses `Parse` through `Render`; the write path `QueueWait`
/// through `Publish` (plus `Parse`). A phase absent from a request
/// reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Request-line → typed `Request` (and inline query parsing).
    Parse,
    /// Plan acquisition: prepared-registry lookup or inline compile.
    Plan,
    /// Route selection off the compiled plan.
    Route,
    /// Scaffold warmth: building or patching the Thm 5.3 search tables.
    Scaffold,
    /// The decision procedure itself.
    Search,
    /// Countermodel rendering.
    Render,
    /// Write queued behind the group-commit mutator.
    QueueWait,
    /// Patchable-vs-structural classification (speculative parse).
    Classify,
    /// Applying the fragment to the master session.
    Apply,
    /// WAL record append (serialization + write).
    WalAppend,
    /// Group fsync.
    Fsync,
    /// Snapshot freeze + publish.
    Publish,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; 12] = [
        Phase::Parse,
        Phase::Plan,
        Phase::Route,
        Phase::Scaffold,
        Phase::Search,
        Phase::Render,
        Phase::QueueWait,
        Phase::Classify,
        Phase::Apply,
        Phase::WalAppend,
        Phase::Fsync,
        Phase::Publish,
    ];

    /// Stable lowercase label used in `TRACE` output and the slow log.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Route => "route",
            Phase::Scaffold => "scaffold",
            Phase::Search => "search",
            Phase::Render => "render",
            Phase::QueueWait => "queue_wait",
            Phase::Classify => "classify",
            Phase::Apply => "apply",
            Phase::WalAppend => "wal_append",
            Phase::Fsync => "fsync",
            Phase::Publish => "publish",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("in ALL")
    }
}

/// Per-phase accumulated durations — additive, so re-entering a phase
/// accumulates. The unit is whatever the writer put in: the recorder
/// and the mutator accumulate raw [`clock`] ticks; a [`TraceReport`]
/// carries the nanosecond conversion ([`TraceRecorder::times_ns`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    raw: [u64; Phase::ALL.len()],
}

impl PhaseTimes {
    /// All-zero times.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Adds a duration to `phase`.
    pub fn add(&mut self, phase: Phase, raw: u64) {
        self.raw[phase.index()] += raw;
    }

    /// The accumulated duration of `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.raw[phase.index()]
    }

    /// Merges another set of times into this one (used to fold the
    /// mutator-measured write phases into the request's recorder).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (a, b) in self.raw.iter_mut().zip(other.raw) {
            *a += b;
        }
    }

    /// `(phase, duration)` for every nonzero phase, in report order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL
            .into_iter()
            .map(|p| (p, self.get(p)))
            .filter(|&(_, v)| v > 0)
    }

    /// Rescales raw-tick times to nanoseconds given the enclosing
    /// request's `(total_ns, total_raw)` wall-time pair. A nonzero raw
    /// phase never rounds down to zero — a phase that ran reports at
    /// least 1ns.
    fn scaled_to_ns(&self, total_ns: u64, total_raw: u64) -> PhaseTimes {
        let scale = total_ns as f64 / total_raw.max(1) as f64;
        let mut out = PhaseTimes::new();
        for (i, &raw) in self.raw.iter().enumerate() {
            if raw > 0 {
                out.raw[i] = ((raw as f64 * scale) as u64).max(1);
            }
        }
        out
    }
}

/// The per-request phase timer. `None` inner state means disabled:
/// every operation short-circuits without touching the clock. Lives on
/// the caller's stack — enabling one is a single raw clock read, no
/// allocation.
#[derive(Debug)]
pub struct TraceRecorder {
    inner: Option<TraceInner>,
}

#[derive(Debug)]
struct TraceInner {
    /// Raw-tick anchor — the tick side of the self-calibration pair
    /// ([`TraceRecorder::times_ns`] gets the ns side from the caller).
    raw_start: u64,
    /// The last phase boundary, for [`TraceRecorder::lap`]: creation,
    /// or the end of the most recent `lap`/`time` span.
    last_raw: u64,
    /// Accumulated per-phase raw ticks.
    times: PhaseTimes,
}

impl TraceRecorder {
    /// A recorder that measures.
    pub fn enabled() -> TraceRecorder {
        let now = clock::raw_now();
        TraceRecorder {
            inner: Some(TraceInner {
                raw_start: now,
                last_raw: now,
                times: PhaseTimes::new(),
            }),
        }
    }

    /// The no-op recorder for untraced requests.
    pub fn disabled() -> TraceRecorder {
        TraceRecorder { inner: None }
    }

    /// Enabled iff `on`.
    pub fn new(on: bool) -> TraceRecorder {
        if on {
            TraceRecorder::enabled()
        } else {
            TraceRecorder::disabled()
        }
    }

    /// Whether this recorder measures anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f`, attributing its wall time to `phase` when enabled.
    /// Disabled, this is a branch and a call — no clock reads. Enabled,
    /// two raw [`clock`] reads — not `Instant`s (see the module doc).
    #[inline]
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        match &mut self.inner {
            None => f(),
            Some(inner) => {
                let t0 = clock::raw_now();
                let out = f();
                let t1 = clock::raw_now();
                inner.times.add(phase, t1.saturating_sub(t0));
                inner.last_raw = t1;
                out
            }
        }
    }

    /// Marks the end of `phase`, attributing everything since the
    /// previous boundary (recorder creation, or the end of the last
    /// `lap`/`time` span) to it. One clock read per boundary — half
    /// the cost of [`TraceRecorder::time`] when phases run
    /// back-to-back, at the price of the ns-scale dispatch glue
    /// between phases riding along with the phase that follows it.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if let Some(inner) = &mut self.inner {
            let now = clock::raw_now();
            inner.times.add(phase, now.saturating_sub(inner.last_raw));
            inner.last_raw = now;
        }
    }

    /// Adds externally-measured raw [`clock`] ticks to `phase` (write
    /// phases come back from the mutator already measured).
    pub fn add_raw(&mut self, phase: Phase, raw: u64) {
        if let Some(inner) = &mut self.inner {
            inner.times.add(phase, raw);
        }
    }

    /// Folds a full set of phase times in (no-op when disabled).
    pub fn merge(&mut self, times: &PhaseTimes) {
        if let Some(inner) = &mut self.inner {
            inner.times.merge(times);
        }
    }

    /// The accumulated raw-tick times, or `None` when disabled.
    pub fn times(&self) -> Option<&PhaseTimes> {
        self.inner.as_ref().map(|i| &i.times)
    }

    /// The accumulated times converted to nanoseconds, or `None` when
    /// disabled. `total_ns` is the caller's wall-time measurement of
    /// the same interval this recorder has been live (the dispatcher
    /// times every request for its histograms anyway); pairing it with
    /// the recorder's own raw-tick window gives the ns/tick ratio —
    /// which is why there is no global calibration anywhere.
    pub fn times_ns(&self, total_ns: u64) -> Option<PhaseTimes> {
        let inner = self.inner.as_ref()?;
        let total_raw = clock::raw_now().saturating_sub(inner.raw_start);
        Some(inner.times.scaled_to_ns(total_ns, total_raw))
    }
}

/// Everything a finished traced request knows about itself — rendered
/// into the `TRACE` response body and the slow-query log line.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// The request rendered back to protocol text (e.g. `ENTAIL disj`).
    pub request: String,
    /// The engine route that fired, when an evaluation ran.
    pub route: Option<&'static str>,
    /// End-to-end wall time.
    pub total_ns: u64,
    /// Per-phase breakdown.
    pub times: PhaseTimes,
    /// Engine-counter movement attributable to this request.
    pub counters: EngineCounters,
    /// Scaffolds built from scratch during this request.
    pub scaffold_builds: u64,
    /// In-place scaffold patches during this request.
    pub in_place_patches: u64,
    /// Pair-table evictions during this request.
    pub pair_evictions: u64,
    /// One-line outcome (`CERTAIN`, `OK inserted 2 atoms seq=5`, ...).
    pub outcome: String,
}

impl TraceReport {
    /// The `TRACE` response body: one `key value` line per fact, then
    /// one `phase <name> <ns>` line per nonzero phase. Line-oriented so
    /// it frames exactly like a countermodel block on the wire.
    pub fn render_body(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!("request {}\n", self.request));
        if let Some(route) = self.route {
            out.push_str(&format!("route {route}\n"));
        }
        out.push_str(&format!("outcome {}\n", self.outcome));
        out.push_str(&format!("total_ns {}\n", self.total_ns));
        for (phase, ns) in self.times.nonzero() {
            out.push_str(&format!("phase {} {ns}\n", phase.as_str()));
        }
        out.push_str(&format!(
            "states_expanded {}\npair_hits {}\npair_misses {}\n",
            self.counters.states_expanded, self.counters.pair_hits, self.counters.pair_misses
        ));
        out.push_str(&format!(
            "scaffold_builds {}\nin_place_patches {}\npair_evictions {}\n",
            self.scaffold_builds, self.in_place_patches, self.pair_evictions
        ));
        out
    }

    /// The slow-query log line: everything on one `stderr`-friendly
    /// line, phases compacted to `name=ns`.
    pub fn render_slow_line(&self, db: &str, seq: u64, threshold_ms: u64) -> String {
        let phases: Vec<String> = self
            .times
            .nonzero()
            .map(|(p, ns)| format!("{}={ns}", p.as_str()))
            .collect();
        format!(
            "indord: slow query ({}ms threshold): db={db} seq={seq} route={} total_ns={} request={:?} outcome={:?} phases=[{}] states_expanded={} pair_hits={} pair_misses={}",
            threshold_ms,
            self.route.unwrap_or("-"),
            self.total_ns,
            self.request,
            self.outcome,
            phases.join(" "),
            self.counters.states_expanded,
            self.counters.pair_hits,
            self.counters.pair_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn disabled_recorder_never_touches_the_clock() {
        let mut r = TraceRecorder::disabled();
        let out = r.time(Phase::Search, || 41 + 1);
        assert_eq!(out, 42);
        assert!(!r.is_enabled());
        assert!(r.times_ns(1_000).is_none());
        assert!(r.times().is_none());
    }

    #[test]
    fn enabled_recorder_accumulates_per_phase() {
        let wall = Instant::now();
        let mut r = TraceRecorder::enabled();
        r.time(Phase::Parse, || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        r.time(Phase::Parse, || {});
        r.add_raw(Phase::Fsync, 1_000);
        let times = r.times().unwrap();
        assert!(times.get(Phase::Parse) > 0);
        assert_eq!(times.get(Phase::Fsync), 1_000);
        assert_eq!(times.get(Phase::Search), 0);
        let nonzero: Vec<Phase> = times.nonzero().map(|(p, _)| p).collect();
        assert_eq!(nonzero, vec![Phase::Parse, Phase::Fsync]);
        // The ns conversion scales by this recorder's own wall time:
        // the 50µs sleep must dominate, and raw-nonzero phases must
        // stay nonzero after scaling.
        let ns = r.times_ns(wall.elapsed().as_nanos() as u64).unwrap();
        assert!(
            ns.get(Phase::Parse) >= 50_000,
            "parse {}ns",
            ns.get(Phase::Parse)
        );
        assert!(ns.get(Phase::Fsync) >= 1);
    }

    #[test]
    fn raw_clock_is_monotonic_and_scaling_preserves_nonzero() {
        let a = clock::raw_now();
        let b = clock::raw_now();
        assert!(b >= a);
        let mut t = PhaseTimes::new();
        t.add(Phase::Search, 3);
        t.add(Phase::Render, 1_000_000);
        // A tiny raw value must not vanish in the ns conversion.
        let ns = t.scaled_to_ns(10, 2_000_000);
        assert_eq!(ns.get(Phase::Search), 1);
        assert_eq!(ns.get(Phase::Render), 5);
        assert_eq!(ns.get(Phase::Parse), 0);
    }

    #[test]
    fn report_renders_phases_and_counters() {
        let mut times = PhaseTimes::new();
        times.add(Phase::QueueWait, 10);
        times.add(Phase::WalAppend, 20);
        times.add(Phase::Fsync, 30);
        let report = TraceReport {
            request: "FACT P(u);".to_string(),
            route: None,
            total_ns: 100,
            times,
            outcome: "OK inserted 1 atoms seq=3".to_string(),
            ..TraceReport::default()
        };
        let body = report.render_body();
        assert!(body.contains("phase queue_wait 10"), "{body}");
        assert!(body.contains("phase wal_append 20"), "{body}");
        assert!(body.contains("phase fsync 30"), "{body}");
        assert!(body.contains("total_ns 100"), "{body}");
        let line = report.render_slow_line("lab", 7, 5);
        assert!(line.contains("db=lab seq=7"), "{line}");
        assert!(line.contains("fsync=30"), "{line}");
    }
}
