//! The serving runtime: a registry of named databases, per-connection
//! request dispatch, and a thread-pooled TCP accept loop.
//!
//! ## Consistency contract
//!
//! Each named database is a [`Vocabulary`] + warm [`Session`] + prepared
//! query registry behind one `RwLock` — **single writer, shared
//! readers**. Writes (`FACT`/`ASSERT`, `PREPARE`) take the database's
//! write lock and route through [`Session`]'s in-place patching, so the
//! Theorem 5.3 scaffold survives label inserts, acyclic order edges, and
//! known-vertex `!=` writes. Reads (`ENTAIL`/`COUNTERMODEL`/`BATCH`)
//! share the read lock and the warm scaffold; concurrent reads on one
//! database never serialize on the search state — a contended pair
//! table falls back to a private one
//! ([`indord_core::scaffold::DisjunctiveScaffold::pairs`], the ~1%
//! fallback measured in `tests/concurrent_serving.rs`). A client
//! therefore observes: its own writes immediately, other clients' writes
//! atomically (a read sees a prefix of the global write order, never a
//! torn fragment). Fragments are all-or-nothing: the apply runs against
//! a snapshot-backed session, and a fragment that fails to parse,
//! panics mid-apply, or would leave the database without models (a
//! `<`-cycle, or a `!=` over N1-merged constants — there is no DELETE
//! to recover with) is rolled back and reported as a typed error.
//!
//! ## Stats
//!
//! Every database keeps request counters and a latency ring
//! ([`DbStats`]); `STATS` merges them with the session's maintenance
//! counters ([`indord_core::session::SessionStats`]) into a
//! [`StatsReply`].

use crate::protocol::{Request, Response, StatsReply, Target, WireError};
use indord_core::atom::OrderRel;
use indord_core::database::Database;
use indord_core::parse::{parse_database, parse_query_expr_in};
use indord_core::query::{eliminate_constants, DnfQuery, QTerm, QueryExpr};
use indord_core::session::Session;
use indord_core::sym::Vocabulary;
use indord_entail::engine::Verdict;
use indord_entail::{Engine, PreparedQuery};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Capacity of the per-database latency ring (most recent samples win).
const LATENCY_RING: usize = 1024;

/// A fixed-size ring of recent request latencies (nanoseconds).
#[derive(Debug)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
    filled: usize,
}

impl LatencyRing {
    fn new() -> Self {
        LatencyRing {
            samples: vec![0; LATENCY_RING],
            next: 0,
            filled: 0,
        }
    }

    fn push(&mut self, ns: u64) {
        self.samples[self.next] = ns;
        self.next = (self.next + 1) % self.samples.len();
        self.filled = (self.filled + 1).min(self.samples.len());
    }

    /// The (p50, p99) quantiles of the recorded samples — one sort for
    /// both. (0, 0) when empty.
    fn p50_p99(&self) -> (u64, u64) {
        if self.filled == 0 {
            return (0, 0);
        }
        let mut v: Vec<u64> = self.samples[..self.filled].to_vec();
        v.sort_unstable();
        let at = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
        (at(0.50), at(0.99))
    }
}

/// Per-database request counters (lock-free) plus the latency ring.
#[derive(Debug)]
pub struct DbStats {
    queries: AtomicU64,
    prepared_hits: AtomicU64,
    writes: AtomicU64,
    latency: Mutex<LatencyRing>,
}

impl DbStats {
    fn new() -> Self {
        DbStats {
            queries: AtomicU64::new(0),
            prepared_hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            latency: Mutex::new(LatencyRing::new()),
        }
    }

    /// Entail-class requests served.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Requests answered from the prepared registry.
    pub fn prepared_hits(&self) -> u64 {
        self.prepared_hits.load(Ordering::Relaxed)
    }

    /// Records a latency sample. `try_lock`: under reader contention
    /// the sample is dropped rather than serializing the evaluation
    /// paths on this mutex — the ring is a sample, not a ledger.
    fn record_latency(&self, ns: u64) {
        if let Ok(mut ring) = self.latency.try_lock() {
            ring.push(ns);
        }
    }
}

/// The mutable state of one named database, guarded by the db's
/// `RwLock`.
#[derive(Debug)]
struct DbState {
    voc: Vocabulary,
    session: Session,
    prepared: HashMap<String, PreparedQuery>,
}

/// One named database: state behind the single-writer lock, counters
/// outside it.
#[derive(Debug)]
pub struct Db {
    state: RwLock<DbState>,
    stats: DbStats,
}

impl Db {
    fn new(voc: Vocabulary, db: Database) -> Self {
        Db {
            state: RwLock::new(DbState {
                voc,
                session: Session::new(db),
                prepared: HashMap::new(),
            }),
            stats: DbStats::new(),
        }
    }

    /// The request counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, DbState> {
        self.state.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, DbState> {
        self.state.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// The registry of named databases a server (or embedded REPL) serves.
#[derive(Debug, Default)]
pub struct Registry {
    dbs: RwLock<HashMap<String, Arc<Db>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Create-or-get the named database (the `OPEN` semantics).
    pub fn open(&self, name: &str) -> Arc<Db> {
        let mut dbs = self.dbs.write().unwrap_or_else(|p| p.into_inner());
        dbs.entry(name.to_string())
            .or_insert_with(|| Arc::new(Db::new(Vocabulary::new(), Database::new())))
            .clone()
    }

    /// Looks up an existing database (the `USE` semantics).
    pub fn get(&self, name: &str) -> Option<Arc<Db>> {
        self.dbs
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// Installs a database built programmatically (benches, tests,
    /// embedded seeding) under `name`, replacing any previous holder.
    pub fn install(&self, name: &str, voc: Vocabulary, db: Database) -> Arc<Db> {
        let holder = Arc::new(Db::new(voc, db));
        self.dbs
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_string(), holder.clone());
        holder
    }

    /// Names of the registered databases, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .dbs
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }
}

/// Per-connection dispatch state: the selected database. One `Conn` per
/// client socket (or per embedded REPL).
pub struct Conn {
    registry: Arc<Registry>,
    current: Option<Arc<Db>>,
}

impl Conn {
    /// A connection with no database selected.
    pub fn new(registry: Arc<Registry>) -> Self {
        Conn {
            registry,
            current: None,
        }
    }

    /// Parses and dispatches one request line; parse-error spans are
    /// shifted into line coordinates so clients can caret the line they
    /// sent.
    pub fn handle_line(&mut self, line: &str) -> Response {
        match Request::parse_with_offset(line) {
            Ok((req, payload)) => match self.handle(req) {
                Response::Error(e) => Response::Error(e.shift_span(payload)),
                resp => resp,
            },
            Err(e) => Response::Error(e),
        }
    }

    /// Dispatches one typed request. Parse-error spans in the reply are
    /// relative to the request's payload text (see
    /// [`Conn::handle_line`] for line coordinates).
    pub fn handle(&mut self, req: Request) -> Response {
        match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => Response::Error(e),
        }
    }

    fn current(&self) -> Result<&Arc<Db>, WireError> {
        self.current
            .as_ref()
            .ok_or_else(|| WireError::registry("no database selected (OPEN <name> first)"))
    }

    fn dispatch(&mut self, req: Request) -> Result<Response, WireError> {
        match req {
            Request::Open(name) => {
                let db = self.registry.open(&name);
                let atoms = db.read().session.len();
                self.current = Some(db);
                Ok(Response::Ok(format!("using {name} ({atoms} atoms)")))
            }
            Request::Use(name) => {
                let db = self
                    .registry
                    .get(&name)
                    .ok_or_else(|| WireError::registry(format!("unknown database `{name}`")))?;
                let atoms = db.read().session.len();
                self.current = Some(db);
                Ok(Response::Ok(format!("using {name} ({atoms} atoms)")))
            }
            Request::Fact(fragment) => {
                let db = self.current()?.clone();
                let mut st = db.write();
                // Parse the whole fragment into a *cloned* vocabulary
                // first, committing it only on success — a failed
                // fragment must leave neither facts nor interned
                // declarations behind (a typo after a bad `pred` line
                // would otherwise pin a wrong signature forever).
                let mut voc2 = st.voc.clone();
                let fragment_db =
                    parse_database(&mut voc2, &fragment).map_err(|e| WireError::from(&e))?;
                // Only order atoms can make the database unsatisfiable
                // (a `<`/`<=` edge closing a `<`-cycle, or a `!=` pair
                // whose endpoints N1-merged — then no model exists and
                // every query is vacuously certain), so only fragments
                // carrying them pay the rollback snapshot — the hot
                // label-fact write path applies directly at
                // in-place-patch cost. The snapshot adopts the current
                // counters *before* the apply: a rolled-back fragment
                // must contribute nothing to the lifetime stats.
                let can_fail = !fragment_db.order_atoms().is_empty();
                let mut saved = can_fail.then(|| {
                    let mut s = st.session.clone();
                    s.adopt_counters(&st.session);
                    s
                });
                let n = if saved.is_some() {
                    // Atomic apply: a panic mid-fragment or a resulting
                    // inconsistency restores the snapshot — the shared
                    // database is never poisoned or half-written (there
                    // is no DELETE to recover with).
                    let state = &mut *st;
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        apply_fragment(&mut state.session, &fragment_db)
                    })) {
                        Ok(n) => n,
                        Err(_) => {
                            st.session = saved.take().expect("snapshotted");
                            return Err(WireError::proto(
                                "internal error while applying the fragment; rolled back",
                            ));
                        }
                    }
                } else {
                    apply_fragment(&mut st.session, &fragment_db)
                };
                if saved.is_some() {
                    let failure = match st.session.normal() {
                        Err(e) => Some(WireError::from(&e)),
                        Ok(nd) if nd.has_contradictory_ne() => Some(WireError {
                            kind: crate::protocol::ErrorKind::Inconsistent,
                            span: None,
                            message: "a != constraint contradicts merged constants; \
                                      the database would have no models"
                                .to_string(),
                        }),
                        Ok(_) => None,
                    };
                    if let Some(e) = failure {
                        st.session = saved.take().expect("snapshotted");
                        return Err(e);
                    }
                }
                st.voc = voc2;
                db.stats.writes.fetch_add(n, Ordering::Relaxed);
                Ok(Response::Ok(format!(
                    "inserted {n} atoms (epoch {})",
                    st.session.epoch()
                )))
            }
            Request::Prepare { name, query } => {
                let db = self.current()?.clone();
                let mut st = db.write();
                let q = parse_constant_free(&st.voc, &query)?;
                let pq = Engine::new(&st.voc)
                    .prepare(&q)
                    .map_err(|e| WireError::from(&e))?;
                let plan = format!("{:?}", pq.plan());
                st.prepared.insert(name.clone(), pq);
                Ok(Response::Ok(format!("prepared {name} (plan {plan})")))
            }
            Request::Entail(target) => {
                let db = self.current()?.clone();
                self.evaluate(&db, &target, false)
            }
            Request::Countermodel(target) => {
                let db = self.current()?.clone();
                self.evaluate(&db, &target, true)
            }
            Request::Batch(names) => {
                let db = self.current()?.clone();
                let start = Instant::now();
                let st = db.read();
                let mut pqs = Vec::with_capacity(names.len());
                for name in &names {
                    pqs.push(st.prepared.get(name).ok_or_else(|| {
                        WireError::registry(format!("unknown prepared query `{name}`"))
                    })?);
                }
                let eng = Engine::new(&st.voc);
                let mut verdicts = Vec::with_capacity(names.len());
                for (name, pq) in names.iter().zip(&pqs) {
                    let v = eng
                        .entails_prepared(&st.session, pq)
                        .map_err(|e| WireError::from(&e))?;
                    verdicts.push((name.clone(), v.holds()));
                }
                let n = names.len() as u64;
                db.stats.queries.fetch_add(n, Ordering::Relaxed);
                db.stats.prepared_hits.fetch_add(n, Ordering::Relaxed);
                db.stats.record_latency(start.elapsed().as_nanos() as u64);
                Ok(Response::Verdicts(verdicts))
            }
            Request::Stats => {
                let db = self.current()?.clone();
                let st = db.read();
                let session_stats = st.session.stats();
                let (p50_ns, p99_ns) = db
                    .stats
                    .latency
                    .lock()
                    .map(|r| r.p50_p99())
                    .unwrap_or((0, 0));
                Ok(Response::Stats(StatsReply {
                    atoms: st.session.len() as u64,
                    epoch: session_stats.epoch,
                    prepared: st.prepared.len() as u64,
                    queries: db.stats.queries.load(Ordering::Relaxed),
                    prepared_hits: db.stats.prepared_hits.load(Ordering::Relaxed),
                    writes: db.stats.writes.load(Ordering::Relaxed),
                    scaffold_builds: session_stats.scaffold_builds,
                    scaffold_rebuilds: session_stats.scaffold_rebuilds(),
                    in_place_patches: session_stats.in_place_patches,
                    cache_drops: session_stats.cache_drops,
                    pair_evictions: session_stats.pair_evictions,
                    contention_fallbacks: session_stats.contention_fallbacks,
                    p50_ns,
                    p99_ns,
                }))
            }
            Request::Close => Ok(Response::Bye),
        }
    }

    /// Evaluates an `ENTAIL`/`COUNTERMODEL` target under the database's
    /// read lock and renders the reply — verdict only, or with the
    /// countermodel witness when `witness` is set. Prepared names hit
    /// the registry and the warm session; inline text is parsed per
    /// request (constants supported — the guard facts of §2 constant
    /// elimination evaluate against an augmented one-shot view, leaving
    /// the shared session untouched). Rendering happens here, under the
    /// vocabulary the verdict was produced with: a constant-carrying
    /// query's countermodel mentions guard predicates that exist only
    /// in the request-local vocabulary.
    fn evaluate(
        &self,
        db: &Arc<Db>,
        target: &Target,
        witness: bool,
    ) -> Result<Response, WireError> {
        let start = Instant::now();
        let st = db.read();
        let resp = match target {
            Target::Prepared(name) => {
                let pq = st.prepared.get(name).ok_or_else(|| {
                    WireError::registry(format!("unknown prepared query `{name}`"))
                })?;
                db.stats.prepared_hits.fetch_add(1, Ordering::Relaxed);
                let v = Engine::new(&st.voc)
                    .entails_prepared(&st.session, pq)
                    .map_err(|e| WireError::from(&e))?;
                render_verdict(v, &st.voc, witness)
            }
            Target::Inline(text) => {
                let expr = parse_query_expr_in(&st.voc, text).map_err(|e| WireError::from(&e))?;
                if !mentions_constants(&expr) {
                    // Constant-free (the common fast path): straight to
                    // DNF — no database or vocabulary clone — and
                    // evaluate against the shared warm session.
                    let q = expr.to_dnf(&st.voc).map_err(|e| WireError::from(&e))?;
                    let eng = Engine::new(&st.voc);
                    let pq = eng.prepare(&q).map_err(|e| WireError::from(&e))?;
                    let v = eng
                        .entails_prepared(&st.session, &pq)
                        .map_err(|e| WireError::from(&e))?;
                    render_verdict(v, &st.voc, witness)
                } else {
                    // Constants in the query: clone-and-augment the
                    // vocabulary and database with their guard facts
                    // (§2) — one-shot evaluation under the
                    // request-local vocabulary.
                    let mut voc2 = st.voc.clone();
                    let (aug_db, q) = eliminate_constants(&mut voc2, st.session.database(), &expr)
                        .map_err(|e| WireError::from(&e))?;
                    let v = Engine::new(&voc2)
                        .entails(&aug_db, &q)
                        .map_err(|e| WireError::from(&e))?;
                    render_verdict(v, &voc2, witness)
                }
            }
        };
        db.stats.queries.fetch_add(1, Ordering::Relaxed);
        db.stats.record_latency(start.elapsed().as_nanos() as u64);
        Ok(resp)
    }
}

/// Applies a parsed fragment to the session atom-by-atom (proper facts
/// then order atoms), returning the atom count. Every write routes
/// through the session's in-place patching.
fn apply_fragment(session: &mut Session, fragment_db: &Database) -> u64 {
    let mut n = 0u64;
    for atom in fragment_db.proper_atoms() {
        session.push_proper(atom.clone());
        n += 1;
    }
    for oa in fragment_db.order_atoms() {
        match oa.rel {
            OrderRel::Lt => session.assert_lt(oa.lhs, oa.rhs),
            OrderRel::Le => session.assert_le(oa.lhs, oa.rhs),
            OrderRel::Ne => session.assert_ne(oa.lhs, oa.rhs),
        }
        n += 1;
    }
    n
}

/// Renders a verdict reply: `CERTAIN`/`NOT-CERTAIN`, or — for
/// `COUNTERMODEL` requests — the witness block. `voc` must be the
/// vocabulary the verdict was produced under.
fn render_verdict(v: Verdict, voc: &Vocabulary, witness: bool) -> Response {
    if !witness {
        return Response::Verdict(v.holds());
    }
    match v {
        Verdict::Entailed => Response::Verdict(true),
        Verdict::MonadicCountermodel(m) => {
            Response::Countermodel(format!("word: {}\n", m.display(voc)))
        }
        Verdict::NaryCountermodel(m) => Response::Countermodel(m.display(voc).to_string()),
    }
}

/// True when the expression mentions any (object or order) constant.
fn mentions_constants(e: &QueryExpr) -> bool {
    let is_const = |t: &QTerm| !matches!(t, QTerm::Var(_));
    match e {
        QueryExpr::And(ps) | QueryExpr::Or(ps) => ps.iter().any(mentions_constants),
        QueryExpr::Exists(_, body) => mentions_constants(body),
        QueryExpr::Proper { args, .. } => args.iter().any(is_const),
        QueryExpr::Order { lhs, rhs, .. } => is_const(lhs) || is_const(rhs),
    }
}

/// Parses a query that must not mention constants (the `PREPARE` rule:
/// a registered query evaluates against an evolving database, so
/// constant guard facts cannot be pinned at compile time).
fn parse_constant_free(voc: &Vocabulary, text: &str) -> Result<DnfQuery, WireError> {
    let expr = parse_query_expr_in(voc, text).map_err(|e| WireError::from(&e))?;
    if mentions_constants(&expr) {
        return Err(WireError::proto(
            "PREPARE requires a constant-free query; constants are supported on inline ENTAIL",
        ));
    }
    expr.to_dnf(voc).map_err(|e| WireError::from(&e))
}

/// A running server: bound address plus shutdown plumbing. Dropping the
/// handle shuts the accept loop down (worker threads serving still-open
/// connections finish with their clients).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves the registry's databases on a fixed pool of
/// `threads` worker threads (each worker owns one client connection at
/// a time; excess connections queue).
pub fn serve<A: ToSocketAddrs>(
    registry: Arc<Registry>,
    addr: A,
    threads: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..threads.max(1) {
        let rx = Arc::clone(&rx);
        let registry = Arc::clone(&registry);
        thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                guard.recv()
            };
            match stream {
                // A panic while serving one client (an engine bug, a
                // poisoned lock) must not shrink the fixed pool: catch
                // it, drop the connection, keep the worker.
                Ok(s) => {
                    let registry = &registry;
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        serve_client(s, registry)
                    }));
                }
                Err(_) => break, // accept loop gone
            }
        });
    }
    let flag = Arc::clone(&shutdown);
    let accept = thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                // Transient accept failures (ECONNABORTED from a client
                // resetting while queued, EMFILE during a burst) must
                // not kill the listener — skip and keep accepting.
                Err(_) => continue,
            }
        }
    });
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

/// Serves one client: a request line in, a framed response out, until
/// `CLOSE` or EOF.
fn serve_client(stream: TcpStream, registry: &Arc<Registry>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    let mut conn = Conn::new(Arc::clone(registry));
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let resp = conn.handle_line(&line);
        let done = matches!(resp, Response::Bye);
        if writer.write_all(resp.render().as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if done {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorKind;

    fn conn() -> Conn {
        Conn::new(Arc::new(Registry::new()))
    }

    #[test]
    fn open_write_prepare_entail_round() {
        let mut c = conn();
        assert!(matches!(
            c.handle_line("ENTAIL exists t. P(t)"),
            Response::Error(WireError {
                kind: ErrorKind::Registry,
                ..
            })
        ));
        assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
        assert!(matches!(
            c.handle_line("FACT pred Heat(ord); pred Cool(ord); Heat(t1); Cool(t2); t1 < t2;"),
            Response::Ok(_)
        ));
        assert!(matches!(
            c.handle_line("PREPARE cooled: exists a b. Heat(a) & a < b & Cool(b)"),
            Response::Ok(_)
        ));
        assert_eq!(c.handle_line("ENTAIL cooled"), Response::Verdict(true));
        assert_eq!(
            c.handle_line("ENTAIL exists a b. Cool(a) & a < b & Heat(b)"),
            Response::Verdict(false)
        );
        // The same db is visible from a second connection via USE.
        let mut c2 = Conn::new(Arc::clone(&c.registry));
        assert!(matches!(c2.handle_line("USE lab"), Response::Ok(_)));
        assert_eq!(c2.handle_line("ENTAIL cooled"), Response::Verdict(true));
        assert!(matches!(
            c2.handle_line("USE nope"),
            Response::Error(WireError {
                kind: ErrorKind::Registry,
                ..
            })
        ));
        assert_eq!(c.handle_line("CLOSE"), Response::Bye);
    }

    #[test]
    fn inconsistent_fragment_is_rejected_and_rolled_back() {
        // A write that would close a `<`-cycle must not poison the
        // shared database (there is no DELETE): the fragment is
        // rejected with the typed inconsistency error and the previous
        // state keeps serving.
        let mut c = conn();
        c.handle_line("OPEN lab");
        assert!(matches!(
            c.handle_line("FACT pred P(ord); P(u); P(v); u < v;"),
            Response::Ok(_)
        ));
        // An in-place write before the poisoning attempt, so the test
        // can check the rollback preserves the lifetime counters.
        assert!(matches!(c.handle_line("ASSERT u <= v;"), Response::Ok(_)));
        let (patches_before, drops_before) = match c.handle_line("STATS") {
            Response::Stats(s) => (s.in_place_patches, s.cache_drops),
            other => panic!("expected stats, got {other:?}"),
        };
        assert!(patches_before >= 1);
        let resp = c.handle_line("FACT v < u;");
        assert!(
            matches!(
                &resp,
                Response::Error(WireError {
                    kind: ErrorKind::Inconsistent,
                    ..
                })
            ),
            "{resp:?}"
        );
        // The database still answers, with the poisoning edge absent.
        assert_eq!(
            c.handle_line("ENTAIL exists s t. P(s) & s < t & P(t)"),
            Response::Verdict(true)
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 4, "rolled-back edge must not be stored");
        assert_eq!(
            s.in_place_patches, patches_before,
            "rollback must not reset lifetime counters: {s:?}"
        );
        assert_eq!(
            s.cache_drops, drops_before,
            "a rolled-back fragment contributes no counter churn: {s:?}"
        );
        // A multi-atom fragment that ends inconsistent rolls back whole.
        let resp = c.handle_line("FACT P(w); v < w; w < u;");
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 4, "no partial fragment may survive");
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t)"),
            Response::Verdict(true)
        );
    }

    #[test]
    fn unsatisfiable_ne_fragment_is_rejected_and_rolled_back() {
        // A `!=` over an N1-merged pair (or `u != u` outright) leaves
        // the database with zero models — every query would be
        // vacuously CERTAIN forever. The write must be rejected like a
        // `<`-cycle, not acknowledged.
        let mut c = conn();
        c.handle_line("OPEN lab");
        assert!(matches!(
            c.handle_line("FACT pred P(ord); pred Q(ord); P(u); Q(v); u <= v; v <= u;"),
            Response::Ok(_)
        ));
        let resp = c.handle_line("ASSERT u != v;");
        assert!(
            matches!(
                &resp,
                Response::Error(WireError {
                    kind: ErrorKind::Inconsistent,
                    ..
                })
            ),
            "{resp:?}"
        );
        let resp = c.handle_line("ASSERT u != u;");
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        // The database still has models: an unsupported query must stay
        // NOT-CERTAIN, not turn vacuously certain.
        assert_eq!(
            c.handle_line("ENTAIL exists s t. P(s) & s < t & Q(t)"),
            Response::Verdict(false)
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 4, "rejected != atoms must not be stored");
        // A satisfiable != over distinct vertices still lands.
        assert!(matches!(
            c.handle_line("FACT P(w); w < u;"),
            Response::Ok(_)
        ));
        assert!(matches!(c.handle_line("ASSERT w != v;"), Response::Ok(_)));
    }

    #[test]
    fn failed_fact_leaves_no_vocabulary_residue() {
        // A fragment that declares a (wrong) signature and then fails to
        // parse must not pin that signature: the corrected retry has to
        // succeed (regression test for write-path vocabulary pollution).
        let mut c = conn();
        c.handle_line("OPEN lab");
        let resp = c.handle_line("FACT pred P(ord, ord); P(u) Q(v);");
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        assert!(
            matches!(c.handle_line("FACT pred P(ord); P(u);"), Response::Ok(_)),
            "retry with the corrected declaration must not conflict"
        );
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t)"),
            Response::Verdict(true)
        );
    }

    #[test]
    fn parse_error_spans_are_line_relative() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        let resp = c.handle_line("FACT P(u) @");
        let Response::Error(e) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(e.kind, ErrorKind::Parse);
        // `@` sits at byte 10 of the request line.
        assert_eq!(e.span, Some(indord_core::error::Span::point(10)));
    }

    #[test]
    fn countermodel_and_batch_and_stats() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); pred Q(ord); P(u); Q(v);");
        c.handle_line("PREPARE pq: exists s t. P(s) & s < t & Q(t)");
        c.handle_line("PREPARE any: exists s. P(s)");
        // Not entailed (unordered db): a countermodel word comes back.
        let resp = c.handle_line("COUNTERMODEL pq");
        assert!(matches!(resp, Response::Countermodel(_)), "{resp:?}");
        // Entailed target answers CERTAIN.
        assert_eq!(c.handle_line("COUNTERMODEL any"), Response::Verdict(true));
        let resp = c.handle_line("BATCH pq any");
        assert_eq!(
            resp,
            Response::Verdicts(vec![("pq".into(), false), ("any".into(), true)])
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.queries, 4);
        assert_eq!(s.prepared_hits, 4);
        assert_eq!(s.prepared, 2);
        assert!(s.writes >= 2);
        // An acyclic edge over known constants patches in place.
        c.handle_line("ASSERT u < v;");
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert!(s.in_place_patches >= 1, "{s:?}");
        assert_eq!(s.scaffold_rebuilds, 0, "{s:?}");
        assert_eq!(c.handle_line("ENTAIL pq"), Response::Verdict(true));
    }

    #[test]
    fn inline_entail_supports_constants_prepare_rejects_them() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); P(u); P(v); u < v;");
        // `u` is a database constant: inline works, PREPARE refuses.
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t) & u < t"),
            Response::Verdict(true)
        );
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t) & t < u"),
            Response::Verdict(false)
        );
        // COUNTERMODEL on a constant-carrying inline query renders the
        // witness under the request-local vocabulary (the guard
        // predicates of constant elimination do not exist in the shared
        // one — regression test for an out-of-bounds panic that killed
        // the serving worker).
        match c.handle_line("COUNTERMODEL exists t. P(t) & t < u") {
            Response::Countermodel(body) => assert!(!body.trim().is_empty()),
            other => panic!("expected a countermodel, got {other:?}"),
        }
        assert_eq!(
            c.handle_line("COUNTERMODEL exists t. P(t) & u < t"),
            Response::Verdict(true)
        );
        let resp = c.handle_line("PREPARE bad: exists t. P(t) & u < t");
        assert!(
            matches!(
                &resp,
                Response::Error(WireError {
                    kind: ErrorKind::Proto,
                    ..
                })
            ),
            "{resp:?}"
        );
        // The inline constant path must not have mutated the shared db.
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 3);
    }
}
