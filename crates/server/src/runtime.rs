//! The serving runtime: a registry of named databases, per-connection
//! request dispatch, and a thread-pooled TCP accept loop.
//!
//! ## Consistency contract
//!
//! Each named database serves reads from an immutable, atomically
//! swapped snapshot and funnels writes through a single mutator thread
//! — **snapshot isolation + group commit** (epoch-style MVCC), not a
//! reader/writer lock. A read (`ENTAIL`/`COUNTERMODEL`/`BATCH`/`STATS`)
//! pins the current [`DbSnapshot`] — a frozen [`Session`] sharing the
//! warm Theorem 5.3 scaffold by `Arc`, the vocabulary, and the
//! prepared-query map — and evaluates without blocking or being
//! blocked: a coNP-hard countermodel enumeration holds only its own
//! snapshot while writers keep committing. Writes (`FACT`/`ASSERT`,
//! `PREPARE`) enqueue on the database's commit queue; the mutator
//! drains the queue into a **group commit**: patchable writes (label
//! facts, acyclic order edges, known-vertex `!=`) are stably sorted
//! ahead of structural ones so one scaffold-dropping write doesn't
//! invalidate the patch pass for its groupmates, each fragment is
//! applied all-or-nothing with its own typed per-client result, and one
//! new snapshot is published by a pointer swap *before* the `OK`
//! replies are sent — so a client observes its own writes on every
//! later request, and other clients' writes atomically (a snapshot is
//! always a prefix of the committed write order, never a torn
//! fragment). Fragment atomicity is unchanged from the lock era: a
//! fragment that fails to parse, panics mid-apply, or would leave the
//! database without models (a `<`-cycle, or a `!=` over N1-merged
//! constants — there is no DELETE to recover with) is rolled back and
//! reported as a typed error, contributing nothing to the published
//! state or counters.
//!
//! The previous single-writer/shared-reader `RwLock` runtime is kept
//! behind [`ConcurrencyMode::RwLock`] (see [`Registry::with_mode`]) as
//! the ablation baseline for the `serving-mvcc` bench group.
//!
//! ## Stats and observability
//!
//! Every database keeps request counters, lock-free latency histograms
//! per verb and per fired engine route ([`crate::metrics`]), and the
//! group-commit counters ([`DbStats`]); `STATS` merges them with the
//! snapshot session's maintenance counters
//! ([`indord_core::session::SessionStats`]) into a [`StatsReply`],
//! `METRICS` renders the full histograms in Prometheus text format, and
//! `EXPLAIN`/`TRACE` introspect one query's plan or one request's phase
//! breakdown ([`crate::trace`]). A `--slow-ms` threshold logs full
//! traces of over-threshold requests to stderr.

use crate::durable::{self, RecoveredState, StorageConfig};
use crate::metrics::{MetricsRegistry, Status, Verb};
use crate::protocol::{ErrorKind, HealthState, Request, Response, StatsReply, Target, WireError};
use crate::trace::{clock, Phase, PhaseTimes, TraceRecorder, TraceReport};
use indord_core::atom::OrderRel;
use indord_core::counters;
use indord_core::database::Database;
use indord_core::parse::{parse_database, parse_query_expr_in};
use indord_core::query::{eliminate_constants, DnfQuery, QTerm, QueryExpr};
use indord_core::session::Session;
use indord_core::sym::Vocabulary;
use indord_entail::engine::Verdict;
use indord_entail::{route, Engine, PreparedQuery};
use indord_storage::{DbDir, Wal};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Default bound on the per-database commit queue: writes beyond this
/// depth are shed with a retryable `ERR overloaded` instead of queueing
/// without limit (see [`Registry::with_max_queue`]).
pub const DEFAULT_MAX_QUEUE: usize = 256;

/// How many times the supervisor restarts a panicked mutator from the
/// last published snapshot before giving up and degrading the database
/// to read-only serving.
const RESTART_BUDGET: u64 = 3;

/// Per-database request counters (lock-free), the metrics registry
/// (latency histograms per verb and fired route), and the MVCC
/// group-commit counters (all zero under the RwLock ablation).
#[derive(Debug)]
pub struct DbStats {
    queries: AtomicU64,
    prepared_hits: AtomicU64,
    writes: AtomicU64,
    /// Lock-free histograms: request latency per verb/status, evaluation
    /// latency per fired route, commit-queue depth, engine-work totals.
    /// Replaces the old 1024-slot `try_lock` latency ring — recording is
    /// wait-free and nothing is ever shed.
    metrics: MetricsRegistry,
    /// Write jobs currently enqueued (incremented at submit, decremented
    /// when the mutator drains them into a group).
    pending: AtomicU64,
    group_commits: AtomicU64,
    group_fragments: AtomicU64,
    max_group: AtomicU64,
    snapshots_published: AtomicU64,
    patchable_writes: AtomicU64,
    structural_writes: AtomicU64,
    /// Durability counters — all zero for an in-memory (no `--data-dir`)
    /// database. The wal_* and fsync counters mirror the mutator's
    /// [`indord_storage::WalCounters`] after each group; the recovery_*
    /// pair is written once at boot.
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    snapshots_written: AtomicU64,
    compactions: AtomicU64,
    recovery_replayed_fragments: AtomicU64,
    recovery_truncated_bytes: AtomicU64,
    /// Writes refused at admission because the commit queue was at its
    /// bound (each one was answered with a retryable `ERR overloaded`).
    writes_shed: AtomicU64,
    /// Requests abandoned because their deadline expired — reads whose
    /// search loop noticed the deadline, and writes whose submitter
    /// stopped waiting (the write itself may still commit).
    deadline_aborts: AtomicU64,
    /// Supervisor restarts of the mutator thread after an escaped panic
    /// (state restored from the last published snapshot).
    mutator_restarts: AtomicU64,
    /// Transitions into read-only degraded mode (dead WAL I/O, or the
    /// mutator restart budget exhausted).
    degraded_entries: AtomicU64,
}

impl DbStats {
    fn new() -> Self {
        DbStats {
            queries: AtomicU64::new(0),
            prepared_hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            pending: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            group_fragments: AtomicU64::new(0),
            max_group: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            patchable_writes: AtomicU64::new(0),
            structural_writes: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            recovery_replayed_fragments: AtomicU64::new(0),
            recovery_truncated_bytes: AtomicU64::new(0),
            writes_shed: AtomicU64::new(0),
            deadline_aborts: AtomicU64::new(0),
            mutator_restarts: AtomicU64::new(0),
            degraded_entries: AtomicU64::new(0),
        }
    }

    /// Writes shed at admission by the bounded commit queue.
    pub fn writes_shed(&self) -> u64 {
        self.writes_shed.load(Ordering::Relaxed)
    }

    /// Requests abandoned because their deadline expired.
    pub fn deadline_aborts(&self) -> u64 {
        self.deadline_aborts.load(Ordering::Relaxed)
    }

    /// Supervisor restarts of the mutator thread.
    pub fn mutator_restarts(&self) -> u64 {
        self.mutator_restarts.load(Ordering::Relaxed)
    }

    /// Transitions into read-only degraded mode.
    pub fn degraded_entries(&self) -> u64 {
        self.degraded_entries.load(Ordering::Relaxed)
    }

    /// Entail-class requests served.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Requests answered from the prepared registry.
    pub fn prepared_hits(&self) -> u64 {
        self.prepared_hits.load(Ordering::Relaxed)
    }

    /// Group commits executed by the mutator thread.
    pub fn group_commits(&self) -> u64 {
        self.group_commits.load(Ordering::Relaxed)
    }

    /// Write jobs processed across all group commits.
    pub fn group_fragments(&self) -> u64 {
        self.group_fragments.load(Ordering::Relaxed)
    }

    /// WAL records appended (0 for an in-memory database).
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// fsyncs issued by the WAL (0 for an in-memory database).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Snapshot files written (0 for an in-memory database).
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written.load(Ordering::Relaxed)
    }

    /// WAL records replayed at boot (0 for a fresh or in-memory db).
    pub fn recovery_replayed_fragments(&self) -> u64 {
        self.recovery_replayed_fragments.load(Ordering::Relaxed)
    }

    /// The lock-free metrics registry (latency histograms per verb and
    /// fired route, queue-depth histogram, engine-work totals) — the
    /// data behind the `METRICS` verb.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Latency/queue-depth samples shed under contention. Structurally
    /// zero since the `try_lock` rings were replaced by wait-free
    /// histograms; kept (and asserted zero in tests) for `STATS` wire
    /// compatibility.
    pub fn samples_dropped(&self) -> u64 {
        0
    }

    /// Write jobs currently enqueued for the mutator thread (0 once the
    /// mutator has drained them into a group, even while it still runs).
    pub fn commit_queue_depth(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }
}

/// The mutable state of one named database under the RwLock ablation
/// mode, guarded by the db's lock.
#[derive(Debug)]
struct DbState {
    voc: Vocabulary,
    session: Session,
    prepared: HashMap<String, PreparedQuery>,
}

/// One published, immutable version of a database: a frozen warm
/// [`Session`] (scaffold shared by `Arc` — see the session module docs
/// on sharing rules), the vocabulary it was built under, and the
/// prepared-query map. Readers pin a snapshot with one `Arc` clone and
/// keep it for as long as they like; the mutator never touches a
/// published snapshot.
#[derive(Debug)]
pub struct DbSnapshot {
    /// Shared with the mutator until a write interns new symbols —
    /// label/edge writes on known constants publish without cloning
    /// the symbol tables.
    voc: Arc<Vocabulary>,
    session: Session,
    prepared: Arc<HashMap<String, PreparedQuery>>,
    seq: u64,
    published_at: Instant,
}

impl DbSnapshot {
    /// The vocabulary this snapshot's session and prepared queries were
    /// compiled under.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.voc
    }

    /// The frozen session (warm caches, immutable).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Looks up a prepared query.
    pub fn prepared(&self, name: &str) -> Option<&PreparedQuery> {
        self.prepared.get(name)
    }

    /// Number of prepared queries registered in this snapshot.
    pub fn prepared_len(&self) -> usize {
        self.prepared.len()
    }

    /// The commit sequence number (0 = the boot snapshot; +1 per group
    /// commit that changed state).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Nanoseconds since this snapshot was published.
    pub fn age_ns(&self) -> u64 {
        self.published_at.elapsed().as_nanos() as u64
    }
}

/// A write operation routed through the commit path.
#[derive(Debug)]
enum WriteOp {
    /// A `FACT`/`ASSERT` fragment (payload text, parser syntax).
    Fragment(String),
    /// A `PREPARE` compilation.
    Prepare { name: String, query: String },
    /// A `FLUSH`: force a snapshot + WAL compaction now. Errors on an
    /// in-memory database.
    Flush,
    /// Drain the queue, fsync the WAL tail, and stop the mutator. The
    /// reply is sent only after the tail is durable, so a joined
    /// shutdown never loses an acked write.
    Shutdown,
    /// Test-support (reachable only through the `#[doc(hidden)]`
    /// [`Db::stall_mutator`]): occupy the mutator for `d` so the next
    /// jobs queue up behind it and drain as one deterministic group.
    Stall(std::time::Duration),
    /// Test-support (reachable only through the `#[doc(hidden)]`
    /// [`Db::inject_mutator_panic`]): panic inside the mutator.
    /// `escape: false` panics inside the per-job apply (the per-job
    /// `catch_unwind` must contain it — groupmates are unaffected);
    /// `escape: true` panics outside it, exercising the supervisor's
    /// restart-from-snapshot path.
    Boom { escape: bool },
}

/// The shared health slot of one database: the state served by the
/// `HEALTH` verb and consulted at write admission, plus the reason the
/// database left `ok` (empty while healthy).
type HealthSlot = Arc<Mutex<(HealthState, String)>>;

/// One queued write: the operation plus the channel its typed result is
/// delivered on (after the snapshot containing it is published).
#[derive(Debug)]
struct WriteJob {
    op: WriteOp,
    reply: mpsc::Sender<Result<Response, WireError>>,
    /// When the job entered the commit queue (queue-wait attribution),
    /// in raw `trace::clock` ticks — the unit every phase measurement
    /// shares, converted to ns only when a report is rendered.
    enqueued_raw: u64,
    /// Filled by the mutator — before the reply is sent — with the
    /// write's phase breakdown, for `TRACE`d and slow-logged writes.
    /// `None` for untraced writes (the common case pays nothing here).
    phases: Option<Arc<Mutex<PhaseTimes>>>,
}

/// How a [`Registry`] guards its databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConcurrencyMode {
    /// Snapshot-isolated reads + group-commit mutator thread (default).
    #[default]
    Mvcc,
    /// The PR 5 single-writer/shared-reader lock, kept as the ablation
    /// baseline for benches.
    RwLock,
}

/// The concurrency core of one database: either the MVCC snapshot slot
/// plus commit queue, or the legacy lock.
#[derive(Debug)]
enum DbCore {
    Mvcc {
        current: Arc<RwLock<Arc<DbSnapshot>>>,
        sender: Mutex<mpsc::Sender<WriteJob>>,
    },
    // Boxed: `DbState` is large next to the two-pointer Mvcc arm.
    Locked(Box<RwLock<DbState>>),
}

/// The mutator-owned durability state of one database: its directory,
/// the open WAL, the snapshot cadence, and the prepared queries' source
/// text (needed to encode snapshots — compiled plans don't serialize).
#[derive(Debug)]
struct DurableState {
    dir: DbDir,
    wal: Wal,
    snapshot_every: u64,
    /// Records appended since the last snapshot/compaction.
    since_snapshot: u64,
    prepared_src: HashMap<String, String>,
}

/// One named database: the concurrency core plus counters shared with
/// the mutator thread, and — under MVCC — the mutator's join handle so
/// shutdown can drain and join it.
#[derive(Debug)]
pub struct Db {
    core: DbCore,
    stats: Arc<DbStats>,
    mutator: Mutex<Option<JoinHandle<()>>>,
    /// Shared with the mutator/supervisor; `ok` forever under the
    /// RwLock ablation (no WAL, no mutator to supervise).
    health: HealthSlot,
    /// Set before the shutdown job is enqueued: admission refuses new
    /// writes with `ERR shutdown`, and the mutator rejects
    /// queued-but-unlogged jobs instead of draining a full queue.
    closing: Arc<AtomicBool>,
    /// Bound on the commit queue depth enforced at admission.
    max_queue: usize,
}

/// A pinned read view of a database: an `Arc` snapshot under MVCC, a
/// read guard under the RwLock ablation. Everything a read needs —
/// vocabulary, warm session, prepared queries — hangs off it.
pub struct ReadView<'a>(ViewInner<'a>);

enum ViewInner<'a> {
    Snapshot(Arc<DbSnapshot>),
    Guard(std::sync::RwLockReadGuard<'a, DbState>),
}

impl ReadView<'_> {
    /// The vocabulary of the pinned state.
    pub fn vocabulary(&self) -> &Vocabulary {
        match &self.0 {
            ViewInner::Snapshot(s) => &s.voc,
            ViewInner::Guard(g) => &g.voc,
        }
    }

    /// The session of the pinned state.
    pub fn session(&self) -> &Session {
        match &self.0 {
            ViewInner::Snapshot(s) => &s.session,
            ViewInner::Guard(g) => &g.session,
        }
    }

    /// Looks up a prepared query in the pinned state.
    pub fn prepared(&self, name: &str) -> Option<&PreparedQuery> {
        match &self.0 {
            ViewInner::Snapshot(s) => s.prepared.get(name),
            ViewInner::Guard(g) => g.prepared.get(name),
        }
    }

    /// Number of prepared queries in the pinned state.
    pub fn prepared_len(&self) -> usize {
        match &self.0 {
            ViewInner::Snapshot(s) => s.prepared.len(),
            ViewInner::Guard(g) => g.prepared.len(),
        }
    }

    /// Age of the pinned snapshot in nanoseconds (0 under the lock: a
    /// guard is always the live state).
    fn snapshot_age_ns(&self) -> u64 {
        match &self.0 {
            ViewInner::Snapshot(s) => s.age_ns(),
            ViewInner::Guard(_) => 0,
        }
    }
}

impl Db {
    fn new(voc: Vocabulary, db: Database, mode: ConcurrencyMode, max_queue: usize) -> Self {
        Db::build(voc, Session::new(db), HashMap::new(), mode, None, max_queue)
    }

    /// A durable database resuming from recovered on-disk state.
    fn recovered(
        state: RecoveredState,
        dir: DbDir,
        cfg: &StorageConfig,
        max_queue: usize,
    ) -> std::io::Result<Self> {
        let RecoveredState {
            voc,
            session,
            prepared,
            prepared_src,
            next_id,
            since_snapshot,
            replayed_fragments,
            truncated_bytes,
        } = state;
        let wal = dir.open_wal(cfg.fsync, next_id)?;
        let durable = DurableState {
            dir,
            wal,
            snapshot_every: cfg.snapshot_every.max(1),
            since_snapshot,
            prepared_src,
        };
        let db = Db::build(
            voc,
            session,
            prepared,
            ConcurrencyMode::Mvcc,
            Some(durable),
            max_queue,
        );
        db.stats
            .recovery_replayed_fragments
            .store(replayed_fragments, Ordering::Relaxed);
        db.stats
            .recovery_truncated_bytes
            .store(truncated_bytes, Ordering::Relaxed);
        Ok(db)
    }

    fn build(
        voc: Vocabulary,
        session: Session,
        prepared: HashMap<String, PreparedQuery>,
        mode: ConcurrencyMode,
        durable: Option<DurableState>,
        max_queue: usize,
    ) -> Self {
        debug_assert!(
            durable.is_none() || mode == ConcurrencyMode::Mvcc,
            "durability requires the mutator thread"
        );
        let stats = Arc::new(DbStats::new());
        let health: HealthSlot = Arc::new(Mutex::new((HealthState::Ok, String::new())));
        let closing = Arc::new(AtomicBool::new(false));
        let mut mutator = None;
        let core = match mode {
            ConcurrencyMode::RwLock => DbCore::Locked(Box::new(RwLock::new(DbState {
                voc,
                session,
                prepared,
            }))),
            ConcurrencyMode::Mvcc => {
                let voc_arc = Arc::new(voc.clone());
                let prepared = Arc::new(prepared);
                let boot = Arc::new(DbSnapshot {
                    voc: Arc::clone(&voc_arc),
                    session: session.freeze(),
                    prepared: Arc::clone(&prepared),
                    seq: 0,
                    published_at: Instant::now(),
                });
                let current = Arc::new(RwLock::new(boot));
                let (tx, rx) = mpsc::channel::<WriteJob>();
                {
                    let m = Mutator {
                        current: Arc::clone(&current),
                        stats: Arc::clone(&stats),
                        voc,
                        session,
                        voc_arc,
                        prepared,
                        seq: 0,
                        durable,
                        health: Arc::clone(&health),
                        closing: Arc::clone(&closing),
                        restarts: 0,
                    };
                    // The loop also exits when every Sender is gone,
                    // i.e. when this Db is dropped without an explicit
                    // shutdown.
                    mutator = Some(
                        thread::Builder::new()
                            .name("indord-mutator".into())
                            .spawn(move || m.run(rx))
                            .expect("spawn mutator thread"),
                    );
                }
                DbCore::Mvcc {
                    current,
                    sender: Mutex::new(tx),
                }
            }
        };
        Db {
            core,
            stats,
            mutator: Mutex::new(mutator),
            health,
            closing,
            max_queue,
        }
    }

    /// The request counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// The database's health state and the reason it left `ok` (empty
    /// while healthy). Served by the `HEALTH` verb and consulted at
    /// write admission.
    pub fn health(&self) -> (HealthState, String) {
        self.health
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Drains the commit queue, fsyncs the WAL tail, and joins the
    /// mutator thread. Idempotent; a no-op under the RwLock ablation.
    /// After this, writes fail with a typed error; reads keep serving
    /// the last published snapshot.
    pub fn shutdown_mutator(&self) {
        let handle = self
            .mutator
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        let Some(handle) = handle else { return };
        if let DbCore::Mvcc { sender, .. } = &self.core {
            // From here on, admission refuses new writes with
            // `ERR shutdown`, and the drain loop rejects
            // queued-but-unlogged jobs with the same error instead of
            // applying them — a full bounded queue cannot stall the
            // shutdown, and nothing unlogged is silently committed.
            self.closing.store(true, Ordering::SeqCst);
            let (tx, rx) = mpsc::channel();
            self.stats.pending.fetch_add(1, Ordering::Relaxed);
            let sent = sender
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .send(WriteJob {
                    op: WriteOp::Shutdown,
                    reply: tx,
                    enqueued_raw: clock::raw_now(),
                    phases: None,
                })
                .is_ok();
            if sent {
                // The ack arrives only after the WAL tail is synced.
                let _ = rx.recv();
            }
        }
        let _ = handle.join();
    }

    /// Pins a read view: one `Arc` clone under a briefly-held lock on
    /// the snapshot slot (MVCC), or the read guard (ablation).
    pub fn view(&self) -> ReadView<'_> {
        match &self.core {
            DbCore::Mvcc { current, .. } => ReadView(ViewInner::Snapshot(
                current.read().unwrap_or_else(|p| p.into_inner()).clone(),
            )),
            DbCore::Locked(state) => ReadView(ViewInner::Guard(
                state.read().unwrap_or_else(|p| p.into_inner()),
            )),
        }
    }

    /// Pins the current snapshot as an owned `Arc` — a reader can hold
    /// it across arbitrary work without blocking anything. `None` under
    /// the RwLock ablation (there are no snapshots to pin).
    pub fn read_snapshot(&self) -> Option<Arc<DbSnapshot>> {
        match &self.core {
            DbCore::Mvcc { current, .. } => {
                Some(current.read().unwrap_or_else(|p| p.into_inner()).clone())
            }
            DbCore::Locked(_) => None,
        }
    }

    /// Routes one write through the commit path and blocks for its
    /// typed per-client result. Under MVCC the reply arrives only after
    /// the snapshot containing the write was published
    /// (read-your-own-writes on every later request).
    /// Enqueues `op` on the commit queue without waiting for the reply;
    /// the caller keeps the receiver. MVCC only — the RwLock ablation
    /// has no queue to enqueue on.
    fn submit_nonblocking(
        &self,
        op: WriteOp,
    ) -> Result<mpsc::Receiver<Result<Response, WireError>>, WireError> {
        self.submit_nonblocking_traced(op, None)
    }

    /// [`Db::submit_nonblocking`] with an optional phase-times slot the
    /// mutator fills (before replying) with the write's queue-wait /
    /// classify / apply / WAL / fsync / publish breakdown.
    fn submit_nonblocking_traced(
        &self,
        op: WriteOp,
        phases: Option<Arc<Mutex<PhaseTimes>>>,
    ) -> Result<mpsc::Receiver<Result<Response, WireError>>, WireError> {
        let DbCore::Mvcc { sender, .. } = &self.core else {
            return Err(WireError::proto(
                "non-blocking submit requires the MVCC core",
            ));
        };
        // Admission control applies to client writes; the control/test
        // ops (`Shutdown`, `Stall`, `Boom`) bypass it — shutdown must
        // always reach the mutator, and the test hooks need to work
        // against deliberately tiny queues.
        let client_write = matches!(
            op,
            WriteOp::Fragment(_) | WriteOp::Prepare { .. } | WriteOp::Flush
        );
        if client_write {
            if self.closing.load(Ordering::SeqCst) {
                return Err(WireError::kinded(
                    ErrorKind::Shutdown,
                    "server is shutting down; the write was not logged",
                ));
            }
            let (state, reason) = self.health();
            if state == HealthState::Degraded {
                return Err(WireError::kinded(
                    ErrorKind::ReadOnly,
                    format!("database is read-only (degraded: {reason})"),
                ));
            }
        }
        let (tx, rx) = mpsc::channel();
        let depth = self.stats.pending.fetch_add(1, Ordering::Relaxed) + 1;
        if client_write && depth > self.max_queue as u64 {
            // Shed instead of queueing without bound: the caller gets a
            // retryable `ERR overloaded` carrying the observed depth.
            self.stats.pending.fetch_sub(1, Ordering::Relaxed);
            self.stats.writes_shed.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::kinded(
                ErrorKind::Overloaded,
                format!(
                    "commit queue is full ({} queued, cap {}); retry with backoff",
                    depth - 1,
                    self.max_queue
                ),
            ));
        }
        self.stats.metrics.record_queue_depth(depth);
        sender
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .send(WriteJob {
                op,
                reply: tx,
                enqueued_raw: clock::raw_now(),
                phases,
            })
            .map_err(|_| WireError::proto("database mutator thread is gone"))?;
        Ok(rx)
    }

    /// Test-support: occupies the mutator for `d` without blocking the
    /// caller, so writes enqueued behind the stall drain as one
    /// deterministic group commit. Group-commit and fault-injection
    /// tests only; not part of the public API.
    #[doc(hidden)]
    pub fn stall_mutator(
        &self,
        d: std::time::Duration,
    ) -> Result<mpsc::Receiver<Result<Response, WireError>>, WireError> {
        self.submit_nonblocking(WriteOp::Stall(d))
    }

    /// Test-support: enqueues a `FACT` fragment without waiting for its
    /// ack; the receiver yields the typed result once the group holding
    /// the write commits. Enqueue order from a single caller thread is
    /// the mutator's drain order, which makes multi-fragment groups
    /// deterministic. Not part of the public API.
    #[doc(hidden)]
    pub fn enqueue_fragment(
        &self,
        fragment: &str,
    ) -> Result<mpsc::Receiver<Result<Response, WireError>>, WireError> {
        self.submit_nonblocking(WriteOp::Fragment(fragment.to_string()))
    }

    /// Test-support: panics the mutator thread — inside the per-job
    /// apply (`escape: false`, the per-job `catch_unwind` contains it)
    /// or outside it (`escape: true`, exercising the supervisor's
    /// restart path). Not part of the public API.
    #[doc(hidden)]
    pub fn inject_mutator_panic(
        &self,
        escape: bool,
    ) -> Result<mpsc::Receiver<Result<Response, WireError>>, WireError> {
        self.submit_nonblocking(WriteOp::Boom { escape })
    }

    #[cfg(test)]
    fn submit(&self, op: WriteOp) -> Result<Response, WireError> {
        self.submit_deadline(op, None)
    }

    /// Like [`Db::submit`], but the caller stops waiting at `deadline`:
    /// the write stays queued (it may still commit — the reply channel
    /// is simply dropped), and the caller gets a typed `ERR deadline`
    /// telling it so.
    fn submit_deadline(
        &self,
        op: WriteOp,
        deadline: Option<Instant>,
    ) -> Result<Response, WireError> {
        self.submit_deadline_traced(op, deadline, None)
    }

    /// [`Db::submit_deadline`] with an optional phase-times slot (see
    /// [`Db::submit_nonblocking_traced`]); the slot is filled by the
    /// time the reply arrives. Ignored under the RwLock ablation.
    fn submit_deadline_traced(
        &self,
        op: WriteOp,
        deadline: Option<Instant>,
        phases: Option<Arc<Mutex<PhaseTimes>>>,
    ) -> Result<Response, WireError> {
        match &self.core {
            DbCore::Mvcc { .. } => {
                let rx = self.submit_nonblocking_traced(op, phases)?;
                match deadline {
                    None => rx.recv().unwrap_or_else(|_| {
                        Err(WireError::proto("database mutator dropped the write"))
                    }),
                    Some(d) => {
                        let wait = d.saturating_duration_since(Instant::now());
                        match rx.recv_timeout(wait) {
                            Ok(result) => result,
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                // Counted by the dispatching Conn, like
                                // read-side expiries.
                                Err(WireError::kinded(
                                    ErrorKind::Deadline,
                                    "deadline expired while the write was queued; \
                                     it was not acked but may still commit",
                                ))
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                Err(WireError::proto("database mutator dropped the write"))
                            }
                        }
                    }
                }
            }
            DbCore::Locked(state) => {
                let mut st = state.write().unwrap_or_else(|p| p.into_inner());
                let st = &mut *st;
                match op {
                    WriteOp::Fragment(fragment) => {
                        let n = apply_fragment_atomic(&mut st.voc, &mut st.session, &fragment)?;
                        self.stats.writes.fetch_add(n, Ordering::Relaxed);
                        Ok(Response::Ok(format!(
                            "inserted {n} atoms (epoch {})",
                            st.session.epoch()
                        )))
                    }
                    WriteOp::Prepare { name, query } => {
                        let pq = compile_prepared(&st.voc, &query)?;
                        let plan = format!("{:?}", pq.plan());
                        st.prepared.insert(name.clone(), pq);
                        Ok(Response::Ok(format!("prepared {name} (plan {plan})")))
                    }
                    WriteOp::Flush => Err(WireError::proto(
                        "FLUSH requires a durable database (start the server with --data-dir)",
                    )),
                    // There is no mutator thread to join under the lock.
                    WriteOp::Shutdown => Ok(Response::Ok("shutdown complete".to_string())),
                    WriteOp::Stall(d) => {
                        thread::sleep(d);
                        Ok(Response::Ok("stalled".to_string()))
                    }
                    // There is no mutator thread to panic under the lock.
                    WriteOp::Boom { .. } => Err(WireError::proto(
                        "panic injection requires the MVCC mutator thread",
                    )),
                }
            }
        }
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // A clean join even without an explicit Registry shutdown:
        // dropping the last handle to a durable database must fsync its
        // WAL tail before the process moves on.
        self.shutdown_mutator();
    }
}

/// The mutator thread of one MVCC database: drains the commit queue
/// into group commits against the private master state, appends every
/// write to the WAL *before* applying it, fsyncs per policy *before*
/// publishing, publishes one snapshot per state-changing group, then
/// releases the writers — so an acknowledged write is durable (under
/// `always`/`group`) and visible, in that order.
struct Mutator {
    current: Arc<RwLock<Arc<DbSnapshot>>>,
    stats: Arc<DbStats>,
    voc: Vocabulary,
    session: Session,
    voc_arc: Arc<Vocabulary>,
    prepared: Arc<HashMap<String, PreparedQuery>>,
    seq: u64,
    durable: Option<DurableState>,
    health: HealthSlot,
    closing: Arc<AtomicBool>,
    /// Supervisor restarts consumed so far (see [`RESTART_BUDGET`]).
    restarts: u64,
}

impl Mutator {
    fn run(mut self, rx: mpsc::Receiver<WriteJob>) {
        loop {
            let Ok(first) = rx.recv() else {
                // Every sender is gone (the Db was leaked rather than
                // dropped): still leave a durable tail behind.
                self.sync_tail();
                return;
            };
            // Group commit: everything already queued rides along.
            let mut jobs = vec![first];
            while let Ok(j) = rx.try_recv() {
                jobs.push(j);
            }
            if self.closing.load(Ordering::SeqCst) {
                // Graceful shutdown: whatever is still queued was never
                // logged — reject it with `ERR shutdown` rather than
                // spending unbounded time draining a full queue, then
                // fsync everything that *was* logged and ack.
                let mut shutdown_acks = self.reject_for_shutdown(jobs);
                loop {
                    let mut rest = Vec::new();
                    while let Ok(j) = rx.try_recv() {
                        rest.push(j);
                    }
                    if rest.is_empty() {
                        break;
                    }
                    shutdown_acks.extend(self.reject_for_shutdown(rest));
                }
                self.sync_tail();
                for tx in shutdown_acks {
                    let _ = tx.send(Ok(Response::Ok("shutdown complete".to_string())));
                }
                return;
            }
            // Supervision: a panic that escapes the per-job guards must
            // not silently kill every future write. The failed group's
            // submitters see their reply channels drop (the existing
            // "mutator dropped the write" mapping); the supervisor
            // restores the master from the last published snapshot and
            // keeps serving — or degrades to read-only once the restart
            // budget is spent.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.process_group(jobs)));
            let mut shutdown_acks = match outcome {
                Ok(acks) => acks,
                Err(_) => {
                    self.recover_master();
                    if self.closing.load(Ordering::SeqCst) {
                        // A Shutdown job may have died with the group
                        // (its ack channel dropped with it): still leave
                        // a durable tail and let the join succeed.
                        self.sync_tail();
                        return;
                    }
                    continue;
                }
            };
            if !shutdown_acks.is_empty() {
                // Shutdown: drain whatever slipped in while this group
                // ran, then make the tail durable and ack — the
                // shutdown reply is the durability barrier.
                loop {
                    let mut rest = Vec::new();
                    while let Ok(j) = rx.try_recv() {
                        rest.push(j);
                    }
                    if rest.is_empty() {
                        break;
                    }
                    shutdown_acks.extend(self.reject_for_shutdown(rest));
                }
                self.sync_tail();
                for tx in shutdown_acks {
                    let _ = tx.send(Ok(Response::Ok("shutdown complete".to_string())));
                }
                return;
            }
        }
    }

    /// Rejects a drained group during shutdown: client writes get a
    /// typed `ERR shutdown` (they were never logged — they did NOT
    /// commit), `Shutdown` jobs contribute their ack channels.
    fn reject_for_shutdown(
        &mut self,
        jobs: Vec<WriteJob>,
    ) -> Vec<mpsc::Sender<Result<Response, WireError>>> {
        self.stats
            .pending
            .fetch_sub(jobs.len() as u64, Ordering::Relaxed);
        let mut shutdown_acks = Vec::new();
        for job in jobs {
            match job.op {
                WriteOp::Shutdown => shutdown_acks.push(job.reply),
                _ => {
                    let _ = job.reply.send(Err(WireError::kinded(
                        ErrorKind::Shutdown,
                        "server shut down before the write was logged; it did not commit",
                    )));
                }
            }
        }
        shutdown_acks
    }

    /// The supervisor's restart path: a panic escaped the per-job
    /// guards, so the private master state is suspect. Rebuild it from
    /// the last published snapshot — the newest state any reader can
    /// see, and a prefix of the WAL — and keep serving. The WAL stays
    /// open (ids continuous); records logged by the failed group but
    /// never acked may replay on restart, which the durability contract
    /// allows (acked ⇒ durable, not the converse). Once the budget is
    /// spent the database degrades to read-only instead.
    fn recover_master(&mut self) {
        self.restarts += 1;
        self.stats.mutator_restarts.fetch_add(1, Ordering::Relaxed);
        if self.restarts > RESTART_BUDGET {
            self.enter_degraded(format!(
                "mutator restart budget exhausted ({RESTART_BUDGET} restarts)"
            ));
            return;
        }
        self.set_health(HealthState::Recovering, "restoring from published snapshot");
        self.restore_from_published();
        self.set_health(HealthState::Ok, "");
    }

    /// Rebuilds the private master state from the last published
    /// snapshot — the newest state any reader can observe, and a prefix
    /// of the synced WAL.
    fn restore_from_published(&mut self) {
        let snap = self
            .current
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        self.voc = (*snap.voc).clone();
        self.voc_arc = Arc::clone(&snap.voc);
        self.session = snap.session.clone();
        self.prepared = Arc::clone(&snap.prepared);
        self.seq = snap.seq;
    }

    fn set_health(&self, state: HealthState, reason: &str) {
        let mut h = self.health.lock().unwrap_or_else(|p| p.into_inner());
        *h = (state, reason.to_string());
    }

    /// Transitions to read-only degraded mode (idempotent): reads keep
    /// serving the last published snapshot, writes are rejected with
    /// `ERR readonly` carrying `reason`.
    fn enter_degraded(&self, reason: String) {
        let mut h = self.health.lock().unwrap_or_else(|p| p.into_inner());
        if h.0 != HealthState::Degraded {
            self.stats.degraded_entries.fetch_add(1, Ordering::Relaxed);
            eprintln!("indord-server: database degraded to read-only: {reason}");
            *h = (HealthState::Degraded, reason);
        }
    }

    fn degraded_reason(&self) -> Option<String> {
        let h = self.health.lock().unwrap_or_else(|p| p.into_inner());
        (h.0 == HealthState::Degraded).then(|| h.1.clone())
    }

    /// Unconditionally fsyncs appended WAL bytes (shutdown path).
    fn sync_tail(&mut self) {
        if let Some(d) = self.durable.as_mut() {
            if let Err(e) = d.wal.sync() {
                eprintln!("indord-storage: wal sync at shutdown failed: {e}");
            }
            self.mirror_wal_counters();
        }
    }

    /// Copies the WAL's lifetime counters into the shared stats.
    fn mirror_wal_counters(&self) {
        if let Some(d) = self.durable.as_ref() {
            let c = d.wal.counters();
            self.stats.wal_appends.store(c.appends, Ordering::Relaxed);
            self.stats.wal_bytes.store(c.bytes, Ordering::Relaxed);
            self.stats.fsyncs.store(c.fsyncs, Ordering::Relaxed);
        }
    }

    /// Runs one group commit. Returns the reply channels of any
    /// `Shutdown` jobs in the group — non-empty means stop after this
    /// group (the caller syncs the tail and acks them).
    fn process_group(
        &mut self,
        jobs: Vec<WriteJob>,
    ) -> Vec<mpsc::Sender<Result<Response, WireError>>> {
        self.stats
            .pending
            .fetch_sub(jobs.len() as u64, Ordering::Relaxed);
        let group = jobs.len() as u64;
        let mut shutdown_acks = Vec::new();
        let mut flush_acks = Vec::new();
        let mut work = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job.op {
                WriteOp::Shutdown => shutdown_acks.push(job.reply),
                WriteOp::Flush => {
                    if let Some(reason) = self.degraded_reason() {
                        let _ = job.reply.send(Err(WireError::kinded(
                            ErrorKind::ReadOnly,
                            format!("database is read-only (degraded: {reason})"),
                        )));
                    } else if self.durable.is_some() {
                        flush_acks.push(job.reply);
                    } else {
                        let _ = job.reply.send(Err(WireError::proto(
                            "FLUSH requires a durable database (start the server with --data-dir)",
                        )));
                    }
                }
                _ => work.push(job),
            }
        }
        // Classify against the pre-group state and stably sort patchable
        // writes first, so a scaffold-dropping structural write doesn't
        // force its groupmates off the patch path. The sort only
        // reorders across concurrent clients (each client blocks per
        // write, so its own order is preserved); a fragment depending on
        // a groupmate's fresh constants is conservatively classified
        // structural, which only affects the ordering, not the result.
        // The WAL records what the sort decided: appends happen in
        // apply order, so replay IS the committed order.
        //
        // Phase timing is always-on here: a write already pays for
        // allocation, WAL I/O, and a snapshot publish, so the handful of
        // `Instant` reads per job vanish into it — and `TRACE`d writes
        // plus the slow-query log get real queue-wait/fsync numbers
        // without a warm-up request.
        let drained_raw = clock::raw_now();
        let mut keyed: Vec<(bool, WriteJob, PhaseTimes)> = work
            .into_iter()
            .map(|j| {
                let mut pt = PhaseTimes::new();
                pt.add(Phase::QueueWait, drained_raw.saturating_sub(j.enqueued_raw));
                let t0 = clock::raw_now();
                let structural = is_structural(&j.op, &mut self.voc, &self.session);
                pt.add(Phase::Classify, clock::raw_now().saturating_sub(t0));
                (structural, j, pt)
            })
            .collect();
        keyed.sort_by_key(|(structural, _, _)| *structural);
        let group_mark = self.voc.mark();
        let drops_mark = self.session.stats().cache_drops;
        let mut replies = Vec::with_capacity(keyed.len());
        let mut mutated = false;
        let mut prepared_changed = false;
        for (structural, job, mut pt) in keyed {
            // Already degraded (a WAL death earlier in this very group,
            // or a previous one): every remaining write is refused with
            // the typed read-only error — nothing is logged or applied.
            if let Some(reason) = self.degraded_reason() {
                replies.push((
                    job.reply,
                    Err(WireError::kinded(
                        ErrorKind::ReadOnly,
                        format!("database is read-only (degraded: {reason})"),
                    )),
                    job.phases,
                    pt,
                ));
                continue;
            }
            // Escaped-panic injection (test-support): blows up outside
            // the per-job guard so the supervisor path is exercised.
            if matches!(job.op, WriteOp::Boom { escape: true }) {
                panic!("injected mutator panic (escape)");
            }
            // Log before apply: the record hits the WAL buffer first, so
            // an acked write can never exist only in memory. A record
            // whose apply then fails is harmless in the log — replay
            // re-fails it deterministically. A record the WAL *rejects*
            // (I/O error; under `always`, a failed per-record sync)
            // means the WAL I/O is dead: this write is refused, and the
            // database transitions to read-only degraded mode rather
            // than silently dropping durability.
            let mut wal_death: Option<String> = None;
            if let Some(d) = self.durable.as_mut() {
                let payload = match &job.op {
                    WriteOp::Fragment(fragment) => Some(format!("FACT {fragment}")),
                    WriteOp::Prepare { name, query } => Some(format!("PREPARE {name}: {query}")),
                    _ => None,
                };
                if let Some(payload) = payload {
                    let t0 = clock::raw_now();
                    match d.wal.append(payload.as_bytes()) {
                        Ok(_) => d.since_snapshot += 1,
                        Err(e) => wal_death = Some(e.to_string()),
                    }
                    pt.add(Phase::WalAppend, clock::raw_now().saturating_sub(t0));
                }
            }
            if let Some(e) = wal_death {
                self.enter_degraded(format!("write-ahead log append failed: {e}"));
                replies.push((
                    job.reply,
                    Err(WireError::kinded(
                        ErrorKind::ReadOnly,
                        format!("write-ahead log append failed ({e}); database is now read-only"),
                    )),
                    job.phases,
                    pt,
                ));
                continue;
            }
            // A panic must not take the mutator (and with it every
            // future write) down: report it as the typed internal error
            // the lock-era per-client catch_unwind produced.
            let apply_t0 = clock::raw_now();
            let (result, changed) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                apply_write(
                    &mut self.voc,
                    &mut self.session,
                    &mut self.prepared,
                    &self.stats,
                    &job.op,
                )
            }))
            .unwrap_or_else(|_| {
                (
                    Err(WireError::proto(
                        "internal error while applying the write; rolled back",
                    )),
                    false,
                )
            });
            pt.add(Phase::Apply, clock::raw_now().saturating_sub(apply_t0));
            if changed {
                mutated = true;
                match &job.op {
                    WriteOp::Fragment(_) => {
                        if structural {
                            self.stats.structural_writes.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.stats.patchable_writes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    WriteOp::Prepare { name, query } if result.is_ok() => {
                        prepared_changed = true;
                        if let Some(d) = self.durable.as_mut() {
                            d.prepared_src.insert(name.clone(), query.clone());
                        }
                    }
                    _ => {}
                }
            }
            replies.push((job.reply, result, job.phases, pt));
        }
        // The group-commit durability barrier: sync the appended records
        // *before* the snapshot publish and the replies. On a failed
        // sync the group's records were still handed to the WAL (the
        // per-record appends succeeded — a failing append rejects its
        // write above), so the applied prefix stays acked exactly as it
        // always has; what changes is the future: the database
        // transitions to typed read-only degraded mode instead of
        // silently dropping durability, so nothing after this group
        // pretends to be durable.
        let mut sync_failed: Option<String> = None;
        let mut fsync_raw = 0u64;
        if let Some(d) = self.durable.as_mut() {
            let t0 = clock::raw_now();
            if let Err(e) = d.wal.commit() {
                sync_failed = Some(e.to_string());
            }
            fsync_raw = clock::raw_now().saturating_sub(t0);
        }
        if let Some(e) = sync_failed {
            self.enter_degraded(format!("wal fsync failed: {e}"));
        }
        self.mirror_wal_counters();
        let publish_t0 = clock::raw_now();
        if mutated {
            // Warm the master before freezing: the master session never
            // answers queries itself, so without this every published
            // snapshot would be cold and each reader would rebuild the
            // scaffold from scratch.
            let _ = self.session.normal();
            let _ = self.session.disjunctive_scaffold(&self.voc);
            self.seq += 1;
            // Republish the symbol tables only when this group actually
            // interned something: label/edge writes on known constants —
            // the hot path — share the previous `Arc<Vocabulary>` and
            // skip its clone entirely.
            if self.voc.changed_since(group_mark) {
                self.voc_arc = Arc::new(self.voc.clone());
            }
            let frozen = self.session.freeze();
            // Pre-run the prepared registry against the frozen session
            // only when this group dropped the session caches (a
            // structural write rebuilt the scaffold cold) or installed a
            // never-evaluated query. A purely patchable group keeps the
            // scaffold — and with it the shared `D(S,T)` pair table that
            // readers have been warming — so the published snapshot
            // inherits those pairs for free and the O(|prepared|·eval)
            // pre-run would be pure commit latency. After a cache drop
            // the pre-run is what it always was: the price of never
            // publishing a cold snapshot to the read tail.
            if prepared_changed || self.session.stats().cache_drops != drops_mark {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let eng = Engine::new(&self.voc);
                    for pq in self.prepared.values() {
                        let _ = eng.entails_prepared(&frozen, pq);
                    }
                }));
            }
            let snap = Arc::new(DbSnapshot {
                voc: Arc::clone(&self.voc_arc),
                session: frozen,
                prepared: Arc::clone(&self.prepared),
                seq: self.seq,
                published_at: Instant::now(),
            });
            *self.current.write().unwrap_or_else(|p| p.into_inner()) = snap;
            self.stats
                .snapshots_published
                .fetch_add(1, Ordering::Relaxed);
        }
        let publish_raw = clock::raw_now().saturating_sub(publish_t0);
        // Snapshot + compaction: on cadence, or forced by FLUSH. Runs
        // after the publish (the snapshot equals the state readers now
        // see) and before the flush acks.
        let flush_result = self.maybe_snapshot(!flush_acks.is_empty());
        self.stats.group_commits.fetch_add(1, Ordering::Relaxed);
        self.stats
            .group_fragments
            .fetch_add(group, Ordering::Relaxed);
        self.stats.max_group.fetch_max(group, Ordering::Relaxed);
        // Replies go out only after the publish: the next request from
        // any released writer sees its own write. The group-level fsync
        // and publish costs are attributed to every member (a write's
        // latency really does include them; they are shared, not
        // divided) — and each traced job's slot is filled before its
        // reply, so the submitter reads complete times after recv.
        for (tx, result, slot, mut pt) in replies {
            pt.add(Phase::Fsync, fsync_raw);
            pt.add(Phase::Publish, publish_raw);
            if let Some(slot) = slot {
                slot.lock().unwrap_or_else(|p| p.into_inner()).merge(&pt);
            }
            let _ = tx.send(result);
        }
        for tx in flush_acks {
            let _ = tx.send(flush_result.clone());
        }
        shutdown_acks
    }

    /// Writes a snapshot of the master state and compacts the WAL, when
    /// the cadence says so or a FLUSH forces it. The snapshot is taken
    /// from the mutator's own thread — readers keep serving the
    /// published `Arc<DbSnapshot>` untouched throughout.
    fn maybe_snapshot(&mut self, force: bool) -> Result<Response, WireError> {
        if let Some(reason) = self.degraded_reason() {
            // A degraded database never touches its directory again —
            // the master may be rolled back, and the WAL I/O is suspect.
            return Err(WireError::kinded(
                ErrorKind::ReadOnly,
                format!("database is read-only (degraded: {reason})"),
            ));
        }
        let Some(d) = self.durable.as_mut() else {
            return Err(WireError::proto("no durable storage configured"));
        };
        if !force && d.since_snapshot < d.snapshot_every {
            return Ok(Response::Ok("snapshot not due".to_string()));
        }
        // The id of the last appended record: everything at or below it
        // is folded into this snapshot; replay skips those ids even if
        // the crash lands between the snapshot write and the compaction.
        let snap_id = d.wal.next_id() - 1;
        let payload = durable::encode_snapshot(&self.voc, self.session.database(), &d.prepared_src);
        if let Err(e) = d.dir.write_snapshot(snap_id, payload.as_bytes()) {
            eprintln!(
                "indord-storage: {}: snapshot write failed ({e}); keeping the wal",
                d.dir.path().display()
            );
            return Err(WireError::proto(format!("snapshot write failed: {e}")));
        }
        self.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
        match d.dir.compact(snap_id) {
            Ok(()) => {
                d.wal.note_compacted();
                d.since_snapshot = 0;
                self.stats.compactions.fetch_add(1, Ordering::Relaxed);
                Ok(Response::Ok(format!(
                    "flushed (snapshot {snap_id}, wal compacted)"
                )))
            }
            Err(e) => {
                // The snapshot is durable; a failed compaction only
                // costs replay time (ids ≤ snap_id are skipped).
                eprintln!(
                    "indord-storage: {}: wal compaction failed ({e})",
                    d.dir.path().display()
                );
                Ok(Response::Ok(format!(
                    "flushed (snapshot {snap_id}, compaction failed: {e})"
                )))
            }
        }
    }
}

/// Applies one write to the master state. Returns the per-client result
/// and whether the state changed (a failed fragment is rolled back and
/// changes nothing).
fn apply_write(
    voc: &mut Vocabulary,
    session: &mut Session,
    prepared: &mut Arc<HashMap<String, PreparedQuery>>,
    stats: &DbStats,
    op: &WriteOp,
) -> (Result<Response, WireError>, bool) {
    match op {
        WriteOp::Fragment(fragment) => match apply_fragment_atomic(voc, session, fragment) {
            Ok(n) => {
                stats.writes.fetch_add(n, Ordering::Relaxed);
                (
                    Ok(Response::Ok(format!(
                        "inserted {n} atoms (epoch {})",
                        session.epoch()
                    ))),
                    true,
                )
            }
            Err(e) => (Err(e), false),
        },
        WriteOp::Prepare { name, query } => match compile_prepared(voc, query) {
            Ok(pq) => {
                let plan = format!("{:?}", pq.plan());
                Arc::make_mut(prepared).insert(name.clone(), pq);
                (
                    Ok(Response::Ok(format!("prepared {name} (plan {plan})"))),
                    true,
                )
            }
            Err(e) => (Err(e), false),
        },
        // Filtered out of the group before the apply loop.
        WriteOp::Flush | WriteOp::Shutdown => (
            Err(WireError::proto("control op reached the apply path")),
            false,
        ),
        WriteOp::Stall(d) => {
            thread::sleep(*d);
            (Ok(Response::Ok("stalled".to_string())), false)
        }
        // `escape: true` is intercepted before the per-job guard; this
        // arm is the contained flavor — the per-job `catch_unwind` turns
        // it into the typed internal error, groupmates unaffected.
        WriteOp::Boom { .. } => panic!("injected apply panic"),
    }
}

/// True when the fragment is expected to drop session caches rather
/// than patch in place: it mentions an order constant the current
/// normalization doesn't know (fresh vertices force a rebuild). A
/// fragment that fails to parse classifies as patchable — it fails
/// cheaply wherever it sorts. The classification only orders a group;
/// it never changes what a write does.
fn is_structural(op: &WriteOp, voc: &mut Vocabulary, session: &Session) -> bool {
    let WriteOp::Fragment(text) = op else {
        return false;
    };
    // Speculative parse straight into the master vocabulary, rolled
    // back via mark/truncate — interning is append-only, so truncating
    // removes exactly what this parse added. Far cheaper than cloning
    // the symbol tables per queued job.
    let mark = voc.mark();
    let parsed = parse_database(voc, text);
    let result = match &parsed {
        Err(_) => false,
        Ok(fragment_db) => match session.normal() {
            Err(_) => true,
            Ok(nd) => {
                let known = |u| nd.vertex_of.contains_key(&u);
                fragment_db
                    .proper_atoms()
                    .iter()
                    .any(|a| !a.order_args().all(known))
                    || fragment_db
                        .order_atoms()
                        .iter()
                        .any(|oa| !known(oa.lhs) || !known(oa.rhs))
            }
        },
    };
    voc.truncate(mark);
    result
}

/// Compiles a `PREPARE` query against the vocabulary (constant-free
/// rule enforced). `pub(crate)`: boot recovery compiles the same way.
pub(crate) fn compile_prepared(voc: &Vocabulary, query: &str) -> Result<PreparedQuery, WireError> {
    let q = parse_constant_free(voc, query)?;
    Engine::new(voc)
        .prepare(&q)
        .map_err(|e| WireError::from(&e))
}

/// Applies one fragment all-or-nothing: parse straight into the master
/// vocabulary with a mark/truncate rollback (a failed fragment must
/// leave neither facts nor interned declarations behind — interning is
/// append-only, so truncating to the mark removes exactly this parse's
/// symbols), snapshot-rollback around the can-fail order-atom path, and
/// reject fragments that leave the database without models. Shared by
/// the MVCC mutator and the RwLock ablation so both modes keep the
/// exact PR 5 atomicity contract — and `pub(crate)` because WAL replay
/// routes through it too (recovery is the live path, re-run).
pub(crate) fn apply_fragment_atomic(
    voc: &mut Vocabulary,
    session: &mut Session,
    fragment: &str,
) -> Result<u64, WireError> {
    let vmark = voc.mark();
    let fragment_db = match parse_database(voc, fragment) {
        Ok(db) => db,
        Err(e) => {
            voc.truncate(vmark);
            return Err(WireError::from(&e));
        }
    };
    // Only order atoms can make the database unsatisfiable (a `<`/`<=`
    // edge closing a `<`-cycle, or a `!=` pair whose endpoints
    // N1-merged — then no model exists and every query is vacuously
    // certain), so only fragments carrying them pay the rollback
    // snapshot — the hot label-fact write path applies directly at
    // in-place-patch cost. The snapshot adopts the current counters
    // *before* the apply: a rolled-back fragment must contribute
    // nothing to the lifetime stats.
    let can_fail = !fragment_db.order_atoms().is_empty();
    let mut saved = can_fail.then(|| {
        let mut s = session.clone();
        s.adopt_counters(session);
        s
    });
    let n = if saved.is_some() {
        // Atomic apply: a panic mid-fragment or a resulting
        // inconsistency restores the snapshot — the shared database is
        // never poisoned or half-written (there is no DELETE to recover
        // with).
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            apply_fragment(session, &fragment_db)
        })) {
            Ok(n) => n,
            Err(_) => {
                *session = saved.take().expect("snapshotted");
                voc.truncate(vmark);
                return Err(WireError::proto(
                    "internal error while applying the fragment; rolled back",
                ));
            }
        }
    } else {
        apply_fragment(session, &fragment_db)
    };
    if saved.is_some() {
        let failure = match session.normal() {
            Err(e) => Some(WireError::from(&e)),
            Ok(nd) if nd.has_contradictory_ne() => Some(WireError {
                kind: crate::protocol::ErrorKind::Inconsistent,
                span: None,
                message: "a != constraint contradicts merged constants; \
                          the database would have no models"
                    .to_string(),
            }),
            Ok(_) => None,
        };
        if let Some(e) = failure {
            *session = saved.take().expect("snapshotted");
            voc.truncate(vmark);
            return Err(e);
        }
    }
    Ok(n)
}

/// The registry of named databases a server (or embedded REPL) serves.
#[derive(Debug)]
pub struct Registry {
    dbs: RwLock<HashMap<String, Arc<Db>>>,
    mode: ConcurrencyMode,
    storage: Option<StorageConfig>,
    /// Commit-queue bound handed to every database this registry
    /// creates (see [`Registry::with_max_queue`]).
    max_queue: usize,
    /// Connections refused by the accept loop's cap — server-wide, so
    /// every database's `STATS` reports the same number.
    conns_rejected: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            dbs: RwLock::new(HashMap::new()),
            mode: ConcurrencyMode::default(),
            storage: None,
            max_queue: DEFAULT_MAX_QUEUE,
            conns_rejected: AtomicU64::new(0),
        }
    }
}

impl Registry {
    /// An empty registry in the default (MVCC) mode.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry in an explicit concurrency mode (the RwLock
    /// ablation exists for benches and differential tests).
    pub fn with_mode(mode: ConcurrencyMode) -> Self {
        let mut r = Registry::default();
        r.mode = mode;
        r
    }

    /// Sets the commit-queue bound for every database created after
    /// this call (writes beyond the bound are shed with a retryable
    /// `ERR overloaded`). `0` is honored literally — every write beyond
    /// the one the mutator currently holds is shed — which the REPL
    /// retry tests use for deterministic exhaustion.
    #[must_use]
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// The commit-queue bound databases are created with.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Connections refused by the accept loop's connection cap.
    pub fn conns_rejected(&self) -> u64 {
        self.conns_rejected.load(Ordering::Relaxed)
    }

    /// Counts one connection refused at the accept loop.
    pub(crate) fn note_conn_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A durable registry rooted at `cfg.root`: every database directory
    /// already present is recovered *now* — snapshot load, WAL replay,
    /// torn-tail truncation, scaffold + prepared warmup — so the first
    /// request after this returns serves warm. Databases opened later
    /// get their own directory under the root. Durability implies the
    /// MVCC mode (the WAL is owned by the mutator thread).
    pub fn with_storage(cfg: StorageConfig) -> std::io::Result<Self> {
        Registry::with_storage_and_queue(cfg, DEFAULT_MAX_QUEUE)
    }

    /// [`Registry::with_storage`] with an explicit commit-queue bound —
    /// recovery happens after the bound is known, so databases already
    /// on disk get the same bound as ones opened later.
    pub fn with_storage_and_queue(cfg: StorageConfig, max_queue: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(&cfg.root)?;
        let mut dbs = HashMap::new();
        let mut names: Vec<(String, std::path::PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&cfg.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            names.push((name, entry.path()));
        }
        // Deterministic recovery order (read_dir order is arbitrary).
        names.sort();
        for (name, path) in names {
            let dir = DbDir::open(path)?;
            let state = durable::recover_state(&dir)?;
            dbs.insert(name, Arc::new(Db::recovered(state, dir, &cfg, max_queue)?));
        }
        Ok(Registry {
            dbs: RwLock::new(dbs),
            mode: ConcurrencyMode::Mvcc,
            storage: Some(cfg),
            max_queue,
            conns_rejected: AtomicU64::new(0),
        })
    }

    /// The concurrency mode databases are created with.
    pub fn mode(&self) -> ConcurrencyMode {
        self.mode
    }

    /// The storage configuration, when this registry is durable.
    pub fn storage(&self) -> Option<&StorageConfig> {
        self.storage.as_ref()
    }

    /// A fresh durable database in its own (new or empty) directory.
    fn create_durable(&self, cfg: &StorageConfig, name: &str) -> std::io::Result<Db> {
        let dir = DbDir::open(cfg.root.join(name))?;
        let state = durable::recover_state(&dir)?;
        Db::recovered(state, dir, cfg, self.max_queue)
    }

    /// Create-or-get the named database (the `OPEN` semantics). Under a
    /// durable registry the database gets its own directory; if that
    /// fails (disk full, permissions) the database still opens, loudly,
    /// as in-memory — serving beats refusing, and the warning tells the
    /// operator which databases are not covered by the data dir.
    pub fn open(&self, name: &str) -> Arc<Db> {
        let mut dbs = self.dbs.write().unwrap_or_else(|p| p.into_inner());
        dbs.entry(name.to_string())
            .or_insert_with(|| {
                if let Some(cfg) = &self.storage {
                    match self.create_durable(cfg, name) {
                        Ok(db) => return Arc::new(db),
                        Err(e) => eprintln!(
                            "indord-storage: cannot open a data directory for `{name}` ({e}); \
                             this database is IN-MEMORY ONLY"
                        ),
                    }
                }
                Arc::new(Db::new(
                    Vocabulary::new(),
                    Database::new(),
                    self.mode,
                    self.max_queue,
                ))
            })
            .clone()
    }

    /// Looks up an existing database (the `USE` semantics).
    pub fn get(&self, name: &str) -> Option<Arc<Db>> {
        self.dbs
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// Installs a database built programmatically (benches, tests,
    /// embedded seeding) under `name`, replacing any previous holder.
    /// Under a durable registry the installed state is written as the
    /// database's initial snapshot (replacing whatever its directory
    /// held), so it survives restarts like any other state.
    pub fn install(&self, name: &str, voc: Vocabulary, db: Database) -> Arc<Db> {
        let holder = if let Some(cfg) = &self.storage {
            match self.install_durable(cfg, name, &voc, &db) {
                Ok(d) => Arc::new(d),
                Err(e) => {
                    eprintln!(
                        "indord-storage: cannot persist installed database `{name}` ({e}); \
                         this database is IN-MEMORY ONLY"
                    );
                    Arc::new(Db::new(voc, db, ConcurrencyMode::Mvcc, self.max_queue))
                }
            }
        } else {
            Arc::new(Db::new(voc, db, self.mode, self.max_queue))
        };
        self.dbs
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_string(), holder.clone());
        holder
    }

    /// Resets the database's directory and seeds it with an initial
    /// snapshot of the installed state (id 0: every WAL record — they
    /// start at 1 — replays on top of it).
    fn install_durable(
        &self,
        cfg: &StorageConfig,
        name: &str,
        voc: &Vocabulary,
        db: &Database,
    ) -> std::io::Result<Db> {
        let dir = DbDir::open(cfg.root.join(name))?;
        dir.reset()?;
        let payload = durable::encode_snapshot(voc, db, &HashMap::new());
        dir.write_snapshot(0, payload.as_bytes())?;
        let state = durable::recover_state(&dir)?;
        Db::recovered(state, dir, cfg, self.max_queue)
    }

    /// Test-support: like [`Registry::install`] on a durable registry,
    /// but the database's WAL is the caller's — typically one built on
    /// a fault-injecting [`indord_storage::FaultIo`] — instead of the
    /// directory's file WAL. The installed state is still written as the
    /// directory's initial snapshot, so crash-recovery tests can restart
    /// from the directory afterwards. Not part of the public API.
    #[doc(hidden)]
    pub fn install_durable_with_wal(
        &self,
        name: &str,
        voc: Vocabulary,
        db: Database,
        wal: Wal,
    ) -> std::io::Result<Arc<Db>> {
        let cfg = self
            .storage
            .as_ref()
            .expect("install_durable_with_wal requires a durable registry");
        let dir = DbDir::open(cfg.root.join(name))?;
        dir.reset()?;
        let payload = durable::encode_snapshot(&voc, &db, &HashMap::new());
        dir.write_snapshot(0, payload.as_bytes())?;
        let durable = DurableState {
            dir,
            wal,
            snapshot_every: cfg.snapshot_every.max(1),
            since_snapshot: 0,
            prepared_src: HashMap::new(),
        };
        let holder = Arc::new(Db::build(
            voc,
            Session::new(db),
            HashMap::new(),
            ConcurrencyMode::Mvcc,
            Some(durable),
            self.max_queue,
        ));
        self.dbs
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_string(), holder.clone());
        Ok(holder)
    }

    /// Names of the registered databases, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .dbs
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Graceful shutdown of every database: drain each commit queue,
    /// fsync each WAL tail, and join each mutator thread. Idempotent;
    /// also runs on drop. After this, reads keep serving the last
    /// published snapshots and writes fail with a typed error.
    pub fn shutdown_dbs(&self) {
        let dbs: Vec<Arc<Db>> = self
            .dbs
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        for db in dbs {
            db.shutdown_mutator();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        // `Db::drop` joins too, but only when the *last* Arc goes; a
        // leaked clone must not leave an unsynced WAL tail behind.
        self.shutdown_dbs();
    }
}

/// Whether [`Conn::execute`] materializes a [`TraceReport`] — kept off
/// the fast path, because building one costs a request re-render, a
/// response first-line render, and a session-stats diff.
enum ReportMode<'a> {
    /// Untraced request: never.
    Never,
    /// `TRACE`: always; the caller pre-rendered the inner request text.
    Always(String),
    /// Slow log: only when total wall time exceeds the threshold (ns).
    /// The original wire line, when known, becomes the report's request
    /// text — so nothing is re-rendered per request.
    IfSlowerThan(u64, Option<&'a str>),
}

/// Per-connection dispatch state: the selected database. One `Conn` per
/// client socket (or per embedded REPL).
pub struct Conn {
    registry: Arc<Registry>,
    current: Option<Arc<Db>>,
    /// Name of the selected database (`METRICS` labels and the
    /// slow-query log need it; the `Arc<Db>` doesn't know its name).
    current_name: Option<String>,
    /// Deadline applied to every request that doesn't carry its own
    /// `DEADLINE <ms>` prefix (`--request-timeout`). `None` = no limit.
    default_deadline: Option<Duration>,
    /// Slow-query threshold (`--slow-ms`): requests are traced and ones
    /// over the threshold log their full phase breakdown to stderr.
    /// `None` (the default) = no tracing, no logging.
    slow_ms: Option<u64>,
}

impl Conn {
    /// A connection with no database selected.
    pub fn new(registry: Arc<Registry>) -> Self {
        Conn {
            registry,
            current: None,
            current_name: None,
            default_deadline: None,
            slow_ms: None,
        }
    }

    /// Sets the default per-request deadline (`--request-timeout`); a
    /// request's own `DEADLINE <ms>` prefix overrides it.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.default_deadline = timeout;
        self
    }

    /// Sets the slow-query threshold (`--slow-ms`): every request on
    /// this connection is traced, and ones over the threshold write
    /// their full phase breakdown to stderr.
    #[must_use]
    pub fn with_slow_ms(mut self, slow_ms: Option<u64>) -> Self {
        self.slow_ms = slow_ms;
        self
    }

    /// Parses and dispatches one request line; parse-error spans are
    /// shifted into line coordinates so clients can caret the line they
    /// sent. An optional `DEADLINE <ms>` prefix bounds this request:
    /// reads poll it cooperatively inside the search loop, writes stop
    /// waiting for their ack when it expires.
    pub fn handle_line(&mut self, line: &str) -> Response {
        match Request::parse_with_deadline(line) {
            Ok((req, payload, deadline)) => {
                let deadline = deadline
                    .or(self.default_deadline)
                    .map(|d| Instant::now() + d);
                match self.handle_traced(req, deadline, Some(line)) {
                    Response::Error(e) => Response::Error(e.shift_span(payload)),
                    resp => resp,
                }
            }
            Err(e) => Response::Error(e),
        }
    }

    /// Dispatches one typed request. Parse-error spans in the reply are
    /// relative to the request's payload text (see
    /// [`Conn::handle_line`] for line coordinates).
    pub fn handle(&mut self, req: Request) -> Response {
        let deadline = self.default_deadline.map(|d| Instant::now() + d);
        self.handle_traced(req, deadline, None)
    }

    /// `line` is the original wire text, when this request came off a
    /// socket: the slow-query log reports it verbatim instead of paying
    /// a `Display` re-render of the request on the per-request path. A
    /// programmatic [`Conn::handle`] has no line and slow-logs `-`.
    fn handle_traced(
        &mut self,
        req: Request,
        deadline: Option<Instant>,
        line: Option<&str>,
    ) -> Response {
        // `TRACE <request>`: execute the inner request with an enabled
        // recorder and answer with the phase/counter report instead of
        // the inner reply (whose outcome line the report carries).
        if let Request::Trace(inner) = req {
            let mut rec = TraceRecorder::enabled();
            let req_text = inner.to_string();
            let (_, report) =
                self.execute(*inner, deadline, &mut rec, ReportMode::Always(req_text));
            let report = report.expect("ReportMode::Always yields a report");
            return Response::Trace(report.render_body());
        }
        let slow = self.slow_ms;
        let mut rec = TraceRecorder::new(slow.is_some());
        let mode = match slow {
            Some(ms) => ReportMode::IfSlowerThan(ms.saturating_mul(1_000_000), line),
            None => ReportMode::Never,
        };
        let (resp, report) = self.execute(req, deadline, &mut rec, mode);
        // `report` is only materialized for requests over the
        // threshold — the fast path records phases and nothing else.
        if let (Some(ms), Some(report)) = (slow, report) {
            let db = self.current_name.as_deref().unwrap_or("-");
            let seq = self
                .current
                .as_ref()
                .and_then(|d| d.read_snapshot())
                .map_or(0, |s| s.seq());
            eprintln!("{}", report.render_slow_line(db, seq, ms));
        }
        resp
    }

    /// Runs one request under `rec`: dispatch, then the per-request
    /// accounting — verb/status latency, fired-route latency, engine
    /// counter deltas, deadline-abort attribution (aborts record their
    /// elapsed-at-abort under the `aborted` status label rather than
    /// polluting the completed tail). Returns the response plus a
    /// [`TraceReport`] when `mode` asks for one.
    fn execute(
        &mut self,
        req: Request,
        deadline: Option<Instant>,
        rec: &mut TraceRecorder,
        mode: ReportMode<'_>,
    ) -> (Response, Option<TraceReport>) {
        let verb = verb_of(&req);
        let counters_before = counters::snapshot();
        // The scaffold-maintenance diff only surfaces in `TRACE` bodies
        // (the slow-log line doesn't carry it), so only `Always` mode
        // pays the before-capture — slow-mode requests skip it.
        let session_before = matches!(mode, ReportMode::Always(_))
            .then(|| self.current.as_ref().map(|db| db.view().session().stats()))
            .flatten();
        let start = Instant::now();
        let result = self.dispatch(req, deadline, rec);
        let elapsed = start.elapsed().as_nanos() as u64;
        let delta = counters::snapshot().delta_since(&counters_before);
        let fired = route::take();
        let aborted = matches!(&result, Err(e) if e.kind == ErrorKind::Deadline);
        if let Some(db) = &self.current {
            let m = db.stats.metrics();
            if let Some(v) = verb {
                let status = if aborted { Status::Aborted } else { Status::Ok };
                m.record_verb(v, status, elapsed);
            }
            if let Some(r) = fired {
                m.record_route(r, elapsed);
            }
            m.add_engine_counters(&delta);
            if aborted {
                db.stats.deadline_aborts.fetch_add(1, Ordering::Relaxed);
            }
        }
        let resp = match result {
            Ok(resp) => resp,
            Err(e) => Response::Error(e),
        };
        // Materializing the report costs allocations and renders — it
        // happens for `TRACE` (explicitly asked) and for slow-logged
        // requests (already slow), never on the per-request fast path.
        let request = match mode {
            ReportMode::Never => None,
            ReportMode::Always(text) => Some(text),
            ReportMode::IfSlowerThan(threshold_ns, line) => {
                (elapsed > threshold_ns).then(|| line.unwrap_or("-").to_string())
            }
        };
        let report = request.map(|request| {
            let session_after = session_before
                .is_some()
                .then(|| self.current.as_ref().map(|db| db.view().session().stats()))
                .flatten();
            let (builds, patches, evictions) = match (session_before, session_after) {
                (Some(b), Some(a)) => (
                    a.scaffold_builds.saturating_sub(b.scaffold_builds),
                    a.in_place_patches.saturating_sub(b.in_place_patches),
                    a.pair_evictions.saturating_sub(b.pair_evictions),
                ),
                _ => (0, 0, 0),
            };
            TraceReport {
                request,
                route: fired.map(|r| r.as_str()),
                total_ns: elapsed,
                times: rec.times_ns(elapsed).unwrap_or_default(),
                counters: delta,
                scaffold_builds: builds,
                in_place_patches: patches,
                pair_evictions: evictions,
                outcome: resp.render().lines().next().unwrap_or_default().to_string(),
            }
        });
        (resp, report)
    }

    fn current(&self) -> Result<&Arc<Db>, WireError> {
        self.current
            .as_ref()
            .ok_or_else(|| WireError::registry("no database selected (OPEN <name> first)"))
    }

    /// Submits a write, threading a [`PhaseTimes`] slot through the
    /// mutator when the recorder is enabled so the queue-wait / WAL /
    /// fsync / publish phases measured on the mutator thread fold back
    /// into this request's trace.
    fn submit_write(
        &self,
        db: &Arc<Db>,
        op: WriteOp,
        deadline: Option<Instant>,
        rec: &mut TraceRecorder,
    ) -> Result<Response, WireError> {
        if !rec.is_enabled() {
            return db.submit_deadline(op, deadline);
        }
        let slot = Arc::new(Mutex::new(PhaseTimes::new()));
        let result = db.submit_deadline_traced(op, deadline, Some(slot.clone()));
        rec.merge(&slot.lock().unwrap_or_else(|p| p.into_inner()));
        result
    }

    fn dispatch(
        &mut self,
        req: Request,
        deadline: Option<Instant>,
        rec: &mut TraceRecorder,
    ) -> Result<Response, WireError> {
        match req {
            Request::Open(name) => {
                let db = self.registry.open(&name);
                let atoms = db.view().session().len();
                self.current = Some(db);
                self.current_name = Some(name.clone());
                Ok(Response::Ok(format!("using {name} ({atoms} atoms)")))
            }
            Request::Use(name) => {
                let db = self
                    .registry
                    .get(&name)
                    .ok_or_else(|| WireError::registry(format!("unknown database `{name}`")))?;
                let atoms = db.view().session().len();
                self.current = Some(db);
                self.current_name = Some(name.clone());
                Ok(Response::Ok(format!("using {name} ({atoms} atoms)")))
            }
            Request::Fact(fragment) => {
                let db = self.current()?.clone();
                self.submit_write(&db, WriteOp::Fragment(fragment), deadline, rec)
            }
            Request::Prepare { name, query } => {
                let db = self.current()?.clone();
                self.submit_write(&db, WriteOp::Prepare { name, query }, deadline, rec)
            }
            Request::Entail(target) => {
                let db = self.current()?.clone();
                self.evaluate(&db, &target, false, deadline, rec)
            }
            Request::Countermodel(target) => {
                let db = self.current()?.clone();
                self.evaluate(&db, &target, true, deadline, rec)
            }
            Request::Batch(names) => {
                // One view for the whole batch: every verdict in the
                // reply is computed against the same snapshot (see the
                // protocol docs' consistency contract).
                let db = self.current()?.clone();
                let view = db.view();
                let pqs = rec.time(Phase::Plan, || -> Result<Vec<_>, WireError> {
                    names
                        .iter()
                        .map(|name| {
                            view.prepared(name).ok_or_else(|| {
                                WireError::registry(format!("unknown prepared query `{name}`"))
                            })
                        })
                        .collect()
                })?;
                let mut eng = Engine::new(view.vocabulary());
                if let Some(d) = deadline {
                    eng = eng.with_deadline(d);
                }
                let verdicts = rec.time(Phase::Search, || -> Result<Vec<_>, WireError> {
                    names
                        .iter()
                        .zip(&pqs)
                        .map(|(name, pq)| {
                            let v = eng
                                .entails_prepared(view.session(), pq)
                                .map_err(|e| WireError::from(&e))?;
                            Ok((name.clone(), v.holds()))
                        })
                        .collect()
                })?;
                let n = names.len() as u64;
                db.stats.queries.fetch_add(n, Ordering::Relaxed);
                db.stats.prepared_hits.fetch_add(n, Ordering::Relaxed);
                Ok(Response::Verdicts(verdicts))
            }
            Request::Explain(target) => {
                let db = self.current()?.clone();
                let view = db.view();
                match &target {
                    Target::Prepared(name) => {
                        let pq = view.prepared(name).ok_or_else(|| {
                            WireError::registry(format!("unknown prepared query `{name}`"))
                        })?;
                        Ok(Response::Explain(render_explain(name, pq)))
                    }
                    Target::Inline(text) => {
                        // Same constant-free rule as PREPARE: an inline
                        // plan is compiled here exactly as PREPARE would,
                        // and constants would pin guard facts that only
                        // exist per evaluation.
                        let pq = compile_prepared(view.vocabulary(), text).map_err(|e| {
                            if e.message.contains("constant-free") {
                                WireError::proto(
                                    "EXPLAIN of an inline query requires it constant-free \
                                     (constants are supported on inline ENTAIL)",
                                )
                            } else {
                                e
                            }
                        })?;
                        Ok(Response::Explain(render_explain(text, &pq)))
                    }
                }
            }
            // Nested TRACE is rejected at parse time and intercepted in
            // `handle_with_deadline`; a programmatic `handle(Trace(..))`
            // still lands here — run the inner request untraced.
            Request::Trace(inner) => self.dispatch(*inner, deadline, rec),
            Request::Metrics => {
                let db = self.current()?.clone();
                let name = self.current_name.as_deref().unwrap_or("-");
                Ok(Response::Metrics(
                    db.stats.metrics().render_prometheus(name),
                ))
            }
            Request::Stats => {
                let db = self.current()?.clone();
                let view = db.view();
                let session_stats = view.session().stats();
                let (p50_ns, p99_ns) = db.stats.metrics.p50_p99();
                let queue_depth_p99 = db.stats.metrics.queue_depth_histogram().quantile(0.99);
                Ok(Response::Stats(Box::new(StatsReply {
                    atoms: view.session().len() as u64,
                    epoch: session_stats.epoch,
                    prepared: view.prepared_len() as u64,
                    queries: db.stats.queries.load(Ordering::Relaxed),
                    prepared_hits: db.stats.prepared_hits.load(Ordering::Relaxed),
                    writes: db.stats.writes.load(Ordering::Relaxed),
                    scaffold_builds: session_stats.scaffold_builds,
                    scaffold_rebuilds: session_stats.scaffold_rebuilds(),
                    in_place_patches: session_stats.in_place_patches,
                    cache_drops: session_stats.cache_drops,
                    pair_evictions: session_stats.pair_evictions,
                    contention_fallbacks: session_stats.contention_fallbacks,
                    p50_ns,
                    p99_ns,
                    commit_queue_depth: db.stats.pending.load(Ordering::Relaxed),
                    queue_depth_p99,
                    group_commits: db.stats.group_commits.load(Ordering::Relaxed),
                    group_fragments: db.stats.group_fragments.load(Ordering::Relaxed),
                    max_group: db.stats.max_group.load(Ordering::Relaxed),
                    snapshots_published: db.stats.snapshots_published.load(Ordering::Relaxed),
                    patchable_writes: db.stats.patchable_writes.load(Ordering::Relaxed),
                    structural_writes: db.stats.structural_writes.load(Ordering::Relaxed),
                    snapshot_age_ns: view.snapshot_age_ns(),
                    wal_appends: db.stats.wal_appends.load(Ordering::Relaxed),
                    wal_bytes: db.stats.wal_bytes.load(Ordering::Relaxed),
                    fsyncs: db.stats.fsyncs.load(Ordering::Relaxed),
                    snapshots_written: db.stats.snapshots_written.load(Ordering::Relaxed),
                    compactions: db.stats.compactions.load(Ordering::Relaxed),
                    recovery_replayed_fragments: db
                        .stats
                        .recovery_replayed_fragments
                        .load(Ordering::Relaxed),
                    recovery_truncated_bytes: db
                        .stats
                        .recovery_truncated_bytes
                        .load(Ordering::Relaxed),
                    stats_samples_dropped: db.stats.samples_dropped(),
                    writes_shed: db.stats.writes_shed.load(Ordering::Relaxed),
                    deadline_aborts: db.stats.deadline_aborts.load(Ordering::Relaxed),
                    conns_rejected: self.registry.conns_rejected(),
                    mutator_restarts: db.stats.mutator_restarts.load(Ordering::Relaxed),
                    degraded_entries: db.stats.degraded_entries.load(Ordering::Relaxed),
                })))
            }
            Request::Health => {
                let db = self.current()?.clone();
                let (state, detail) = db.health();
                // Liveness signals ride on the detail line: how stale the
                // published snapshot is and how deep the commit queue
                // stands, so a probe can alert on a wedged mutator before
                // it trips the supervisor.
                let age_ms = db.view().snapshot_age_ns() / 1_000_000;
                let depth = db.stats.pending.load(Ordering::Relaxed);
                let extra = format!("snapshot_age_ms={age_ms} commit_queue_depth={depth}");
                let detail = if detail.is_empty() {
                    extra
                } else {
                    format!("{detail}; {extra}")
                };
                Ok(Response::Health { state, detail })
            }
            Request::Flush => {
                let db = self.current()?.clone();
                self.submit_write(&db, WriteOp::Flush, deadline, rec)
            }
            Request::Close => Ok(Response::Bye),
        }
    }

    /// Evaluates an `ENTAIL`/`COUNTERMODEL` target against a pinned
    /// read view and renders the reply — verdict only, or with the
    /// countermodel witness when `witness` is set. Prepared names hit
    /// the registry and the warm session; inline text is parsed per
    /// request (constants supported — the guard facts of §2 constant
    /// elimination evaluate against an augmented one-shot view, leaving
    /// the shared state untouched). Rendering happens here, under the
    /// vocabulary the verdict was produced with: a constant-carrying
    /// query's countermodel mentions guard predicates that exist only
    /// in the request-local vocabulary.
    fn evaluate(
        &self,
        db: &Arc<Db>,
        target: &Target,
        witness: bool,
        deadline: Option<Instant>,
        rec: &mut TraceRecorder,
    ) -> Result<Response, WireError> {
        let view = db.view();
        // The deadline rides into the Theorem 5.3 search loop, which
        // polls it cooperatively and abandons the search with a typed
        // `ERR deadline` — the worker returns to the pool immediately.
        fn engine_for(voc: &Vocabulary, deadline: Option<Instant>) -> Engine<'_> {
            let mut eng = Engine::new(voc);
            if let Some(d) = deadline {
                eng = eng.with_deadline(d);
            }
            eng
        }
        let resp = match target {
            Target::Prepared(name) => {
                // Laps, not `time()` closures: this is the hottest read
                // path, and one clock read per boundary keeps the traced
                // tax within the bench gate's 5% budget. Laps land
                // *before* each `?` so an erroring phase still shows up
                // in its trace (deadline aborts attribute their
                // elapsed-at-abort to the search phase).
                let pq = view
                    .prepared(name)
                    .ok_or_else(|| WireError::registry(format!("unknown prepared query `{name}`")));
                rec.lap(Phase::Plan);
                let pq = pq?;
                db.stats.prepared_hits.fetch_add(1, Ordering::Relaxed);
                // Warmth check surfaced as its own phase: a cold
                // disjunctive scaffold rebuilds here rather than inside
                // the search, so TRACE separates "paid to warm" from
                // "paid to search".
                let _ = view.session().disjunctive_scaffold(view.vocabulary());
                rec.lap(Phase::Scaffold);
                let v = engine_for(view.vocabulary(), deadline)
                    .entails_prepared(view.session(), pq)
                    .map_err(|e| WireError::from(&e));
                rec.lap(Phase::Search);
                let out = render_verdict(v?, view.vocabulary(), witness);
                rec.lap(Phase::Render);
                out
            }
            Target::Inline(text) => {
                let expr =
                    parse_query_expr_in(view.vocabulary(), text).map_err(|e| WireError::from(&e));
                rec.lap(Phase::Parse);
                let expr = expr?;
                if !mentions_constants(&expr) {
                    // Constant-free (the common fast path): straight to
                    // DNF — no database or vocabulary clone — and
                    // evaluate against the pinned warm session.
                    let eng = engine_for(view.vocabulary(), deadline);
                    let pq = expr
                        .to_dnf(view.vocabulary())
                        .map_err(|e| WireError::from(&e))
                        .and_then(|q| eng.prepare(&q).map_err(|e| WireError::from(&e)));
                    rec.lap(Phase::Plan);
                    let pq = pq?;
                    let _ = view.session().disjunctive_scaffold(view.vocabulary());
                    rec.lap(Phase::Scaffold);
                    let v = eng
                        .entails_prepared(view.session(), &pq)
                        .map_err(|e| WireError::from(&e));
                    rec.lap(Phase::Search);
                    let out = render_verdict(v?, view.vocabulary(), witness);
                    rec.lap(Phase::Render);
                    out
                } else {
                    // Constants in the query: clone-and-augment the
                    // vocabulary and database with their guard facts
                    // (§2) — one-shot evaluation under the
                    // request-local vocabulary.
                    let planned = (|| {
                        let mut voc2 = view.vocabulary().clone();
                        let (aug_db, q) =
                            eliminate_constants(&mut voc2, view.session().database(), &expr)
                                .map_err(|e| WireError::from(&e))?;
                        Ok::<_, WireError>((voc2, aug_db, q))
                    })();
                    rec.lap(Phase::Plan);
                    let (voc2, aug_db, q) = planned?;
                    let v = engine_for(&voc2, deadline)
                        .entails(&aug_db, &q)
                        .map_err(|e| WireError::from(&e));
                    rec.lap(Phase::Search);
                    let out = render_verdict(v?, &voc2, witness);
                    rec.lap(Phase::Render);
                    out
                }
            }
        };
        db.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok(resp)
    }
}

/// Applies a parsed fragment to the session atom-by-atom (proper facts
/// then order atoms), returning the atom count. Every write routes
/// through the session's in-place patching.
fn apply_fragment(session: &mut Session, fragment_db: &Database) -> u64 {
    let mut n = 0u64;
    for atom in fragment_db.proper_atoms() {
        session.push_proper(atom.clone());
        n += 1;
    }
    for oa in fragment_db.order_atoms() {
        match oa.rel {
            OrderRel::Lt => session.assert_lt(oa.lhs, oa.rhs),
            OrderRel::Le => session.assert_le(oa.lhs, oa.rhs),
            OrderRel::Ne => session.assert_ne(oa.lhs, oa.rhs),
        }
        n += 1;
    }
    n
}

/// Renders a verdict reply: `CERTAIN`/`NOT-CERTAIN`, or — for
/// `COUNTERMODEL` requests — the witness block. `voc` must be the
/// vocabulary the verdict was produced under.
fn render_verdict(v: Verdict, voc: &Vocabulary, witness: bool) -> Response {
    if !witness {
        return Response::Verdict(v.holds());
    }
    match v {
        Verdict::Entailed => Response::Verdict(true),
        Verdict::MonadicCountermodel(m) => {
            Response::Countermodel(format!("word: {}\n", m.display(voc)))
        }
        Verdict::NaryCountermodel(m) => Response::Countermodel(m.display(voc).to_string()),
    }
}

/// Maps a request to the histogram verb it records under. `None` means
/// the request is connection-state or introspection chatter (`OPEN`,
/// `STATS`, `METRICS`, ...) and stays out of the latency histograms.
fn verb_of(req: &Request) -> Option<Verb> {
    match req {
        Request::Fact(_) => Some(Verb::Fact),
        Request::Prepare { .. } => Some(Verb::Prepare),
        Request::Entail(_) => Some(Verb::Entail),
        Request::Countermodel(_) => Some(Verb::Countermodel),
        Request::Batch(_) => Some(Verb::Batch),
        Request::Flush => Some(Verb::Other),
        Request::Trace(inner) => verb_of(inner),
        _ => None,
    }
}

/// Renders the `EXPLAIN` body for a compiled plan: overall strategy and
/// route, then one line per disjunct with its route, path count,
/// variable census, and `!=` expansion decision. Pure introspection —
/// nothing here touches the session or runs a search.
fn render_explain(name: &str, pq: &PreparedQuery) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!("query {name}\n"));
    out.push_str(&format!("strategy {}\n", pq.strategy().as_str()));
    out.push_str(&format!("route {}\n", pq.plan().as_str()));
    out.push_str(&format!(
        "monadic {}\n",
        if pq.is_monadic() { "yes" } else { "no" }
    ));
    if let Some(cap) = pq.expansion_cap() {
        out.push_str(&format!("expansion_cap {cap}\n"));
    }
    let disjuncts = pq.explain_disjuncts();
    out.push_str(&format!("disjuncts {}\n", disjuncts.len()));
    for (i, d) in disjuncts.iter().enumerate() {
        out.push_str(&format!(
            "disjunct {i} route {} paths {} order_vars {} object_vars {} ne_atoms {} ne {}\n",
            d.route.as_str(),
            d.path_count,
            d.order_vars,
            d.object_vars,
            d.ne_atoms,
            d.ne_expansion.describe(),
        ));
    }
    out
}

/// True when the expression mentions any (object or order) constant.
fn mentions_constants(e: &QueryExpr) -> bool {
    let is_const = |t: &QTerm| !matches!(t, QTerm::Var(_));
    match e {
        QueryExpr::And(ps) | QueryExpr::Or(ps) => ps.iter().any(mentions_constants),
        QueryExpr::Exists(_, body) => mentions_constants(body),
        QueryExpr::Proper { args, .. } => args.iter().any(is_const),
        QueryExpr::Order { lhs, rhs, .. } => is_const(lhs) || is_const(rhs),
    }
}

/// Parses a query that must not mention constants (the `PREPARE` rule:
/// a registered query evaluates against an evolving database, so
/// constant guard facts cannot be pinned at compile time).
fn parse_constant_free(voc: &Vocabulary, text: &str) -> Result<DnfQuery, WireError> {
    let expr = parse_query_expr_in(voc, text).map_err(|e| WireError::from(&e))?;
    if mentions_constants(&expr) {
        return Err(WireError::proto(
            "PREPARE requires a constant-free query; constants are supported on inline ENTAIL",
        ));
    }
    expr.to_dnf(voc).map_err(|e| WireError::from(&e))
}

///// A running server: bound address plus shutdown plumbing. Dropping the
/// handle shuts the accept loop down (worker threads serving still-open
/// connections finish with their clients) and then gracefully drains
/// every database — commit queues emptied, WAL tails fsynced, mutator
/// threads joined — so a `shutdown()`/drop is a durability barrier.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: Arc<Registry>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, joins the accept thread, then
    /// drains and joins every database's mutator (acked writes are on
    /// disk when this returns). Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // New connections are refused; drain the databases. In-flight
        // client writes enqueued before this point are processed by the
        // drain loop ahead of the shutdown ack, so they are not lost.
        self.registry.shutdown_dbs();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Tunables of the serving loop — thread count, connection cap, line
/// cap, socket timeouts, and the default per-request deadline.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fixed worker pool size (each worker owns one connection at a
    /// time).
    pub threads: usize,
    /// Hard cap on accepted-and-not-yet-finished connections; beyond it
    /// the accept loop answers `ERR busy` directly on the socket and
    /// closes, instead of queueing without bound.
    pub max_conns: usize,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with `ERR toolarge` and the connection is closed.
    pub max_line: usize,
    /// Socket read timeout — bounds how long a worker waits for the
    /// next request byte (a slow-loris client is disconnected, not
    /// parked on a pool slot forever). `None` = wait indefinitely.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout — bounds how long a worker blocks on a
    /// client that stopped reading its replies.
    pub write_timeout: Option<Duration>,
    /// Default per-request deadline (`--request-timeout`); a request's
    /// own `DEADLINE <ms>` prefix overrides it.
    pub request_timeout: Option<Duration>,
    /// Slow-query threshold (`--slow-ms`): when set, every request is
    /// traced and ones over the threshold log their phase breakdown to
    /// stderr. `None` (the default) disables tracing entirely.
    pub slow_ms: Option<u64>,
}

impl ServeOptions {
    /// Defaults for a pool of `threads` workers: connection cap at
    /// `4 × threads`, 1 MiB line cap, a 30 s write timeout, no read
    /// timeout (idle interactive clients are legitimate), no default
    /// request deadline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        ServeOptions {
            threads,
            max_conns: threads * 4,
            max_line: 1 << 20,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
            request_timeout: None,
            slow_ms: None,
        }
    }
}

/// Binds `addr` and serves the registry's databases on a fixed pool of
/// `threads` worker threads with default [`ServeOptions`].
pub fn serve<A: ToSocketAddrs>(
    registry: Arc<Registry>,
    addr: A,
    threads: usize,
) -> std::io::Result<ServerHandle> {
    serve_with(registry, addr, ServeOptions::new(threads))
}

/// Binds `addr` and serves the registry's databases under explicit
/// [`ServeOptions`] (connection cap, line cap, timeouts, default
/// request deadline).
pub fn serve_with<A: ToSocketAddrs>(
    registry: Arc<Registry>,
    addr: A,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    // Accepted-and-unfinished connections (queued + being served):
    // incremented by the accept loop before handoff, decremented by the
    // worker when the client is done.
    let active = Arc::new(AtomicU64::new(0));
    for _ in 0..opts.threads.max(1) {
        let rx = Arc::clone(&rx);
        let registry = Arc::clone(&registry);
        let active = Arc::clone(&active);
        let opts = opts.clone();
        thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                guard.recv()
            };
            match stream {
                // A panic while serving one client (an engine bug, a
                // poisoned lock) must not shrink the fixed pool: catch
                // it, drop the connection, keep the worker.
                Ok(s) => {
                    let registry = &registry;
                    let opts = &opts;
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        serve_client(s, registry, opts)
                    }));
                    active.fetch_sub(1, Ordering::SeqCst);
                }
                Err(_) => break, // accept loop gone
            }
        });
    }
    let flag = Arc::clone(&shutdown);
    let registry_handle = Arc::clone(&registry);
    let accept = {
        let registry = Arc::clone(&registry);
        let active = Arc::clone(&active);
        let max_conns = opts.max_conns.max(1);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(mut s) => {
                        if active.load(Ordering::SeqCst) >= max_conns as u64 {
                            // At the cap: answer `ERR busy` on the spot
                            // and close — an immediate typed rejection
                            // beats an unbounded silent queue.
                            registry.note_conn_rejected();
                            let err = Response::Error(WireError::kinded(
                                ErrorKind::Busy,
                                format!("connection limit reached ({max_conns}); retry later"),
                            ));
                            let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
                            let _ = s.write_all(err.render().as_bytes());
                            continue; // drop = close
                        }
                        active.fetch_add(1, Ordering::SeqCst);
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    // Transient accept failures (ECONNABORTED from a
                    // client resetting while queued, EMFILE during a
                    // burst) must not kill the listener — skip and keep
                    // accepting.
                    Err(_) => continue,
                }
            }
        })
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        registry: registry_handle,
    })
}

/// Outcome of one capped line read.
enum LineRead {
    /// A complete line (without the terminator) is in the buffer.
    Line,
    /// Clean EOF before any byte of a new line.
    Eof,
    /// The line exceeded the cap; the connection should be told and
    /// closed (the rest of the oversized line is never read).
    TooLarge,
}

/// Reads one `\n`-terminated line into `buf`, refusing to buffer more
/// than `cap` bytes — the bounded replacement for `BufRead::lines()`,
/// which would happily grow a line as large as a client cares to send.
fn read_line_capped(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line // unterminated final line
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                if buf.len() > cap {
                    return Ok(LineRead::TooLarge);
                }
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(LineRead::Line);
            }
            None => {
                let n = available.len();
                buf.extend_from_slice(available);
                reader.consume(n);
                if buf.len() > cap {
                    return Ok(LineRead::TooLarge);
                }
            }
        }
    }
}

/// Serves one client: a request line in, a framed response out, until
/// `CLOSE`, EOF, an oversized line, or a socket timeout.
fn serve_client(stream: TcpStream, registry: &Arc<Registry>, opts: &ServeOptions) {
    let _ = stream.set_read_timeout(opts.read_timeout);
    let _ = stream.set_write_timeout(opts.write_timeout);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conn = Conn::new(Arc::clone(registry))
        .with_request_timeout(opts.request_timeout)
        .with_slow_ms(opts.slow_ms);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match read_line_capped(&mut reader, &mut buf, opts.max_line) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line) => {}
            Ok(LineRead::TooLarge) => {
                let err = Response::Error(WireError::kinded(
                    ErrorKind::TooLarge,
                    format!(
                        "request line exceeds the {}-byte limit; closing",
                        opts.max_line
                    ),
                ));
                let _ = writer.write_all(err.render().as_bytes());
                let _ = writer.flush();
                break;
            }
            // Socket errors, including read timeouts (WouldBlock /
            // TimedOut from a slow-loris client): close — a parked
            // worker is a parked pool slot.
            Err(_) => break,
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let resp = conn.handle_line(&line);
        let done = matches!(resp, Response::Bye);
        if writer.write_all(resp.render().as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if done {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorKind;
    use std::time::Duration;

    fn conn() -> Conn {
        Conn::new(Arc::new(Registry::new()))
    }

    fn conn_with(mode: ConcurrencyMode) -> Conn {
        Conn::new(Arc::new(Registry::with_mode(mode)))
    }

    #[test]
    fn open_write_prepare_entail_round() {
        let mut c = conn();
        assert!(matches!(
            c.handle_line("ENTAIL exists t. P(t)"),
            Response::Error(WireError {
                kind: ErrorKind::Registry,
                ..
            })
        ));
        assert!(matches!(c.handle_line("OPEN lab"), Response::Ok(_)));
        assert!(matches!(
            c.handle_line("FACT pred Heat(ord); pred Cool(ord); Heat(t1); Cool(t2); t1 < t2;"),
            Response::Ok(_)
        ));
        assert!(matches!(
            c.handle_line("PREPARE cooled: exists a b. Heat(a) & a < b & Cool(b)"),
            Response::Ok(_)
        ));
        assert_eq!(c.handle_line("ENTAIL cooled"), Response::Verdict(true));
        assert_eq!(
            c.handle_line("ENTAIL exists a b. Cool(a) & a < b & Heat(b)"),
            Response::Verdict(false)
        );
        // The same db is visible from a second connection via USE.
        let mut c2 = Conn::new(Arc::clone(&c.registry));
        assert!(matches!(c2.handle_line("USE lab"), Response::Ok(_)));
        assert_eq!(c2.handle_line("ENTAIL cooled"), Response::Verdict(true));
        assert!(matches!(
            c2.handle_line("USE nope"),
            Response::Error(WireError {
                kind: ErrorKind::Registry,
                ..
            })
        ));
        assert_eq!(c.handle_line("CLOSE"), Response::Bye);
    }

    #[test]
    fn inconsistent_fragment_is_rejected_and_rolled_back() {
        // A write that would close a `<`-cycle must not poison the
        // shared database (there is no DELETE): the fragment is
        // rejected with the typed inconsistency error and the previous
        // state keeps serving.
        let mut c = conn();
        c.handle_line("OPEN lab");
        assert!(matches!(
            c.handle_line("FACT pred P(ord); P(u); P(v); u < v;"),
            Response::Ok(_)
        ));
        // An in-place write before the poisoning attempt, so the test
        // can check the rollback preserves the lifetime counters.
        assert!(matches!(c.handle_line("ASSERT u <= v;"), Response::Ok(_)));
        let (patches_before, drops_before) = match c.handle_line("STATS") {
            Response::Stats(s) => (s.in_place_patches, s.cache_drops),
            other => panic!("expected stats, got {other:?}"),
        };
        assert!(patches_before >= 1);
        let resp = c.handle_line("FACT v < u;");
        assert!(
            matches!(
                &resp,
                Response::Error(WireError {
                    kind: ErrorKind::Inconsistent,
                    ..
                })
            ),
            "{resp:?}"
        );
        // The database still answers, with the poisoning edge absent.
        assert_eq!(
            c.handle_line("ENTAIL exists s t. P(s) & s < t & P(t)"),
            Response::Verdict(true)
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 4, "rolled-back edge must not be stored");
        assert_eq!(
            s.in_place_patches, patches_before,
            "rollback must not reset lifetime counters: {s:?}"
        );
        assert_eq!(
            s.cache_drops, drops_before,
            "a rolled-back fragment contributes no counter churn: {s:?}"
        );
        // A multi-atom fragment that ends inconsistent rolls back whole.
        let resp = c.handle_line("FACT P(w); v < w; w < u;");
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 4, "no partial fragment may survive");
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t)"),
            Response::Verdict(true)
        );
    }

    #[test]
    fn unsatisfiable_ne_fragment_is_rejected_and_rolled_back() {
        // A `!=` over an N1-merged pair (or `u != u` outright) leaves
        // the database with zero models — every query would be
        // vacuously CERTAIN forever. The write must be rejected like a
        // `<`-cycle, not acknowledged.
        let mut c = conn();
        c.handle_line("OPEN lab");
        assert!(matches!(
            c.handle_line("FACT pred P(ord); pred Q(ord); P(u); Q(v); u <= v; v <= u;"),
            Response::Ok(_)
        ));
        let resp = c.handle_line("ASSERT u != v;");
        assert!(
            matches!(
                &resp,
                Response::Error(WireError {
                    kind: ErrorKind::Inconsistent,
                    ..
                })
            ),
            "{resp:?}"
        );
        let resp = c.handle_line("ASSERT u != u;");
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        // The database still has models: an unsupported query must stay
        // NOT-CERTAIN, not turn vacuously certain.
        assert_eq!(
            c.handle_line("ENTAIL exists s t. P(s) & s < t & Q(t)"),
            Response::Verdict(false)
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 4, "rejected != atoms must not be stored");
        // A satisfiable != over distinct vertices still lands.
        assert!(matches!(
            c.handle_line("FACT P(w); w < u;"),
            Response::Ok(_)
        ));
        assert!(matches!(c.handle_line("ASSERT w != v;"), Response::Ok(_)));
    }

    #[test]
    fn failed_fact_leaves_no_vocabulary_residue() {
        // A fragment that declares a (wrong) signature and then fails to
        // parse must not pin that signature: the corrected retry has to
        // succeed (regression test for write-path vocabulary pollution).
        let mut c = conn();
        c.handle_line("OPEN lab");
        let resp = c.handle_line("FACT pred P(ord, ord); P(u) Q(v);");
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        assert!(
            matches!(c.handle_line("FACT pred P(ord); P(u);"), Response::Ok(_)),
            "retry with the corrected declaration must not conflict"
        );
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t)"),
            Response::Verdict(true)
        );
    }

    #[test]
    fn parse_error_spans_are_line_relative() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        let resp = c.handle_line("FACT P(u) @");
        let Response::Error(e) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(e.kind, ErrorKind::Parse);
        // `@` sits at byte 10 of the request line.
        assert_eq!(e.span, Some(indord_core::error::Span::point(10)));
    }

    #[test]
    fn countermodel_and_batch_and_stats() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); pred Q(ord); P(u); Q(v);");
        c.handle_line("PREPARE pq: exists s t. P(s) & s < t & Q(t)");
        c.handle_line("PREPARE any: exists s. P(s)");
        // Not entailed (unordered db): a countermodel word comes back.
        let resp = c.handle_line("COUNTERMODEL pq");
        assert!(matches!(resp, Response::Countermodel(_)), "{resp:?}");
        // Entailed target answers CERTAIN.
        assert_eq!(c.handle_line("COUNTERMODEL any"), Response::Verdict(true));
        let resp = c.handle_line("BATCH pq any");
        assert_eq!(
            resp,
            Response::Verdicts(vec![("pq".into(), false), ("any".into(), true)])
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.queries, 4);
        assert_eq!(s.prepared_hits, 4);
        assert_eq!(s.prepared, 2);
        assert!(s.writes >= 2);
        // An acyclic edge over known constants patches in place.
        c.handle_line("ASSERT u < v;");
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert!(s.in_place_patches >= 1, "{s:?}");
        assert_eq!(s.scaffold_rebuilds, 0, "{s:?}");
        assert_eq!(c.handle_line("ENTAIL pq"), Response::Verdict(true));
    }

    #[test]
    fn inline_entail_supports_constants_prepare_rejects_them() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); P(u); P(v); u < v;");
        // `u` is a database constant: inline works, PREPARE refuses.
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t) & u < t"),
            Response::Verdict(true)
        );
        assert_eq!(
            c.handle_line("ENTAIL exists t. P(t) & t < u"),
            Response::Verdict(false)
        );
        // COUNTERMODEL on a constant-carrying inline query renders the
        // witness under the request-local vocabulary (the guard
        // predicates of constant elimination do not exist in the shared
        // one — regression test for an out-of-bounds panic that killed
        // the serving worker).
        match c.handle_line("COUNTERMODEL exists t. P(t) & t < u") {
            Response::Countermodel(body) => assert!(!body.trim().is_empty()),
            other => panic!("expected a countermodel, got {other:?}"),
        }
        assert_eq!(
            c.handle_line("COUNTERMODEL exists t. P(t) & u < t"),
            Response::Verdict(true)
        );
        let resp = c.handle_line("PREPARE bad: exists t. P(t) & u < t");
        assert!(
            matches!(
                &resp,
                Response::Error(WireError {
                    kind: ErrorKind::Proto,
                    ..
                })
            ),
            "{resp:?}"
        );
        // The inline constant path must not have mutated the shared db.
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 3);
    }

    #[test]
    fn rwlock_ablation_mode_serves_the_same_protocol() {
        let mut c = conn_with(ConcurrencyMode::RwLock);
        c.handle_line("OPEN lab");
        assert!(matches!(
            c.handle_line("FACT pred P(ord); P(u); P(v); u < v;"),
            Response::Ok(_)
        ));
        assert!(matches!(
            c.handle_line("PREPARE any: exists s. P(s)"),
            Response::Ok(_)
        ));
        assert_eq!(c.handle_line("ENTAIL any"), Response::Verdict(true));
        assert_eq!(
            c.handle_line("BATCH any"),
            Response::Verdicts(vec![("any".into(), true)])
        );
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        assert_eq!(s.atoms, 3);
        // The MVCC counters are all idle under the lock.
        assert_eq!(s.group_commits, 0, "{s:?}");
        assert_eq!(s.snapshots_published, 0, "{s:?}");
        assert_eq!(s.commit_queue_depth, 0, "{s:?}");
        assert_eq!(s.snapshot_age_ns, 0, "{s:?}");
        let db = c.registry.get("lab").unwrap();
        assert!(db.read_snapshot().is_none(), "no snapshots under the lock");
    }

    #[test]
    fn held_snapshot_never_blocks_writers_and_stays_immutable() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); P(u); P(v); u < v;");
        let db = c.registry.get("lab").unwrap();
        // Pin the current snapshot — the deterministic stand-in for a
        // long COUNTERMODEL enumeration holding its read state.
        let pinned = db.read_snapshot().expect("mvcc mode");
        let atoms_before = pinned.session().len();
        let seq_before = pinned.seq();
        // Writes land while the snapshot is held: there is no reader
        // lock for them to wait on.
        assert!(matches!(c.handle_line("ASSERT u <= v;"), Response::Ok(_)));
        assert!(matches!(
            c.handle_line("FACT P(w); w < u;"),
            Response::Ok(_)
        ));
        let fresh = db.read_snapshot().unwrap();
        assert!(fresh.seq() > seq_before, "commits advanced the sequence");
        assert_eq!(
            pinned.session().len(),
            atoms_before,
            "a pinned snapshot is immutable"
        );
        assert!(fresh.session().len() > atoms_before);
        // The pinned snapshot still evaluates, against its own world.
        let expr = parse_query_expr_in(pinned.vocabulary(), "exists t. P(t)").unwrap();
        let q = expr.to_dnf(pinned.vocabulary()).unwrap();
        let eng = Engine::new(pinned.vocabulary());
        let pq = eng.prepare(&q).unwrap();
        assert!(eng.entails_prepared(pinned.session(), &pq).unwrap().holds());
    }

    #[test]
    fn queued_writes_coalesce_into_one_group_commit() {
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); P(u); P(v); u < v;");
        let db = c.registry.get("lab").unwrap();
        // Occupy the mutator with a stall; writes submitted meanwhile
        // queue up behind it and must drain as one group.
        let stall = {
            let db = Arc::clone(&db);
            thread::spawn(move || db.submit(WriteOp::Stall(Duration::from_millis(150))))
        };
        thread::sleep(Duration::from_millis(30)); // let the stall dequeue
        let writers: Vec<_> = ["u <= v;", "u != v;", "P(w); w < u;"]
            .into_iter()
            .map(|f| {
                let db = Arc::clone(&db);
                thread::spawn(move || db.submit(WriteOp::Fragment(f.to_string())))
            })
            .collect();
        for w in writers {
            let resp = w.join().unwrap();
            assert!(matches!(resp, Ok(Response::Ok(_))), "{resp:?}");
        }
        assert!(matches!(stall.join().unwrap(), Ok(Response::Ok(_))));
        let Response::Stats(s) = c.handle_line("STATS") else {
            panic!("expected stats");
        };
        // Seed FACT + stall + the coalesced burst.
        assert!(s.max_group >= 2, "burst must coalesce: {s:?}");
        assert!(s.group_commits >= 2, "{s:?}");
        assert!(s.group_fragments >= 5, "{s:?}");
        // Classification: the two known-vertex order writes are
        // patchable, the seed FACT and the fresh-constant fragment are
        // structural.
        assert_eq!(s.patchable_writes, 2, "{s:?}");
        assert_eq!(s.structural_writes, 2, "{s:?}");
        assert_eq!(s.commit_queue_depth, 0, "queue drains to empty: {s:?}");
        assert!(s.queue_depth_p99 >= 1, "{s:?}");
        assert!(s.snapshots_published >= 2, "{s:?}");
    }

    #[test]
    fn writes_are_visible_to_later_requests_on_any_connection() {
        // Read-your-own-writes: the OK reply is sent only after the
        // publish, so a later request — here from a *different*
        // connection — always sees the write.
        let mut c = conn();
        c.handle_line("OPEN lab");
        c.handle_line("FACT pred P(ord); P(u);");
        let mut c2 = Conn::new(Arc::clone(&c.registry));
        c2.handle_line("USE lab");
        for i in 0..20 {
            assert!(matches!(
                c.handle_line(&format!("FACT P(x{i});")),
                Response::Ok(_)
            ));
            let Response::Stats(s) = c2.handle_line("STATS") else {
                panic!("expected stats");
            };
            assert_eq!(s.atoms, 2 + i, "write {i} must be visible after its OK");
        }
    }
}
