//! The semantic half of durability: how serving-layer state becomes
//! bytes and comes back.
//!
//! `indord-storage` knows framing, checksums, fsync, and fault
//! injection over *opaque* payloads; this module decides what the
//! payloads say. Both formats reuse text round-trips that are already
//! proptest-pinned elsewhere in the workspace:
//!
//! - **WAL payloads** are protocol request lines, verbatim: the text of
//!   the `FACT`/`ASSERT` fragment or `PREPARE` compilation exactly as
//!   the mutator received it (`FACT P(u); u < v;`). Replay is
//!   [`Request::parse`] plus the same apply path the live mutator uses
//!   — a record that failed to apply before the crash deterministically
//!   re-fails during replay, so logging *before* applying is safe.
//! - **Snapshot payloads** are a small text header — the full
//!   vocabulary in interning order (`PRED`/`ORD`/`OBJ` lines, so symbol
//!   indices and declaration-only predicates survive) and the prepared
//!   registry's source text — followed by `Database::display`, whose
//!   parse∘display identity the core crate pins by property test.
//!
//! [`recover_state`] composes the two: load the newest valid snapshot,
//! replay the WAL records past it (truncating a torn tail with a typed
//! warning), and hand back a *warm* session — scaffold built, prepared
//! queries compiled and pre-run — so a restarted server answers its
//! first query exactly like one that never went down.

use crate::protocol::Request;
use crate::runtime::{apply_fragment_atomic, compile_prepared};
use indord_core::database::Database;
use indord_core::parse::parse_database;
use indord_core::session::Session;
use indord_core::sym::{ObjSym, OrdSym, PredSym, Sort, Vocabulary};
use indord_entail::{Engine, PreparedQuery};
use indord_storage::{DbDir, FsyncPolicy};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;

/// Snapshot payload header (version-stamped).
const SNAPSHOT_HEADER: &str = "INDORD-SNAPSHOT v1";

/// Registry-level durability settings: where databases live on disk and
/// how eagerly their WAL is synced.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Data directory; each database gets a subdirectory of its name.
    pub root: PathBuf,
    /// When acknowledged writes reach stable storage (see
    /// [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Take a snapshot (and compact the WAL) every this many appended
    /// records.
    pub snapshot_every: u64,
}

impl StorageConfig {
    /// A config with the default policy (`group`) and snapshot cadence.
    pub fn new(root: impl Into<PathBuf>) -> StorageConfig {
        StorageConfig {
            root: root.into(),
            fsync: FsyncPolicy::Group,
            snapshot_every: 256,
        }
    }
}

/// Serializes the master state into a snapshot payload.
///
/// The vocabulary is emitted exhaustively in interning order — not just
/// the symbols `Database::display` mentions — so that (a) declaration-
/// only predicates survive and (b) re-interning on load reproduces the
/// exact symbol indices the prepared queries and WAL tail were built
/// against.
pub(crate) fn encode_snapshot(
    voc: &Vocabulary,
    db: &Database,
    prepared_src: &HashMap<String, String>,
) -> String {
    let mut out = String::from(SNAPSHOT_HEADER);
    out.push('\n');
    for i in 0..voc.pred_count() {
        let p = PredSym::from_index(i);
        out.push_str("PRED ");
        out.push_str(voc.pred_name(p));
        for s in &voc.signature(p).arg_sorts {
            out.push(' ');
            out.push_str(match s {
                Sort::Order => "ord",
                Sort::Object => "obj",
            });
        }
        out.push('\n');
    }
    for i in 0..voc.ord_count() {
        out.push_str("ORD ");
        out.push_str(voc.ord_name(OrdSym::from_index(i)));
        out.push('\n');
    }
    for i in 0..voc.obj_count() {
        out.push_str("OBJ ");
        out.push_str(voc.obj_name(ObjSym::from_index(i)));
        out.push('\n');
    }
    let mut names: Vec<&String> = prepared_src.keys().collect();
    names.sort();
    for name in names {
        out.push_str("PREPARE ");
        out.push_str(name);
        out.push_str(": ");
        out.push_str(&prepared_src[name]);
        out.push('\n');
    }
    out.push_str("DB\n");
    out.push_str(&db.display(voc).to_string());
    out
}

/// A decoded snapshot: vocabulary, database, and the prepared queries'
/// `(name, source)` pairs.
pub(crate) type DecodedSnapshot = (Vocabulary, Database, Vec<(String, String)>);

/// Inverse of [`encode_snapshot`]: vocabulary, database, and the
/// prepared queries' source text. Errors are strings — a snapshot that
/// passed its checksum but fails here is a bug or version skew, not
/// routine corruption.
pub(crate) fn decode_snapshot(payload: &[u8]) -> Result<DecodedSnapshot, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("snapshot is not UTF-8: {e}"))?;
    let mut voc = Vocabulary::new();
    let mut prepared = Vec::new();
    let mut lines = text.lines();
    if lines.next() != Some(SNAPSHOT_HEADER) {
        return Err("snapshot header mismatch".to_string());
    }
    let mut consumed = SNAPSHOT_HEADER.len() + 1;
    for line in lines {
        consumed += line.len() + 1;
        if line == "DB" {
            let body = text.get(consumed..).unwrap_or("");
            let db = parse_database(&mut voc, body)
                .map_err(|e| format!("snapshot database text: {e}"))?;
            return Ok((voc, db, prepared));
        }
        if let Some(rest) = line.strip_prefix("PRED ") {
            let mut toks = rest.split_whitespace();
            let name = toks.next().ok_or("PRED line without a name")?;
            let sorts: Vec<Sort> = toks
                .map(|t| match t {
                    "ord" => Ok(Sort::Order),
                    "obj" => Ok(Sort::Object),
                    other => Err(format!("unknown sort token `{other}`")),
                })
                .collect::<Result<_, _>>()?;
            voc.pred(name, &sorts)
                .map_err(|e| format!("snapshot PRED {name}: {e}"))?;
        } else if let Some(name) = line.strip_prefix("ORD ") {
            voc.ord(name.trim());
        } else if let Some(name) = line.strip_prefix("OBJ ") {
            voc.obj(name.trim());
        } else if line.starts_with("PREPARE ") {
            match Request::parse(line) {
                Ok(Request::Prepare { name, query }) => prepared.push((name, query)),
                _ => return Err(format!("bad snapshot PREPARE line: {line}")),
            }
        } else {
            return Err(format!("unknown snapshot line: {line}"));
        }
    }
    Err("snapshot has no DB section".to_string())
}

/// Everything a durable database needs to resume serving: rebuilt warm
/// state plus the bookkeeping to keep appending where the log left off.
pub(crate) struct RecoveredState {
    pub voc: Vocabulary,
    pub session: Session,
    pub prepared: HashMap<String, PreparedQuery>,
    pub prepared_src: HashMap<String, String>,
    /// Id the reopened WAL continues from.
    pub next_id: u64,
    /// Records replayed past the snapshot (the starting point of the
    /// snapshot cadence counter).
    pub since_snapshot: u64,
    /// WAL records whose replay re-applied state (`FACT` fragments and
    /// `PREPARE` compilations that succeeded — failed records re-fail
    /// deterministically and count as skipped).
    pub replayed_fragments: u64,
    /// Bytes truncated off a torn WAL tail.
    pub truncated_bytes: u64,
}

/// Rebuilds one database from its directory: newest valid snapshot,
/// WAL replay, torn-tail truncation, then scaffold + prepared warmup.
pub(crate) fn recover_state(dir: &DbDir) -> io::Result<RecoveredState> {
    let rec = dir.recover()?;
    if let Some(torn) = rec.torn {
        eprintln!(
            "indord-storage: {}: torn wal tail at byte {} ({}); truncated {} bytes",
            dir.path().display(),
            torn.offset,
            torn.reason,
            rec.truncated_bytes
        );
    }
    let mut prepared: HashMap<String, PreparedQuery> = HashMap::new();
    let mut prepared_src: HashMap<String, String> = HashMap::new();
    let (mut voc, db) = match &rec.snapshot {
        None => (Vocabulary::new(), Database::new()),
        Some(snap) => {
            if snap.skipped_corrupt > 0 {
                eprintln!(
                    "indord-storage: {}: skipped {} corrupt snapshot file(s); \
                     recovering from snapshot {} plus the wal",
                    dir.path().display(),
                    snap.skipped_corrupt,
                    snap.id
                );
            }
            let (voc, db, prepared_list) = decode_snapshot(&snap.payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            for (name, query) in prepared_list {
                let pq = compile_prepared(&voc, &query).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("snapshot prepared `{name}`: {}", e.message),
                    )
                })?;
                prepared.insert(name.clone(), pq);
                prepared_src.insert(name, query);
            }
            (voc, db)
        }
    };
    let mut session = Session::new(db);
    let mut replayed = 0u64;
    for (id, payload) in &rec.records {
        let line = String::from_utf8_lossy(payload);
        match Request::parse(&line) {
            Ok(Request::Fact(fragment)) => {
                if apply_fragment_atomic(&mut voc, &mut session, &fragment).is_ok() {
                    replayed += 1;
                }
            }
            Ok(Request::Prepare { name, query }) => {
                if let Ok(pq) = compile_prepared(&voc, &query) {
                    prepared.insert(name.clone(), pq);
                    prepared_src.insert(name, query.to_string());
                    replayed += 1;
                }
            }
            _ => {
                // Version skew or foreign bytes that happened to
                // checksum: skip, loudly — never guess at semantics.
                eprintln!(
                    "indord-storage: {}: skipping unintelligible wal record {id}",
                    dir.path().display()
                );
            }
        }
    }
    // Come back *warm*: build the scaffold and pre-run the prepared
    // registry now, at boot, so the first post-restart query patches
    // and hits instead of rebuilding (the restart-warmth e2e leg pins
    // this: zero scaffold rebuilds on the first ENTAIL).
    let _ = session.normal();
    let _ = session.disjunctive_scaffold(&voc);
    let frozen = session.freeze();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let eng = Engine::new(&voc);
        for pq in prepared.values() {
            let _ = eng.entails_prepared(&frozen, pq);
        }
    }));
    Ok(RecoveredState {
        voc,
        session,
        prepared,
        prepared_src,
        next_id: rec.next_id,
        since_snapshot: rec.records.len() as u64,
        replayed_fragments: replayed,
        truncated_bytes: rec.truncated_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small state through the live apply path and round-trips
    /// it through the snapshot text format.
    #[test]
    fn snapshot_round_trip_preserves_vocabulary_and_state() {
        let mut voc = Vocabulary::new();
        let mut session = Session::new(Database::new());
        apply_fragment_atomic(
            &mut voc,
            &mut session,
            "pred Heat(ord); pred Cool(ord); Heat(t1); Cool(t2); t1 < t2;",
        )
        .unwrap();
        // A declaration-only predicate and a declaration-only constant:
        // both must survive the round trip even though no atom uses
        // them.
        apply_fragment_atomic(&mut voc, &mut session, "pred Spare(ord, obj);").unwrap();
        let mut prepared_src = HashMap::new();
        prepared_src.insert(
            "cooled".to_string(),
            "exists a b. Heat(a) & a < b & Cool(b)".to_string(),
        );

        let payload = encode_snapshot(&voc, session.database(), &prepared_src);
        let (voc2, db2, prepared2) = decode_snapshot(payload.as_bytes()).unwrap();

        assert_eq!(voc2.pred_count(), voc.pred_count());
        assert_eq!(voc2.ord_count(), voc.ord_count());
        assert_eq!(voc2.obj_count(), voc.obj_count());
        // Same interning order: every name maps to the same index.
        for i in 0..voc.pred_count() {
            let p = PredSym::from_index(i);
            assert_eq!(voc2.pred_name(p), voc.pred_name(p));
            assert_eq!(voc2.signature(p).arg_sorts, voc.signature(p).arg_sorts);
        }
        for i in 0..voc.ord_count() {
            let u = OrdSym::from_index(i);
            assert_eq!(voc2.ord_name(u), voc.ord_name(u));
        }
        assert_eq!(
            db2.proper_atoms().len(),
            session.database().proper_atoms().len()
        );
        assert_eq!(
            db2.order_atoms().len(),
            session.database().order_atoms().len()
        );
        assert_eq!(
            prepared2,
            vec![(
                "cooled".to_string(),
                "exists a b. Heat(a) & a < b & Cool(b)".to_string()
            )]
        );
        // And the re-encoded snapshot is byte-identical (a fixpoint).
        assert_eq!(
            encode_snapshot(&voc2, &db2, &prepared_src),
            payload,
            "snapshot encoding must be a fixpoint under decode∘encode"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_snapshot(b"not a snapshot").is_err());
        assert!(decode_snapshot("INDORD-SNAPSHOT v1\nWHAT x\nDB\n".as_bytes()).is_err());
        assert!(decode_snapshot("INDORD-SNAPSHOT v1\nPRED P zap\nDB\n".as_bytes()).is_err());
        assert!(decode_snapshot("INDORD-SNAPSHOT v1\nORD u\n".as_bytes()).is_err());
        // Valid empty state.
        let (voc, db, prepared) = decode_snapshot("INDORD-SNAPSHOT v1\nDB\n".as_bytes()).unwrap();
        assert_eq!(voc.pred_count(), 0);
        assert!(db.proper_atoms().is_empty());
        assert!(prepared.is_empty());
    }
}
