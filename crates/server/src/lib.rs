//! # indord-server — the serving layer of the indord workspace
//!
//! Everything between a socket and the entailment engines:
//!
//! * [`protocol`] — the line-oriented wire protocol: typed
//!   [`Request`](protocol::Request)s and
//!   [`Response`](protocol::Response)s that render to text and parse
//!   back to equal values, errors (with byte spans) included;
//! * [`runtime`] — the [`Registry`](runtime::Registry) of named
//!   databases (vocabulary + warm
//!   [`Session`](indord_core::session::Session) + prepared-query
//!   registry, served MVCC-style from immutable snapshots with a
//!   group-commit mutator per database), per-database stats with
//!   latency rings, and the thread-pooled TCP accept loop
//!   ([`runtime::serve`]);
//! * [`durable`] — the semantic half of durability: snapshot payload
//!   encoding and crash recovery (snapshot load + WAL replay + warmup)
//!   on top of the `indord-storage` crate's checksummed log;
//! * [`metrics`] — lock-free log2 latency histograms per verb and per
//!   engine route, rendered in Prometheus text format by `METRICS`;
//! * [`trace`] — per-request phase timers behind `TRACE` and the
//!   `--slow-ms` slow-query log;
//! * [`repl`] — the `indord` client loop, speaking the protocol over
//!   TCP or in-process.
//!
//! Two binaries ship with the crate: `indord-serve` (the server) and
//! `indord` (the REPL client, with `--embedded` for serverless use).
//! Both take `--data-dir <path>` to serve durably: acknowledged writes
//! are WAL-logged (fsync policy `always`/`group`/`os`), snapshots are
//! taken on a cadence, and a restart replays the log and comes back
//! *warm* — scaffold built, prepared queries compiled and pre-run.
//!
//! ```
//! use indord_server::protocol::Response;
//! use indord_server::runtime::{Conn, Registry};
//! use std::sync::Arc;
//!
//! let mut conn = Conn::new(Arc::new(Registry::new()));
//! conn.handle_line("OPEN lab");
//! conn.handle_line("FACT pred Heat(ord); pred Cool(ord); Heat(t1); Cool(t2); t1 < t2;");
//! conn.handle_line("PREPARE cooled: exists a b. Heat(a) & a < b & Cool(b)");
//! assert_eq!(conn.handle_line("ENTAIL cooled"), Response::Verdict(true));
//! ```

// `deny`, not `forbid`: the phase-timing clock in `trace::clock` reads
// the x86-64 timestamp counter through the `_rdtsc` intrinsic, the one
// `unsafe` block in the crate (narrowly `allow`ed there; the intrinsic
// touches no memory). Everything else stays denied.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod metrics;
pub mod protocol;
pub mod repl;
pub mod runtime;
pub mod trace;
