//! Theorem 3.2: a fixed conjunctive `[<]`-query with binary predicates has
//! co-NP-hard data complexity.
//!
//! The reduction maps a monotone 3-SAT instance `S ∪ S'` to a database
//! `D(S) ∪ D(S') ∪ F` such that `D |= Φ` iff the instance is
//! **unsatisfiable**, where `Φ` is a *fixed* query.
//!
//! The heart is the ternary-disjunction gadget of Fig. 3:
//!
//! ```text
//! D(a,b,c; u,v,w,t) = { P(u,a), P(u,b), u<v, P(v,a), P(v,c), v<w,
//!                       P(w,b), P(w,c), P(t,a), P(t,b), P(t,c) }
//! φ(x) = ∃t₁t₂t₃ [P(t₁,x) ∧ t₁<t₂ ∧ P(t₂,x) ∧ t₂<t₃ ∧ P(t₃,x)]
//! ```
//!
//! The unconstrained `t` can slide along the chain `u<v<w`: placing `t = w`
//! makes only `φ(a)` true, `t = v` only `φ(b)`, `t = u` only `φ(c)` (D2),
//! while *some* `φ` holds in every model (D1). Clause letters connect via
//! `Q(lᵢⱼ, ·)` facts and complementation via `Comp(l, l̄)`; the fixed query
//!
//! ```text
//! Φ = ∃x y [ψ(x) ∧ Comp(x,y) ∧ ψ(y)],   ψ(x) = ∃z [Q(x,z) ∧ φ(z)]
//! ```
//!
//! fires exactly when every valuation is refuted.
//!
//! [`Layout::WidthTwo`] chains the gadgets' order constants into two linear
//! sequences (Fig. 4), bounding the database width by two without breaking
//! the argument — the `t`-chain stays free relative to each gadget's
//! `u<v<w` segment.

use indord_core::database::Database;
use indord_core::prelude::*;
use indord_core::query::{QTerm, QueryExpr};
use indord_core::sym::Sort;
use indord_solvers::mono3sat::Mono3Sat;

/// How the gadgets' order constants are arranged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Each clause gadget is an independent component (width grows with
    /// the number of clauses).
    Independent,
    /// All gadgets share two chains (Fig. 4): the database has width 2.
    WidthTwo,
}

/// The output of the reduction.
#[derive(Debug, Clone)]
pub struct Thm32Instance {
    /// The database `D(S) ∪ D(S') ∪ F`.
    pub db: Database,
    /// The fixed query `Φ` (does not depend on the 3-SAT instance).
    pub query: DnfQuery,
}

/// Interns the two binary predicates and `Comp`.
fn predicates(voc: &mut Vocabulary) -> (PredSym, PredSym, PredSym) {
    let p = voc
        .pred("P32", &[Sort::Order, Sort::Object])
        .expect("signature");
    let q = voc
        .pred("Q32", &[Sort::Object, Sort::Object])
        .expect("signature");
    let comp = voc
        .pred("Comp32", &[Sort::Object, Sort::Object])
        .expect("signature");
    (p, q, comp)
}

/// The fixed query `Φ` of Theorem 3.2 (independent of the instance).
pub fn fixed_query(voc: &mut Vocabulary) -> DnfQuery {
    let (p, q, comp) = predicates(voc);
    // φ(z): z occurs at three strictly increasing points.
    let phi = |z: &str, k: usize| -> QueryExpr {
        let t1 = format!("t{k}_1");
        let t2 = format!("t{k}_2");
        let t3 = format!("t{k}_3");
        QueryExpr::Exists(
            vec![t1.clone(), t2.clone(), t3.clone()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: p,
                    args: vec![QTerm::Var(t1.clone()), QTerm::Var(z.into())],
                },
                QueryExpr::lt(&t1, &t2),
                QueryExpr::Proper {
                    pred: p,
                    args: vec![QTerm::Var(t2.clone()), QTerm::Var(z.into())],
                },
                QueryExpr::lt(&t2, &t3),
                QueryExpr::Proper {
                    pred: p,
                    args: vec![QTerm::Var(t3), QTerm::Var(z.into())],
                },
            ])),
        )
    };
    // ψ(x) = ∃z Q(x, z) ∧ φ(z)
    let psi = |x: &str, k: usize| -> QueryExpr {
        let z = format!("z{k}");
        QueryExpr::Exists(
            vec![z.clone()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: q,
                    args: vec![QTerm::Var(x.into()), QTerm::Var(z.clone())],
                },
                phi(&z, k),
            ])),
        )
    };
    let expr = QueryExpr::Exists(
        vec!["x".into(), "y".into()],
        Box::new(QueryExpr::And(vec![
            psi("x", 0),
            QueryExpr::Proper {
                pred: comp,
                args: vec![QTerm::Var("x".into()), QTerm::Var("y".into())],
            },
            psi("y", 1),
        ])),
    );
    expr.to_dnf(voc).expect("fixed query is well formed")
}

/// Builds the Theorem 3.2 instance for a monotone 3-SAT input.
/// `D |= Φ` iff `inst` is unsatisfiable.
pub fn build(voc: &mut Vocabulary, inst: &Mono3Sat, layout: Layout) -> Thm32Instance {
    let (p, q, comp) = predicates(voc);
    let mut db = Database::new();

    // Complement facts F: Comp(l, l̄) for every letter.
    let letters: Vec<ObjSym> = (0..inst.n_vars)
        .map(|i| voc.obj(&format!("$lit{i}")))
        .collect();
    let neg_letters: Vec<ObjSym> = (0..inst.n_vars)
        .map(|i| voc.obj(&format!("$nlit{i}")))
        .collect();
    for i in 0..inst.n_vars {
        db.push_proper(indord_core::atom::ProperAtom {
            pred: comp,
            args: vec![Term::Obj(letters[i]), Term::Obj(neg_letters[i])],
        });
    }

    // One gadget per clause; positive clauses link to letters, negative
    // ones to complemented letters.
    let mut gadget_chain: Vec<OrdSym> = Vec::new(); // u,v,w chain (WidthTwo)
    let mut t_chain: Vec<OrdSym> = Vec::new();
    let mut add_gadget = |db: &mut Database,
                          voc: &mut Vocabulary,
                          idx: usize,
                          clause: &[u32; 3],
                          lits: &[ObjSym]| {
        let a = voc.obj(&format!("$a{idx}"));
        let b = voc.obj(&format!("$b{idx}"));
        let c = voc.obj(&format!("$c{idx}"));
        let u = voc.ord(&format!("$u{idx}"));
        let v = voc.ord(&format!("$v{idx}"));
        let w = voc.ord(&format!("$w{idx}"));
        let t = voc.ord(&format!("$t{idx}"));
        let pf = |db: &mut Database, pt: OrdSym, obj: ObjSym| {
            db.push_proper(indord_core::atom::ProperAtom {
                pred: p,
                args: vec![Term::Ord(pt), Term::Obj(obj)],
            });
        };
        pf(db, u, a);
        pf(db, u, b);
        pf(db, v, a);
        pf(db, v, c);
        pf(db, w, b);
        pf(db, w, c);
        pf(db, t, a);
        pf(db, t, b);
        pf(db, t, c);
        db.assert_lt(u, v);
        db.assert_lt(v, w);
        for (obj, &lv) in [a, b, c].iter().zip(clause.iter()) {
            db.push_proper(indord_core::atom::ProperAtom {
                pred: q,
                args: vec![Term::Obj(lits[lv as usize]), Term::Obj(*obj)],
            });
        }
        gadget_chain.extend([u, v, w]);
        t_chain.push(t);
    };

    let mut idx = 0;
    for clause in &inst.pos_clauses {
        add_gadget(&mut db, voc, idx, clause, &letters);
        idx += 1;
    }
    for clause in &inst.neg_clauses {
        add_gadget(&mut db, voc, idx, clause, &neg_letters);
        idx += 1;
    }

    if layout == Layout::WidthTwo {
        // Fig. 4: chain all u<v<w segments into one sequence, all t's into
        // another. Per-gadget freedom of t against its own segment is
        // preserved.
        db.assert_chain(indord_core::atom::OrderRel::Lt, &gadget_chain);
        db.assert_chain(indord_core::atom::OrderRel::Lt, &t_chain);
    }

    Thm32Instance {
        db,
        query: fixed_query(voc),
    }
}

/// The `[<=]`-variant noted after Theorem 3.2: the ternary disjunction is
/// generated by the permutation database
/// `D(u,v,w) = { P3(x,y,z) : (x,y,z) a permutation of (u,v,w) }` with query
/// `φ(x) = ∃y z [P3(x,y,z) ∧ x<=y<=z]` — "x is a minimum of the three".
/// Returns `(db, query)` with `D |= Φ` iff `inst` is unsatisfiable.
pub fn build_le_variant(voc: &mut Vocabulary, inst: &Mono3Sat) -> Thm32Instance {
    let p3 = voc
        .pred("P32le", &[Sort::Order, Sort::Order, Sort::Order])
        .expect("signature");
    let q = voc
        .pred("Q32le", &[Sort::Object, Sort::Order])
        .expect("signature");
    let comp = voc
        .pred("Comp32", &[Sort::Object, Sort::Object])
        .expect("signature");
    let mut db = Database::new();

    let letters: Vec<ObjSym> = (0..inst.n_vars)
        .map(|i| voc.obj(&format!("$lit{i}")))
        .collect();
    let neg_letters: Vec<ObjSym> = (0..inst.n_vars)
        .map(|i| voc.obj(&format!("$nlit{i}")))
        .collect();
    for i in 0..inst.n_vars {
        db.push_proper(indord_core::atom::ProperAtom {
            pred: comp,
            args: vec![Term::Obj(letters[i]), Term::Obj(neg_letters[i])],
        });
    }

    let mut idx = 0;
    let add = |db: &mut Database,
               voc: &mut Vocabulary,
               idx: usize,
               clause: &[u32; 3],
               lits: &[ObjSym]| {
        let u = voc.ord(&format!("$leu{idx}"));
        let v = voc.ord(&format!("$lev{idx}"));
        let w = voc.ord(&format!("$lew{idx}"));
        let perms: [[OrdSym; 3]; 6] = [
            [u, v, w],
            [u, w, v],
            [v, u, w],
            [v, w, u],
            [w, u, v],
            [w, v, u],
        ];
        for perm in perms {
            db.push_proper(indord_core::atom::ProperAtom {
                pred: p3,
                args: perm.iter().map(|&x| Term::Ord(x)).collect(),
            });
        }
        for (pt, &lv) in [u, v, w].iter().zip(clause.iter()) {
            db.push_proper(indord_core::atom::ProperAtom {
                pred: q,
                args: vec![Term::Obj(lits[lv as usize]), Term::Ord(*pt)],
            });
        }
    };
    for clause in &inst.pos_clauses {
        add(&mut db, voc, idx, clause, &letters);
        idx += 1;
    }
    for clause in &inst.neg_clauses {
        add(&mut db, voc, idx, clause, &neg_letters);
        idx += 1;
    }

    // φ(x): x is a minimum of its triple (strictly first in some ordering
    // of the other two): ∃ y z. P3(x,y,z) ∧ x<=y<=z — satisfied iff x can
    // be least. ψ(o) = ∃x Q(o, x) ∧ φ(x).
    let phi = |x: &str, k: usize| -> QueryExpr {
        let y = format!("ly{k}");
        let z = format!("lz{k}");
        QueryExpr::Exists(
            vec![y.clone(), z.clone()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: p3,
                    args: vec![
                        QTerm::Var(x.into()),
                        QTerm::Var(y.clone()),
                        QTerm::Var(z.clone()),
                    ],
                },
                QueryExpr::le(x, &y),
                QueryExpr::le(&y, &z),
            ])),
        )
    };
    let psi = |o: &str, k: usize| -> QueryExpr {
        let x = format!("lx{k}");
        QueryExpr::Exists(
            vec![x.clone()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: q,
                    args: vec![QTerm::Var(o.into()), QTerm::Var(x.clone())],
                },
                phi(&x, k),
            ])),
        )
    };
    let expr = QueryExpr::Exists(
        vec!["o1".into(), "o2".into()],
        Box::new(QueryExpr::And(vec![
            psi("o1", 0),
            QueryExpr::Proper {
                pred: comp,
                args: vec![QTerm::Var("o1".into()), QTerm::Var("o2".into())],
            },
            psi("o2", 1),
        ])),
    );
    let query = expr.to_dnf(voc).expect("well formed");
    Thm32Instance { db, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_core::parse::parse_query_with_db;
    use indord_entail::{Engine, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decide(inst: &Mono3Sat, layout: Layout) -> bool {
        let mut voc = Vocabulary::new();
        let out = build(&mut voc, inst, layout);
        let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
        eng.entails(&out.db, &out.query).unwrap().holds()
    }

    /// D1/D2 for the Fig. 3 gadget, checked by model enumeration.
    #[test]
    fn gadget_d1_d2() {
        let mut voc = Vocabulary::new();
        let inst = Mono3Sat {
            n_vars: 3,
            pos_clauses: vec![[0, 1, 2]],
            neg_clauses: vec![],
        };
        let out = build(&mut voc, &inst, Layout::Independent);
        let phi = |name: &str| {
            format!(
                "exists t1 t2 t3. P32(t1, {name}) & t1 < t2 & P32(t2, {name}) & t2 < t3 & P32(t3, {name})"
            )
        };
        // D1: φ(a) ∨ φ(b) ∨ φ(c) is entailed.
        let disj = format!("({}) | ({}) | ({})", phi("$a0"), phi("$b0"), phi("$c0"));
        let (gdb, q) = parse_query_with_db(&mut voc, &out.db, &disj).unwrap();
        let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
        assert!(eng.entails(&gdb, &q).unwrap().holds(), "D1 fails");
        // D2: no single φ is entailed (t = w / v / u models refute).
        for name in ["$a0", "$b0", "$c0"] {
            let (gdb, q) = parse_query_with_db(&mut voc, &out.db, &phi(name)).unwrap();
            let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
            assert!(
                !eng.entails(&gdb, &q).unwrap().holds(),
                "D2 fails for {name}"
            );
        }
    }

    #[test]
    fn satisfiable_instances_are_not_entailed() {
        // Distinct-variable monotone instances over few variables are
        // satisfiable; the reduction must answer "not entailed".
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..6 {
            let inst = Mono3Sat::random(&mut rng, 3, 1, 1);
            assert!(inst.satisfiable());
            assert!(!decide(&inst, Layout::WidthTwo), "{inst:?}");
        }
    }

    #[test]
    fn unsatisfiable_instance_is_entailed() {
        // Repeated literals give the smallest unsatisfiable monotone
        // instance: (x0) ∧ (¬x0), encoded as the degenerate 3-clauses
        // [0,0,0] positive and negative.
        let inst = Mono3Sat {
            n_vars: 1,
            pos_clauses: vec![[0, 0, 0]],
            neg_clauses: vec![[0, 0, 0]],
        };
        assert!(!inst.satisfiable());
        assert!(
            decide(&inst, Layout::WidthTwo),
            "unsat instance must be entailed"
        );
    }

    #[test]
    fn independent_layout_agrees_on_small_instance() {
        let inst = Mono3Sat {
            n_vars: 1,
            pos_clauses: vec![[0, 0, 0]],
            neg_clauses: vec![[0, 0, 0]],
        };
        assert!(decide(&inst, Layout::Independent));
        let sat = Mono3Sat {
            n_vars: 3,
            pos_clauses: vec![[0, 1, 2]],
            neg_clauses: vec![],
        };
        assert!(!decide(&sat, Layout::Independent));
    }

    #[test]
    fn width_two_layout_has_width_two() {
        let mut voc = Vocabulary::new();
        let inst = Mono3Sat {
            n_vars: 4,
            pos_clauses: vec![[0, 1, 2], [1, 2, 3]],
            neg_clauses: vec![[0, 2, 3]],
        };
        let out = build(&mut voc, &inst, Layout::WidthTwo);
        let nd = out.db.normalize().unwrap();
        assert_eq!(nd.width(), 2);
        let out_ind = build(&mut Vocabulary::new(), &inst, Layout::Independent);
        let nd_ind = out_ind.db.normalize().unwrap();
        assert!(nd_ind.width() > 2);
    }

    #[test]
    fn le_variant_both_directions() {
        // Satisfiable single clause: not entailed.
        let sat = Mono3Sat {
            n_vars: 3,
            pos_clauses: vec![[0, 1, 2]],
            neg_clauses: vec![],
        };
        let mut voc = Vocabulary::new();
        let out = build_le_variant(&mut voc, &sat);
        let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
        assert!(!eng.entails(&out.db, &out.query).unwrap().holds());
        // Unsatisfiable unit conflict: entailed.
        let unsat = Mono3Sat {
            n_vars: 1,
            pos_clauses: vec![[0, 0, 0]],
            neg_clauses: vec![[0, 0, 0]],
        };
        let mut voc = Vocabulary::new();
        let out = build_le_variant(&mut voc, &unsat);
        let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
        assert!(eng.entails(&out.db, &out.query).unwrap().holds());
    }

    #[test]
    fn le_variant_uses_only_le() {
        let inst = Mono3Sat {
            n_vars: 3,
            pos_clauses: vec![[0, 1, 2]],
            neg_clauses: vec![],
        };
        let mut voc = Vocabulary::new();
        let out = build_le_variant(&mut voc, &inst);
        assert!(out.db.order_atoms().is_empty(), "gadgets are unconstrained");
        for cq in &out.query.disjuncts {
            assert!(cq
                .order
                .iter()
                .all(|(_, rel, _)| *rel == indord_core::atom::OrderRel::Le));
        }
    }

    #[test]
    fn fixed_query_is_fixed() {
        let mut voc = Vocabulary::new();
        let q1 = fixed_query(&mut voc);
        let q2 = fixed_query(&mut voc);
        assert_eq!(q1, q2);
        assert_eq!(q1.disjuncts.len(), 1);
        let cq = &q1.disjuncts[0];
        assert_eq!(cq.n_ord_vars, 6);
        assert_eq!(cq.n_obj_vars, 4);
    }
}
