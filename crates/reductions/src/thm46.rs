//! Theorem 4.6: combined complexity of `[<]`-databases and width-two
//! conjunctive monadic `[<]`-queries over two fixed predicates is
//! co-NP-hard.
//!
//! A DNF formula α over `m` variables maps to:
//!
//! * the query `Φ(α)` (Fig. 7): two rows of `m` vertices, row one labelled
//!   `T`, row two `F`, with `<`-edges from both vertices of column `j` to
//!   both of column `j+1` — its source-to-sink paths are exactly the words
//!   `{T,F}^m`, i.e. all valuations;
//! * the database `D(α)`: one component per disjunct δ, keeping from
//!   column `j` only the `T` vertex if `pⱼ ∈ δ`, only `F` if `¬pⱼ ∈ δ`,
//!   and both otherwise (Fig. 8) — its paths are the valuations
//!   *satisfying* δ.
//!
//! All paths have length `m`, so `D(α) |= Φ(α)` iff every valuation
//! satisfies some disjunct — iff α is a tautology.
//!
//! [`build_le_variant`] is the `[<=]` version sketched after the theorem:
//! edges become `<=` and two further predicates `P`/`Q` label odd/even
//! columns so that equal-length flexi-words entail each other only when
//! equal.

use indord_core::atom::OrderRel;
use indord_core::bitset::PredSet;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::ordgraph::OrderGraph;
use indord_core::sym::Vocabulary;
use indord_solvers::cnf::var_of;
use indord_solvers::dnf::Dnf;

/// Output of the reduction.
#[derive(Debug, Clone)]
pub struct Thm46Instance {
    /// The database `D(α)`.
    pub db: MonadicDatabase,
    /// The width-two conjunctive query `Φ(α)`.
    pub query: MonadicQuery,
}

/// Which column vertices a disjunct keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Keep {
    Both,
    TrueOnly,
    FalseOnly,
    /// The disjunct is contradictory (contains `p` and `¬p`).
    None,
}

fn keeps(term: &[i32], m: usize) -> Vec<Keep> {
    let mut ks = vec![Keep::Both; m];
    let mut dead = false;
    for &l in term {
        let v = var_of(l);
        let want = if l > 0 {
            Keep::TrueOnly
        } else {
            Keep::FalseOnly
        };
        ks[v] = match (ks[v], want) {
            (Keep::Both, w) => w,
            (k, w) if k == w => k,
            _ => {
                dead = true;
                Keep::None
            }
        };
    }
    if dead {
        vec![Keep::None; m]
    } else {
        ks
    }
}

/// Builds the `[<]` instance. `db |= query` iff `dnf` is a tautology.
pub fn build(voc: &mut Vocabulary, dnf: &Dnf) -> Thm46Instance {
    let t = voc.monadic_pred("T46");
    let f = voc.monadic_pred("F46");
    let m = dnf.n_vars;
    assert!(m >= 1, "at least one variable");

    // Query Φ(α): vertex (j, row) = 2j + row; row 0 = T, row 1 = F.
    let mut qedges = Vec::new();
    for j in 0..m.saturating_sub(1) {
        for r in 0..2 {
            for r2 in 0..2 {
                qedges.push((2 * j + r, 2 * (j + 1) + r2, OrderRel::Lt));
            }
        }
    }
    let qgraph = OrderGraph::from_dag_edges(2 * m, &qedges).expect("acyclic");
    let qlabels: Vec<PredSet> = (0..2 * m)
        .map(|v| PredSet::singleton(if v % 2 == 0 { t } else { f }))
        .collect();
    let query = MonadicQuery::new(qgraph, qlabels);

    // Database D(α): disjoint components per (non-contradictory) disjunct.
    let mut labels: Vec<PredSet> = Vec::new();
    let mut edges: Vec<(usize, usize, OrderRel)> = Vec::new();
    for term in &dnf.terms {
        let ks = keeps(term, m);
        if ks.contains(&Keep::None) {
            continue; // contradictory disjunct satisfies no valuation
        }
        let base = labels.len();
        // vertex layout per column: list of (local index, is_true_row)
        let mut col_vertices: Vec<Vec<usize>> = Vec::with_capacity(m);
        for k in &ks {
            let mut vs = Vec::new();
            match k {
                Keep::Both => {
                    labels.push(PredSet::singleton(t));
                    vs.push(labels.len() - 1);
                    labels.push(PredSet::singleton(f));
                    vs.push(labels.len() - 1);
                }
                Keep::TrueOnly => {
                    labels.push(PredSet::singleton(t));
                    vs.push(labels.len() - 1);
                }
                Keep::FalseOnly => {
                    labels.push(PredSet::singleton(f));
                    vs.push(labels.len() - 1);
                }
                Keep::None => unreachable!(),
            }
            col_vertices.push(vs);
        }
        for j in 0..m.saturating_sub(1) {
            for &a in &col_vertices[j] {
                for &b in &col_vertices[j + 1] {
                    edges.push((a, b, OrderRel::Lt));
                }
            }
        }
        let _ = base;
    }
    let graph = OrderGraph::from_dag_edges(labels.len(), &edges).expect("acyclic");
    let db = MonadicDatabase::new(graph, labels);
    Thm46Instance { db, query }
}

/// The `[<=]`-variant: same combinatorics with `<=` edges; odd columns are
/// additionally labelled `P46`, even columns `Q46`, so that flexi-words of
/// the same shape entail each other only when equal.
pub fn build_le_variant(voc: &mut Vocabulary, dnf: &Dnf) -> Thm46Instance {
    let base = build(voc, dnf);
    let p = voc.monadic_pred("P46");
    let q = voc.monadic_pred("Q46");
    let m = dnf.n_vars;

    let relabel = |graph: &OrderGraph, labels: &[PredSet], col_of: &dyn Fn(usize) -> usize| {
        let edges: Vec<(usize, usize, OrderRel)> = graph
            .edges()
            .map(|(a, b, _)| (a, b, OrderRel::Le))
            .collect();
        let g = OrderGraph::from_dag_edges(graph.len(), &edges).expect("acyclic");
        let labels: Vec<PredSet> = labels
            .iter()
            .enumerate()
            .map(|(v, l)| {
                let mut l = l.clone();
                l.insert(if col_of(v).is_multiple_of(2) { p } else { q });
                l
            })
            .collect();
        (g, labels)
    };

    // Query columns: vertex v is in column v / 2.
    let (qg, ql) = relabel(&base.query.graph, &base.query.labels, &|v| v / 2);
    // Database columns: recover from topological structure — the column of
    // a vertex is its distance from its component's source column. With
    // all paths of length m, the longest path *to* a vertex gives it.
    let depth = longest_path_depth(&base.db.graph);
    let (dg, dl) = relabel(&base.db.graph, &base.db.labels, &|v| depth[v]);
    let _ = m;
    Thm46Instance {
        db: MonadicDatabase::new(dg, dl),
        query: MonadicQuery::new(qg, ql),
    }
}

fn longest_path_depth(g: &OrderGraph) -> Vec<usize> {
    let order = g.topo_order();
    let mut depth = vec![0usize; g.len()];
    for &v in &order {
        for &(w, _) in g.successors(v) {
            depth[w as usize] = depth[w as usize].max(depth[v] + 1);
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_entail::{bounded, naive, paths};
    use indord_solvers::cnf::{lit, neg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query_shape_matches_fig7() {
        let mut voc = Vocabulary::new();
        let dnf = Dnf {
            n_vars: 3,
            terms: vec![vec![lit(0)]],
        };
        let out = build(&mut voc, &dnf);
        assert_eq!(out.query.len(), 6);
        assert_eq!(out.query.width(), 2);
        assert_eq!(out.query.path_count(), 8); // {T,F}^3
    }

    #[test]
    fn component_shape_matches_fig8() {
        // The paper's example disjunct over 4 variables: p1 ∧ ¬p3 ∧ p4
        // (1-indexed) keeps T | both | F | T.
        let mut voc = Vocabulary::new();
        let dnf = Dnf {
            n_vars: 4,
            terms: vec![vec![lit(0), neg(2), lit(3)]],
        };
        let out = build(&mut voc, &dnf);
        assert_eq!(out.db.len(), 1 + 2 + 1 + 1);
        assert_eq!(out.db.path_count(), 2);
    }

    #[test]
    fn tautology_iff_entailed_handpicked() {
        let mut voc = Vocabulary::new();
        // x ∨ ¬x over one variable: tautology.
        let taut = Dnf {
            n_vars: 1,
            terms: vec![vec![lit(0)], vec![neg(0)]],
        };
        let out = build(&mut voc, &taut);
        assert!(paths::entails(&out.db, &out.query));
        assert!(bounded::entails(&out.db, &out.query));
        // x alone: not a tautology.
        let nt = Dnf {
            n_vars: 1,
            terms: vec![vec![lit(0)]],
        };
        let out = build(&mut voc, &nt);
        assert!(!paths::entails(&out.db, &out.query));
        assert!(!bounded::entails(&out.db, &out.query));
    }

    #[test]
    fn randomized_agreement_with_dnf_solver() {
        let mut rng = StdRng::seed_from_u64(46);
        let mut seen = [0usize; 2];
        for _ in 0..60 {
            let dnf = Dnf::random(&mut rng, 3, 4, true);
            let want = dnf.is_tautology();
            let mut voc = Vocabulary::new();
            let out = build(&mut voc, &dnf);
            let got_paths = paths::entails(&out.db, &out.query);
            let got_bounded = bounded::entails(&out.db, &out.query);
            assert_eq!(got_paths, want, "{dnf:?}");
            assert_eq!(got_bounded, want, "{dnf:?}");
            seen[usize::from(want)] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0);
    }

    #[test]
    fn naive_agrees_on_tiny_instances() {
        let mut rng = StdRng::seed_from_u64(146);
        for _ in 0..10 {
            let dnf = Dnf::random(&mut rng, 2, 2, true);
            let mut voc = Vocabulary::new();
            let out = build(&mut voc, &dnf);
            let fast = paths::entails(&out.db, &out.query);
            let slow = naive::monadic_check(&out.db, std::slice::from_ref(&out.query))
                .unwrap()
                .holds();
            assert_eq!(fast, slow, "{dnf:?}");
        }
    }

    #[test]
    fn contradictory_disjuncts_are_ignored() {
        let mut voc = Vocabulary::new();
        let dnf = Dnf {
            n_vars: 2,
            terms: vec![vec![lit(0), neg(0)], vec![lit(1)], vec![neg(1)]],
        };
        let out = build(&mut voc, &dnf);
        // contradictory first term contributes no component
        assert_eq!(out.db.path_count(), 2 + 2);
        assert!(paths::entails(&out.db, &out.query)); // p2 ∨ ¬p2 is a tautology
    }

    #[test]
    fn le_variant_agrees_with_dnf_solver() {
        let mut rng = StdRng::seed_from_u64(246);
        let mut seen = [0usize; 2];
        for _ in 0..40 {
            let dnf = Dnf::random(&mut rng, 3, 3, true);
            let want = dnf.is_tautology();
            let mut voc = Vocabulary::new();
            let out = build_le_variant(&mut voc, &dnf);
            assert!(out.db.graph.edges().all(|(_, _, r)| r == OrderRel::Le));
            let got = bounded::entails(&out.db, &out.query);
            assert_eq!(got, want, "{dnf:?}");
            seen[usize::from(want)] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0);
    }
}
