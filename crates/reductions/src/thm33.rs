//! Theorem 3.3: combined complexity of `[<]`-databases and conjunctive
//! `[<]`-queries is Π₂ᵖ-hard.
//!
//! A Π₂ sentence `∀p₁…pₙ ∃q₁…qₘ α` maps to a database/query pair with
//! `D |= Φ` iff the sentence is true. For each universal variable `pᵢ` the
//! binary-disjunction gadget
//!
//! ```text
//! Dᵢ = { Pᵢ(uᵢ,t), Pᵢ(vᵢ,f), uᵢ<vᵢ, Pᵢ(wᵢ,t), Pᵢ(wᵢ,f) }
//! φᵢ(x) = ∃s₁s₂ [Pᵢ(s₁,x) ∧ Pᵢ(s₂,x) ∧ s₁<s₂]
//! ```
//!
//! forces `φᵢ(t) ∨ φᵢ(f)` in every model while allowing models where
//! exactly one holds (`wᵢ = uᵢ` → only `f`; `wᵢ = vᵢ` → only `t`): minimal
//! models range over the universal assignments. The query
//!
//! ```text
//! Φ = ∃z₁…zₙ [φ₁(z₁) ∧ … ∧ φₙ(zₙ) ∧ ∃x e⃗ (Istrue(x) ∧ Val(α, z⃗e⃗, x))]
//! ```
//!
//! then expresses the inner `∃q⃗ α` against the truth-table database `E`
//! (see [`crate::boolmodel`]).
//!
//! [`build_fixed_preds`] applies the chain encoding noted after the
//! theorem, replacing the indexed `Pᵢ` by a fixed set `{P, R, Q}`:
//! `Pᵢ(u, o)` becomes `P(u, o, c₀), R(c₀,c₁), …, R(c_{i-1},c_i), Q(c_i)`.

use crate::boolmodel::{self, BoolSyms, ValBuilder};
use indord_core::atom::{ProperAtom, Term};
use indord_core::database::Database;
use indord_core::prelude::*;
use indord_core::query::{QTerm, QueryExpr};
use indord_core::sym::Sort;
use indord_solvers::qbf::Pi2;

/// Output of the reduction.
#[derive(Debug, Clone)]
pub struct Thm33Instance {
    /// The database `⋃Dᵢ ∪ E`.
    pub db: Database,
    /// The query `Φ`.
    pub query: DnfQuery,
}

/// Builds the Theorem 3.3 instance with indexed predicates `Pᵢ`.
/// `D |= Φ` iff `pi2` is true.
pub fn build(voc: &mut Vocabulary, pi2: &Pi2) -> Thm33Instance {
    let (syms, mut db) = boolmodel::truth_table(voc);
    let n = pi2.n_universal;
    let preds: Vec<PredSym> = (0..n)
        .map(|i| {
            voc.pred(&format!("P33_{i}"), &[Sort::Order, Sort::Object])
                .expect("signature")
        })
        .collect();
    for (i, &p) in preds.iter().enumerate() {
        push_gadget(voc, &mut db, syms, i, |pt, obj, db| {
            db.push_proper(ProperAtom {
                pred: p,
                args: vec![Term::Ord(pt), Term::Obj(obj)],
            });
        });
    }
    let phi = |i: usize, z: &str| -> QueryExpr {
        let s1 = format!("$s{i}_1");
        let s2 = format!("$s{i}_2");
        QueryExpr::Exists(
            vec![s1.clone(), s2.clone()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: preds[i],
                    args: vec![QTerm::Var(s1.clone()), QTerm::Var(z.into())],
                },
                QueryExpr::Proper {
                    pred: preds[i],
                    args: vec![QTerm::Var(s2.clone()), QTerm::Var(z.into())],
                },
                QueryExpr::lt(&s1, &s2),
            ])),
        )
    };
    let query = assemble_query(voc, pi2, syms, &phi);
    Thm33Instance { db, query }
}

/// Builds the variant with a *fixed* predicate set `{P, R, Q}` via the
/// chain encoding. `D |= Φ` iff `pi2` is true.
pub fn build_fixed_preds(voc: &mut Vocabulary, pi2: &Pi2) -> Thm33Instance {
    let (syms, mut db) = boolmodel::truth_table(voc);
    let p = voc
        .pred("P33c", &[Sort::Order, Sort::Object, Sort::Object])
        .expect("signature");
    let r = voc
        .pred("R33c", &[Sort::Object, Sort::Object])
        .expect("signature");
    let q = voc.pred("Q33c", &[Sort::Object]).expect("signature");
    let n = pi2.n_universal;

    for i in 0..n {
        // chain nodes c₀ … cᵢ, one fresh chain per gadget *atom* would be
        // wasteful; one chain per gadget suffices (all its P-facts share
        // the chain head).
        let chain: Vec<ObjSym> = (0..=i).map(|j| voc.obj(&format!("$c{i}_{j}"))).collect();
        for w in chain.windows(2) {
            db.push_proper(ProperAtom {
                pred: r,
                args: vec![Term::Obj(w[0]), Term::Obj(w[1])],
            });
        }
        db.push_proper(ProperAtom {
            pred: q,
            args: vec![Term::Obj(*chain.last().expect("nonempty chain"))],
        });
        let head = chain[0];
        push_gadget(voc, &mut db, syms, i, |pt, obj, db| {
            db.push_proper(ProperAtom {
                pred: p,
                args: vec![Term::Ord(pt), Term::Obj(obj), Term::Obj(head)],
            });
        });
    }

    let phi = move |i: usize, z: &str| -> QueryExpr {
        let s1 = format!("$s{i}_1");
        let s2 = format!("$s{i}_2");
        // chain variables per occurrence
        let mut vars = vec![s1.clone(), s2.clone()];
        let mut atoms = vec![QueryExpr::lt(&s1, &s2)];
        for (occ, s) in [(0usize, &s1), (1, &s2)] {
            let cs: Vec<String> = (0..=i).map(|j| format!("$cc{i}_{occ}_{j}")).collect();
            vars.extend(cs.iter().cloned());
            atoms.push(QueryExpr::Proper {
                pred: p,
                args: vec![
                    QTerm::Var(s.clone()),
                    QTerm::Var(z.into()),
                    QTerm::Var(cs[0].clone()),
                ],
            });
            for w in cs.windows(2) {
                atoms.push(QueryExpr::Proper {
                    pred: r,
                    args: vec![QTerm::Var(w[0].clone()), QTerm::Var(w[1].clone())],
                });
            }
            atoms.push(QueryExpr::Proper {
                pred: q,
                args: vec![QTerm::Var(cs[cs.len() - 1].clone())],
            });
        }
        QueryExpr::Exists(vars, Box::new(QueryExpr::And(atoms)))
    };
    let query = assemble_query(voc, pi2, syms, &phi);
    Thm33Instance { db, query }
}

/// The gadget Dᵢ, with the P-fact emission abstracted so both encodings
/// share it.
fn push_gadget(
    voc: &mut Vocabulary,
    db: &mut Database,
    syms: BoolSyms,
    i: usize,
    mut emit: impl FnMut(OrdSym, ObjSym, &mut Database),
) {
    let u = voc.ord(&format!("$gu{i}"));
    let v = voc.ord(&format!("$gv{i}"));
    let w = voc.ord(&format!("$gw{i}"));
    emit(u, syms.t, db);
    emit(v, syms.f, db);
    emit(w, syms.t, db);
    emit(w, syms.f, db);
    db.assert_lt(u, v);
}

/// Assembles `Φ` from the per-gadget `φᵢ` builder and the `Val` query.
fn assemble_query(
    voc: &Vocabulary,
    pi2: &Pi2,
    syms: BoolSyms,
    phi: &dyn Fn(usize, &str) -> QueryExpr,
) -> DnfQuery {
    let n = pi2.n_universal;
    let zname = |i: u32| {
        if (i as usize) < n {
            format!("$z{i}")
        } else {
            format!("$e{i}")
        }
    };
    let mut builder = ValBuilder::new(syms);
    let root = builder.emit(&pi2.matrix, &zname);
    let val_expr = builder.finish_requiring_true(root);

    let mut parts: Vec<QueryExpr> = (0..n).map(|i| phi(i, &format!("$z{i}"))).collect();
    parts.push(val_expr);
    let mut names: Vec<String> = (0..n).map(|i| format!("$z{i}")).collect();
    names.extend((n..pi2.n_vars()).map(|i| format!("$e{i}")));
    let expr = QueryExpr::Exists(names, Box::new(QueryExpr::And(parts)));
    expr.to_dnf(voc).expect("well-formed Theorem 3.3 query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_entail::{Engine, Strategy};
    use indord_solvers::formula::Formula;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decide(pi2: &Pi2) -> bool {
        let mut voc = Vocabulary::new();
        let out = build(&mut voc, pi2);
        let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
        eng.entails(&out.db, &out.query).unwrap().holds()
    }

    #[test]
    fn forall_exists_equal_is_true() {
        // ∀p ∃q (p ↔ q)
        let iff = Formula::Or(vec![
            Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
            Formula::And(vec![
                Formula::Not(Box::new(Formula::Var(0))),
                Formula::Not(Box::new(Formula::Var(1))),
            ]),
        ]);
        let pi2 = Pi2 {
            n_universal: 1,
            n_existential: 1,
            matrix: iff,
        };
        assert!(pi2.is_true());
        assert!(decide(&pi2));
    }

    #[test]
    fn forall_p_p_is_false() {
        let pi2 = Pi2 {
            n_universal: 1,
            n_existential: 0,
            matrix: Formula::Var(0),
        };
        assert!(!pi2.is_true());
        assert!(!decide(&pi2));
    }

    #[test]
    fn pure_existential_is_sat() {
        let pi2 = Pi2 {
            n_universal: 0,
            n_existential: 2,
            matrix: Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
        };
        assert!(decide(&pi2));
        let unsat = Pi2 {
            n_universal: 0,
            n_existential: 1,
            matrix: Formula::And(vec![
                Formula::Var(0),
                Formula::Not(Box::new(Formula::Var(0))),
            ]),
        };
        assert!(!decide(&unsat));
    }

    #[test]
    fn randomized_agreement_with_qbf_solver() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut seen = [0usize; 2];
        for _ in 0..10 {
            let pi2 = Pi2::random(&mut rng, 2, 2);
            let want = pi2.is_true();
            assert_eq!(decide(&pi2), want, "{pi2:?}");
            seen[usize::from(want)] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0, "need both outcomes: {seen:?}");
    }

    #[test]
    fn fixed_preds_variant_agrees() {
        let mut rng = StdRng::seed_from_u64(66);
        for _ in 0..5 {
            let pi2 = Pi2::random(&mut rng, 2, 1);
            let mut voc = Vocabulary::new();
            let out = build_fixed_preds(&mut voc, &pi2);
            let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
            let got = eng.entails(&out.db, &out.query).unwrap().holds();
            assert_eq!(got, pi2.is_true(), "{pi2:?}");
        }
    }

    #[test]
    fn fixed_preds_use_three_extra_predicates() {
        let mut voc = Vocabulary::new();
        let pi2 = Pi2 {
            n_universal: 2,
            n_existential: 1,
            matrix: Formula::Var(0),
        };
        let _ = build_fixed_preds(&mut voc, &pi2);
        assert!(voc.find_pred("P33c").is_some());
        assert!(voc.find_pred("R33c").is_some());
        assert!(voc.find_pred("Q33c").is_some());
        assert!(voc.find_pred("P33_0").is_none(), "no indexed predicates");
    }
}
