//! The boolean-evaluation substrate shared by Theorems 3.3 and 3.4: the
//! truth-table database `E` and the inductive query `Val(α, z⃗, x)`.
//!
//! `E` contains (paper, proof of Theorem 3.3):
//!
//! ```text
//! Istrue(t)
//! And(t,t,t)  Or(t,t,t)
//! And(t,f,f)  Or(t,f,t)  Not(t,f)
//! And(f,t,f)  Or(f,t,t)  Not(f,t)
//! And(f,f,f)  Or(f,f,f)
//! ```
//!
//! `Val(α, z⃗, x)` asserts that the truth value of α under the assignment
//! `z⃗` is `x`; it is built by structural recursion with fresh existential
//! variables per connective. The paper's base case `Val(pᵢ, z⃗, x) = (x=zᵢ)`
//! is realized by *substitution* (the output term simply **is** `zᵢ`),
//! eliminating equality exactly as the paper describes.

use indord_core::atom::{ProperAtom, Term};
use indord_core::database::Database;
use indord_core::query::{QTerm, QueryExpr};
use indord_core::sym::{ObjSym, PredSym, Sort, Vocabulary};
use indord_solvers::formula::Formula;

/// Interned symbols of the boolean substrate.
#[derive(Debug, Clone, Copy)]
pub struct BoolSyms {
    /// `Istrue` (monadic over objects).
    pub istrue: PredSym,
    /// `And(a, b, result)`.
    pub and: PredSym,
    /// `Or(a, b, result)`.
    pub or: PredSym,
    /// `Not(a, result)`.
    pub not: PredSym,
    /// The truth constant `t`.
    pub t: ObjSym,
    /// The falsity constant `f`.
    pub f: ObjSym,
}

/// Interns the boolean predicates and constants.
pub fn symbols(voc: &mut Vocabulary) -> BoolSyms {
    let o = Sort::Object;
    BoolSyms {
        istrue: voc.pred("Istrue", &[o]).expect("signature"),
        and: voc.pred("BAnd", &[o, o, o]).expect("signature"),
        or: voc.pred("BOr", &[o, o, o]).expect("signature"),
        not: voc.pred("BNot", &[o, o]).expect("signature"),
        t: voc.obj("$true"),
        f: voc.obj("$false"),
    }
}

/// The truth-table database `E`.
pub fn truth_table(voc: &mut Vocabulary) -> (BoolSyms, Database) {
    let s = symbols(voc);
    let (t, f) = (Term::Obj(s.t), Term::Obj(s.f));
    let mut db = Database::new();
    db.push_proper(ProperAtom {
        pred: s.istrue,
        args: vec![t],
    });
    for (a, b) in [(t, t), (t, f), (f, t), (f, f)] {
        let and_v = if a == t && b == t { t } else { f };
        let or_v = if a == t || b == t { t } else { f };
        db.push_proper(ProperAtom {
            pred: s.and,
            args: vec![a, b, and_v],
        });
        db.push_proper(ProperAtom {
            pred: s.or,
            args: vec![a, b, or_v],
        });
    }
    db.push_proper(ProperAtom {
        pred: s.not,
        args: vec![t, f],
    });
    db.push_proper(ProperAtom {
        pred: s.not,
        args: vec![f, t],
    });
    (s, db)
}

/// Builder state for `Val` queries.
pub struct ValBuilder {
    syms: BoolSyms,
    /// Conjuncts accumulated so far.
    pub atoms: Vec<QueryExpr>,
    /// Fresh variables introduced (to be existentially quantified).
    pub fresh: Vec<String>,
    counter: usize,
}

impl ValBuilder {
    /// Creates a builder over the given symbols.
    pub fn new(syms: BoolSyms) -> Self {
        ValBuilder {
            syms,
            atoms: Vec::new(),
            fresh: Vec::new(),
            counter: 0,
        }
    }

    fn fresh_var(&mut self) -> String {
        self.counter += 1;
        let v = format!("$val{}", self.counter);
        self.fresh.push(v.clone());
        v
    }

    /// Emits atoms asserting that the value of `formula` under the variable
    /// assignment named by `var_name(i)` is the returned term. Base-case
    /// variables are passed through by name (the equality elimination of
    /// the paper).
    pub fn emit(&mut self, formula: &Formula, var_name: &dyn Fn(u32) -> String) -> String {
        match formula {
            Formula::Var(i) => var_name(*i),
            Formula::Not(g) => {
                let gv = self.emit(g, var_name);
                let out = self.fresh_var();
                self.atoms.push(QueryExpr::Proper {
                    pred: self.syms.not,
                    args: vec![QTerm::Var(gv), QTerm::Var(out.clone())],
                });
                out
            }
            Formula::And(gs) => self.fold(gs, self.syms.and, var_name),
            Formula::Or(gs) => self.fold(gs, self.syms.or, var_name),
        }
    }

    /// Folds an n-ary connective into binary atoms.
    fn fold(&mut self, gs: &[Formula], pred: PredSym, var_name: &dyn Fn(u32) -> String) -> String {
        assert!(!gs.is_empty(), "normalize empty connectives away first");
        let mut acc = self.emit(&gs[0], var_name);
        for g in &gs[1..] {
            let gv = self.emit(g, var_name);
            let out = self.fresh_var();
            self.atoms.push(QueryExpr::Proper {
                pred,
                args: vec![QTerm::Var(acc), QTerm::Var(gv), QTerm::Var(out.clone())],
            });
            acc = out;
        }
        acc
    }

    /// Finishes: returns `∃ fresh… [atoms ∧ Istrue(root)]`.
    pub fn finish_requiring_true(mut self, root: String) -> QueryExpr {
        self.atoms.push(QueryExpr::Proper {
            pred: self.syms.istrue,
            args: vec![QTerm::Var(root)],
        });
        QueryExpr::Exists(self.fresh, Box::new(QueryExpr::And(self.atoms)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_entail::Engine;

    /// The database E evaluates formulas correctly: for ground assignments
    /// (z_i substituted by the constants) the Val query is entailed iff the
    /// formula evaluates to true.
    #[test]
    fn val_matches_evaluation_on_ground_assignments() {
        use indord_solvers::formula::Formula::*;
        let cases = vec![
            (And(vec![Var(0), Var(1)]), vec![true, true], true),
            (And(vec![Var(0), Var(1)]), vec![true, false], false),
            (Or(vec![Var(0), Var(1)]), vec![false, false], false),
            (Or(vec![Var(0), Var(1)]), vec![false, true], true),
            (Not(Box::new(Var(0))), vec![false], true),
            (
                Or(vec![And(vec![Var(0), Not(Box::new(Var(1)))]), Var(2)]),
                vec![true, false, false],
                true,
            ),
            (
                Or(vec![And(vec![Var(0), Not(Box::new(Var(1)))]), Var(2)]),
                vec![false, true, false],
                false,
            ),
        ];
        for (formula, assignment, expect) in cases {
            let mut voc = Vocabulary::new();
            let (syms, db) = truth_table(&mut voc);
            let mut b = ValBuilder::new(syms);
            // Ground the variables to constants through guard predicates:
            // use QTerm constants directly via substitution names that we
            // bind with Istrue-like guards — simplest is to emit with names
            // and then wrap each name as a constant through elimination.
            let name = |i: u32| format!("$z{i}");
            let root = b.emit(&formula, &name);
            let expr = b.finish_requiring_true(root);
            // Bind $z_i to the right constant with And(z,z,z)-style guards:
            // And(t,t,t) and And(f,f,f) are facts, so And(z,z,z) forces
            // z ∈ {t,f}; to force a *specific* value use Istrue for true
            // and Not(z, $w) & Istrue($w) for false.
            let mut guards = Vec::new();
            for (i, &val) in assignment.iter().enumerate() {
                let z = name(i as u32);
                if val {
                    guards.push(QueryExpr::Proper {
                        pred: syms.istrue,
                        args: vec![QTerm::Var(z)],
                    });
                } else {
                    let w = format!("$w{i}");
                    guards.push(QueryExpr::Exists(
                        vec![w.clone()],
                        Box::new(QueryExpr::And(vec![
                            QueryExpr::Proper {
                                pred: syms.not,
                                args: vec![QTerm::Var(z), QTerm::Var(w.clone())],
                            },
                            QueryExpr::Proper {
                                pred: syms.istrue,
                                args: vec![QTerm::Var(w)],
                            },
                        ])),
                    ));
                }
            }
            guards.push(expr);
            let names: Vec<String> = (0..assignment.len()).map(|i| name(i as u32)).collect();
            let full = QueryExpr::Exists(names, Box::new(QueryExpr::And(guards)));
            let q = full.to_dnf(&voc).unwrap();
            let eng = Engine::new(&voc);
            assert_eq!(
                eng.entails(&db, &q).unwrap().holds(),
                expect,
                "formula {formula:?} under {assignment:?}"
            );
        }
    }
}
