//! # indord-reductions
//!
//! The paper's hardness constructions, as executable reductions:
//!
//! * [`thm32`] — monotone 3-SAT → data complexity of a fixed conjunctive
//!   query with binary predicates (co-NP-hardness, Theorem 3.2), including
//!   the width-two layout of Fig. 4 and the `[<=]`-variant;
//! * [`thm33`] — Π₂-SAT → combined complexity (Π₂ᵖ-hardness, Theorem 3.3),
//!   with the `Val(α, z⃗, x)` query builder and the fixed-predicate chain
//!   encoding noted after the theorem;
//! * [`thm34`] — SAT → expression complexity (NP-hardness, Theorem 3.4);
//! * [`thm46`] — DNF tautology → combined complexity of monadic conjunctive
//!   queries (co-NP-hardness, Theorem 4.6; Figs. 7–8), plus the
//!   `[<=]`-variant with alternating `P`/`Q` labels;
//! * [`thm71`] — graph 3-colourability → both parts of Theorem 7.1
//!   (inequality extensions).
//!
//! Every construction is paired with tests that decide the produced
//! `(database, query)` instance with the `indord-entail` engines and
//! compare against the `indord-solvers` reference decider — reductions are
//! *verified*, not assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolmodel;
pub mod thm32;
pub mod thm33;
pub mod thm34;
pub mod thm46;
pub mod thm71;
