//! Theorem 7.1: inequality makes monadic queries hard.
//!
//! 1. **Expression complexity** ([`build_expression`]): the fixed width-one
//!    database `D = {u₁<u₂<u₃, P(u₁), P(u₂), P(u₃)}` entails the
//!    `[!=]`-query
//!    `∃v₁…vₙ [⋀ P(vᵢ) ∧ ⋀_{(i,j)∈E} vᵢ≠vⱼ]`
//!    iff the graph is **3-colourable** — the three points are the three
//!    colours, so NP-hardness.
//! 2. **Data complexity** ([`build_data`]): the fixed sequential query
//!    `∃t₁t₂t₃t₄ [P(t₁)∧…∧P(t₄) ∧ t₁<t₂<t₃<t₄]` is entailed by the
//!    `[!=]`-database `{vᵢ≠vⱼ : (i,j)∈E} ∪ {P(vᵢ)}` iff the graph is
//!    **not** 3-colourable — a countermodel is precisely a placement of
//!    the vertices on at most three points, so co-NP-hardness.

use indord_core::database::Database;
use indord_core::prelude::*;
use indord_core::query::QueryExpr;
use indord_solvers::coloring::Graph;

/// Part 1: fixed database + graph-dependent `[!=]`-query.
/// `db |= query` iff `g` is 3-colourable.
pub fn build_expression(voc: &mut Vocabulary, g: &Graph) -> (Database, DnfQuery) {
    let p = voc.monadic_pred("P71");
    let mut db = Database::new();
    let us: Vec<OrdSym> = (1..=3).map(|i| voc.ord(&format!("$u71_{i}"))).collect();
    db.assert_chain(indord_core::atom::OrderRel::Lt, &us);
    for &u in &us {
        db.push_proper(indord_core::atom::ProperAtom {
            pred: p,
            args: vec![Term::Ord(u)],
        });
    }
    let names: Vec<String> = (0..g.n).map(|i| format!("v{i}")).collect();
    let mut parts: Vec<QueryExpr> = names.iter().map(|nm| QueryExpr::atom1(p, nm)).collect();
    for &(a, b) in &g.edges {
        parts.push(QueryExpr::ne(&names[a as usize], &names[b as usize]));
    }
    let expr = QueryExpr::Exists(names, Box::new(QueryExpr::And(parts)));
    let query = expr.to_dnf(voc).expect("well-formed Theorem 7.1(1) query");
    (db, query)
}

/// The fixed sequential query of part 2: four strictly increasing
/// `P`-points.
pub fn fixed_sequential_query(voc: &mut Vocabulary) -> DnfQuery {
    let p = voc.monadic_pred("P71");
    let names: Vec<String> = (1..=4).map(|i| format!("t{i}")).collect();
    let mut parts: Vec<QueryExpr> = names.iter().map(|nm| QueryExpr::atom1(p, nm)).collect();
    for w in names.windows(2) {
        parts.push(QueryExpr::lt(&w[0], &w[1]));
    }
    QueryExpr::Exists(names, Box::new(QueryExpr::And(parts)))
        .to_dnf(voc)
        .expect("well-formed Theorem 7.1(2) query")
}

/// Part 2: graph-dependent `[!=]`-database + fixed sequential query.
/// `db |= query` iff `g` is **not** 3-colourable.
pub fn build_data(voc: &mut Vocabulary, g: &Graph) -> (Database, DnfQuery) {
    let p = voc.monadic_pred("P71");
    let mut db = Database::new();
    let vs: Vec<OrdSym> = (0..g.n).map(|i| voc.ord(&format!("$v71_{i}"))).collect();
    for &v in &vs {
        db.push_proper(indord_core::atom::ProperAtom {
            pred: p,
            args: vec![Term::Ord(v)],
        });
    }
    for &(a, b) in &g.edges {
        db.assert_ne(vs[a as usize], vs[b as usize]);
    }
    (db, fixed_sequential_query(voc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_entail::Engine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decide_expression(g: &Graph) -> bool {
        let mut voc = Vocabulary::new();
        let (db, q) = build_expression(&mut voc, g);
        let eng = Engine::new(&voc);
        eng.entails(&db, &q).unwrap().holds()
    }

    fn decide_data(g: &Graph) -> bool {
        let mut voc = Vocabulary::new();
        let (db, q) = build_data(&mut voc, g);
        let eng = Engine::new(&voc);
        eng.entails(&db, &q).unwrap().holds()
    }

    #[test]
    fn expression_variant_on_classics() {
        assert!(decide_expression(&Graph::complete(3)));
        assert!(!decide_expression(&Graph::complete(4)));
        assert!(decide_expression(&Graph::cycle(5)));
    }

    #[test]
    fn data_variant_on_classics() {
        assert!(!decide_data(&Graph::complete(3)));
        assert!(decide_data(&Graph::complete(4)));
        assert!(!decide_data(&Graph::cycle(5)));
    }

    #[test]
    fn expression_randomized_agreement() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut seen = [0usize; 2];
        for _ in 0..20 {
            let g = Graph::random(&mut rng, 6, 0.6);
            let want = g.three_colorable();
            assert_eq!(decide_expression(&g), want, "{g:?}");
            seen[usize::from(want)] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0, "{seen:?}");
    }

    #[test]
    fn data_randomized_agreement() {
        let mut rng = StdRng::seed_from_u64(72);
        let mut seen = [0usize; 2];
        for _ in 0..12 {
            let g = Graph::random(&mut rng, 5, 0.7);
            let want = !g.three_colorable();
            assert_eq!(decide_data(&g), want, "{g:?}");
            seen[usize::from(want)] += 1;
        }
        // K4-free density may keep everything colourable; force one known
        // non-colourable case.
        assert!(decide_data(&Graph::complete(4)));
        let _ = seen;
    }

    #[test]
    fn expression_database_is_fixed_and_width_one() {
        let mut voc = Vocabulary::new();
        let (db, _) = build_expression(&mut voc, &Graph::cycle(4));
        let nd = db.normalize().unwrap();
        assert_eq!(nd.width(), 1);
        assert_eq!(nd.graph.len(), 3);
    }
}
