//! Theorem 3.4: there is a (fixed) database with NP-hard expression
//! complexity for conjunctive queries.
//!
//! The database is the truth-table database `E` of Theorem 3.3; the
//! formula α maps to the query `∃x z⃗ [Istrue(x) ∧ Val(α, z⃗, x)]`, which
//! `E` entails iff α is satisfiable. (As the paper notes, this is really a
//! fact about relational databases: `E` contains no order constants at
//! all, so the single minimal model *is* `E`.)

use crate::boolmodel::{self, ValBuilder};
use indord_core::database::Database;
use indord_core::prelude::*;
use indord_core::query::QueryExpr;
use indord_solvers::formula::Formula;

/// The fixed database `E`.
pub fn fixed_database(voc: &mut Vocabulary) -> Database {
    boolmodel::truth_table(voc).1
}

/// The query for a formula: entailed by `E` iff `formula` is satisfiable.
pub fn satisfiability_query(voc: &mut Vocabulary, formula: &Formula) -> DnfQuery {
    let syms = boolmodel::symbols(voc);
    let n = formula.num_vars();
    let mut b = ValBuilder::new(syms);
    let name = |i: u32| format!("$z{i}");
    let root = b.emit(formula, &name);
    let val = b.finish_requiring_true(root);
    let names: Vec<String> = (0..n).map(|i| name(i as u32)).collect();
    let expr = QueryExpr::Exists(names, Box::new(val));
    expr.to_dnf(voc).expect("well-formed Theorem 3.4 query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use indord_entail::Engine;
    use indord_solvers::cnf::Cnf;
    use indord_solvers::dpll;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decide(formula: &Formula) -> bool {
        let mut voc = Vocabulary::new();
        let db = fixed_database(&mut voc);
        let q = satisfiability_query(&mut voc, formula);
        let eng = Engine::new(&voc);
        eng.entails(&db, &q).unwrap().holds()
    }

    #[test]
    fn contradiction_not_entailed() {
        let f = Formula::And(vec![
            Formula::Var(0),
            Formula::Not(Box::new(Formula::Var(0))),
        ]);
        assert!(!decide(&f));
    }

    #[test]
    fn simple_satisfiable() {
        let f = Formula::Or(vec![Formula::Var(0), Formula::Var(1)]);
        assert!(decide(&f));
    }

    #[test]
    fn randomized_agreement_with_dpll() {
        let mut rng = StdRng::seed_from_u64(34);
        let mut seen = [0usize; 2];
        for _ in 0..40 {
            let f = Formula::random(&mut rng, 4, 3);
            let want = dpll::satisfiable(&Cnf::tseitin(&f, 4));
            assert_eq!(decide(&f), want, "{f:?}");
            seen[usize::from(want)] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0, "need both outcomes: {seen:?}");
    }

    #[test]
    fn database_is_order_free() {
        let mut voc = Vocabulary::new();
        let db = fixed_database(&mut voc);
        assert_eq!(db.order_constant_count(), 0);
        assert!(db.order_atoms().is_empty());
    }
}
