//! §2 semantics: cost of deciding `|=_Fin`, `|=_Z`, `|=_Q` — the Z and Q
//! reductions add only polynomial overhead (Props. 2.2/2.3, Cor. 2.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indord_bench::workloads;
use indord_core::parse::{parse_database, parse_query};
use indord_core::sym::Vocabulary;
use indord_semantics::{entails, OrderType};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

fn bench_semantics(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics");
    for len in [16usize, 64, 256] {
        // width-2 monadic database text
        let mut text = String::new();
        let mut r = workloads::rng(70 + len as u64);
        use rand::Rng;
        for chain in ["a", "b"] {
            for i in 0..len {
                let p = ["P", "Q", "R"][r.gen_range(0..3usize)];
                text.push_str(&format!("{p}({chain}{i});"));
                if i > 0 {
                    let rel = if r.gen_bool(0.2) { "<=" } else { "<" };
                    text.push_str(&format!("{chain}{} {rel} {chain}{i};", i - 1));
                }
            }
        }
        for (ot, name) in [
            (OrderType::Fin, "fin"),
            (OrderType::Z, "z"),
            (OrderType::Q, "q"),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, 2 * len),
                &(text.clone(), ot),
                |b, (text, ot)| {
                    b.iter(|| {
                        let mut voc = Vocabulary::new();
                        let db = parse_database(&mut voc, text).unwrap();
                        let q = parse_query(&mut voc, "exists s w t. P(s) & s < w & w < t & Q(t)")
                            .unwrap();
                        entails(&mut voc, &db, &q, *ot).unwrap().holds()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_semantics
}
criterion_main!(benches);
