//! Table 1, n-ary row — every cell regenerated.
//!
//! * data complexity (co-NP-complete): the fixed Theorem 3.2 query against
//!   growing clause databases, decided by naive countermodel search —
//!   super-polynomial growth is the expected *shape*;
//! * expression complexity (NP-complete): Theorem 3.4 satisfiability
//!   queries of growing formula size against the fixed database `E`;
//! * combined complexity (Π₂ᵖ-complete): Theorem 3.3 instances of growing
//!   quantifier blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indord_bench::workloads;
use indord_core::sym::Vocabulary;
use indord_entail::{Engine, Strategy};
use indord_reductions::{thm32, thm33, thm34};
use indord_solvers::formula::Formula;
use indord_solvers::mono3sat::Mono3Sat;
use indord_solvers::qbf::Pi2;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

/// Unsatisfiable monotone instances of growing size, via repeated-literal
/// unit conflicts: (x0)(¬x0)…(x_{m-1})(¬x_{m-1}).
fn unsat_instance(m: usize) -> Mono3Sat {
    Mono3Sat {
        n_vars: m,
        pos_clauses: (0..m as u32).map(|i| [i, i, i]).collect(),
        neg_clauses: (0..m as u32).map(|i| [i, i, i]).collect(),
    }
}

fn bench_data_nary(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1/data-nary");
    for m in [1usize, 2] {
        let inst = unsat_instance(m);
        let mut voc = Vocabulary::new();
        let out = thm32::build(&mut voc, &inst, thm32::Layout::WidthTwo);
        g.bench_with_input(BenchmarkId::new("naive-unsat", m), &m, |b, _| {
            b.iter(|| {
                let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
                assert!(eng.entails(&out.db, &out.query).unwrap().holds());
            })
        });
    }
    // Satisfiable instances exit at the first countermodel (certificate).
    for m in [1usize, 2, 3] {
        let mut r = workloads::rng(100 + m as u64);
        let inst = Mono3Sat::random(&mut r, 3, m, 0);
        let mut voc = Vocabulary::new();
        let out = thm32::build(&mut voc, &inst, thm32::Layout::WidthTwo);
        g.bench_with_input(BenchmarkId::new("naive-sat", m), &m, |b, _| {
            b.iter(|| {
                let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
                assert!(!eng.entails(&out.db, &out.query).unwrap().holds());
            })
        });
    }
    g.finish();
}

fn bench_expr_nary(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1/expr-nary");
    for depth in [2usize, 3, 4] {
        let mut r = workloads::rng(200 + depth as u64);
        let f = Formula::random(&mut r, 5, depth);
        let mut voc = Vocabulary::new();
        let db = thm34::fixed_database(&mut voc);
        let q = thm34::satisfiability_query(&mut voc, &f);
        g.bench_with_input(BenchmarkId::new("sat-query", f.size()), &depth, |b, _| {
            b.iter(|| {
                let eng = Engine::new(&voc);
                let _ = eng.entails(&db, &q).unwrap().holds();
            })
        });
    }
    g.finish();
}

fn bench_combined_nary(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1/combined-nary");
    for (n, m) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let mut r = workloads::rng(300 + (n * 10 + m) as u64);
        let pi2 = Pi2::random(&mut r, n, m);
        let mut voc = Vocabulary::new();
        let out = thm33::build(&mut voc, &pi2);
        g.bench_with_input(
            BenchmarkId::new("pi2", format!("{n}x{m}")),
            &(n, m),
            |b, _| {
                b.iter(|| {
                    let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
                    let _ = eng.entails(&out.db, &out.query).unwrap().holds();
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_data_nary, bench_expr_nary, bench_combined_nary
}
criterion_main!(benches);
