//! §7 inequality extensions: the tractable case (query-side `!=` at fixed
//! query size) and the hard cases of Theorem 7.1 (growing graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indord_bench::workloads;
use indord_core::monadic::MonadicQuery;
use indord_core::ordgraph::OrderGraph;
use indord_core::sym::Vocabulary;
use indord_entail::{disjunctive, ineq, Engine};
use indord_reductions::thm71;
use indord_solvers::coloring::Graph;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

/// Fixed [!=]-query on growing [<,<=]-databases: PTIME data complexity.
fn bench_query_ne_data(c: &mut Criterion) {
    let mut g = c.benchmark_group("ineq/query-ne-data");
    let mut r = workloads::rng(80);
    // query: two same-labelled events at distinct points
    let qg = OrderGraph::from_dag_edges(2, &[]).unwrap();
    let mut q = MonadicQuery::new(
        qg,
        vec![
            workloads::random_label(&mut r, 3),
            workloads::random_label(&mut r, 3),
        ],
    );
    q.ne.push((0, 1));
    for len in [32usize, 128, 512] {
        let db = workloads::observers_db_le(&mut r, 2, len, 3, 0.2);
        g.bench_with_input(BenchmarkId::new("fixed-query", db.len()), &db, |b, db| {
            b.iter(|| {
                ineq::entails_query_ne(db, std::slice::from_ref(&q), 64, disjunctive::STATE_CAP)
                    .unwrap()
                    .holds()
            })
        });
    }
    g.finish();
}

/// Theorem 7.1(1): 3-colourability as [!=]-query evaluation — grows
/// exponentially with the graph (expression complexity NP-hard).
fn bench_thm71_expression(c: &mut Criterion) {
    let mut g = c.benchmark_group("ineq/thm71-expression");
    for n in [4usize, 6, 8] {
        let mut r = workloads::rng(81 + n as u64);
        let graph = Graph::random(&mut r, n, 0.5);
        let mut voc = Vocabulary::new();
        let (db, q) = thm71::build_expression(&mut voc, &graph);
        g.bench_with_input(BenchmarkId::new("vertices", n), &(db, q), |b, (db, q)| {
            b.iter(|| Engine::new(&voc).entails(db, q).unwrap().holds())
        });
    }
    g.finish();
}

/// Theorem 7.1(2): non-3-colourability as [!=]-database entailment (data
/// complexity co-NP-hard; naive engine, exponential).
fn bench_thm71_data(c: &mut Criterion) {
    let mut g = c.benchmark_group("ineq/thm71-data");
    for n in [3usize, 4, 5] {
        let mut r = workloads::rng(82 + n as u64);
        let graph = Graph::random(&mut r, n, 0.6);
        let mut voc = Vocabulary::new();
        let (db, q) = thm71::build_data(&mut voc, &graph);
        g.bench_with_input(BenchmarkId::new("vertices", n), &(db, q), |b, (db, q)| {
            b.iter(|| Engine::new(&voc).entails(db, q).unwrap().holds())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_query_ne_data, bench_thm71_expression, bench_thm71_data
}
criterion_main!(benches);
