//! Klug containment (Prop. 2.10): deciding `Q₁ ⊆_O Q₂` for conjunctive
//! queries with inequalities of growing body size, across order types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indord_core::parse::parse_query;
use indord_core::sym::{Sort, Vocabulary};
use indord_relalg::{contained_in, RelQuery};
use indord_semantics::OrderType;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

/// Chain-shaped bodies R(x1,t1) ∧ t1<t2 ∧ R(x2,t2) ∧ … of growing length;
/// Q2 relaxes the comparisons to <=.
fn chain_pair(voc: &mut Vocabulary, n: usize) -> (RelQuery, RelQuery) {
    let mut body = String::from("exists");
    for i in 0..n {
        body.push_str(&format!(" x{i} t{i}"));
    }
    body.push_str(". ");
    let mut strict = body.clone();
    let mut loose = body.clone();
    for i in 0..n {
        if i > 0 {
            strict.push_str(&format!("& t{} < t{i} ", i - 1));
            loose.push_str(&format!("& t{} <= t{i} ", i - 1));
        }
        let atom = format!("{}Rel(x{i}, t{i}) ", if i == 0 { "" } else { "& " });
        strict.push_str(&atom);
        loose.push_str(&atom);
    }
    let q1 = RelQuery::boolean(parse_query(voc, &strict).unwrap().disjuncts()[0].clone());
    let q2 = RelQuery::boolean(parse_query(voc, &loose).unwrap().disjuncts()[0].clone());
    (q1, q2)
}

fn bench_containment(c: &mut Criterion) {
    let mut g = c.benchmark_group("containment");
    for n in [2usize, 4, 8, 16] {
        let mut voc = Vocabulary::new();
        voc.pred("Rel", &[Sort::Object, Sort::Order]).unwrap();
        let (q1, q2) = chain_pair(&mut voc, n);
        for (ot, name) in [
            (OrderType::Fin, "fin"),
            (OrderType::Z, "z"),
            (OrderType::Q, "q"),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, n),
                &(q1.clone(), q2.clone(), ot),
                |b, (q1, q2, ot)| {
                    b.iter(|| {
                        let mut voc2 = Vocabulary::new();
                        voc2.pred("Rel", &[Sort::Object, Sort::Order]).unwrap();
                        // re-intern query symbols in the fresh vocabulary:
                        // predicates line up because ids are allocated in
                        // the same order.
                        contained_in(&mut voc2, q1, q2, *ot).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_containment
}
criterion_main!(benches);
